"""Workload-drift and reorganization advisor (paper §8, future work).

The paper closes by sketching how the Markov models could drive the
*automatic reorganization* of a running deployment: by comparing the
expected execution paths of transactions with what the current workload
actually does, the system can notice that its partitioning scheme or cluster
size no longer fits and react — regenerate the models, repartition the
database, or scale the number of partitions.

This module implements that comparison as an advisory component.  It
consumes the statistics the rest of the library already produces (Houdini's
per-procedure optimization statistics, the simulator's run metrics, the
model-maintenance counters) and emits concrete, explained recommendations.
It never changes anything by itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from .houdini.maintenance import ModelMaintenance
from .houdini.stats import HoudiniStats
from .sim.metrics import SimulationResult


class RecommendationKind(Enum):
    """What the advisor thinks the deployment should do."""

    #: The workload drifted: rebuild models (and mappings) from a fresh trace.
    REGENERATE_MODELS = "regenerate_models"
    #: Too much of the workload is distributed: revisit the partitioning scheme.
    REPARTITION = "repartition"
    #: The cluster is saturated with single-partition work: add partitions.
    SCALE_OUT = "scale_out"
    #: Short single-partition procedures pay too much estimation overhead:
    #: enable the §6.3 estimate cache.
    ENABLE_ESTIMATE_CACHE = "enable_estimate_cache"
    #: Predictions chronically fail for specific procedures: disable Houdini
    #: for them (as the paper does for CheckWinningBids).
    DISABLE_PREDICTION = "disable_prediction"


@dataclass(frozen=True)
class Recommendation:
    """One recommendation plus the evidence that triggered it."""

    kind: RecommendationKind
    reason: str
    #: Metric values backing the recommendation (name -> value).
    evidence: dict[str, float] = field(default_factory=dict)
    #: Procedures the recommendation applies to (empty = whole workload).
    procedures: tuple[str, ...] = ()

    def describe(self) -> str:
        scope = f" [{', '.join(self.procedures)}]" if self.procedures else ""
        details = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self.evidence.items()))
        return f"{self.kind.value}{scope}: {self.reason} ({details})"


@dataclass(frozen=True)
class AdvisorThresholds:
    """Trigger levels for each recommendation."""

    #: Restart rate (restarts / transactions) above which models are stale.
    restart_rate: float = 0.05
    #: Fraction of maintenance checks that recomputed probabilities above
    #: which the drift is considered structural rather than noise.
    recomputation_rate: float = 0.25
    #: Fraction of distributed transactions above which repartitioning is
    #: worth considering.
    distributed_fraction: float = 0.30
    #: Average estimation time per transaction (ms) above which the
    #: estimate cache is recommended for eligible procedures.
    min_estimation_ms: float = 0.25
    #: Per-procedure OP1/OP2 success rate below which prediction should be
    #: disabled for that procedure.
    prediction_success_pct: float = 50.0
    #: Minimum transactions a procedure must have before it is judged.
    min_procedure_transactions: int = 20
    #: Average latency (ms) above which a saturated single-partition
    #: workload justifies scaling out.
    saturation_latency_ms: float = 50.0


@dataclass
class AdvisorReport:
    """The advisor's findings for one observation window."""

    recommendations: list[Recommendation] = field(default_factory=list)

    def __iter__(self):
        return iter(self.recommendations)

    def __len__(self) -> int:
        return len(self.recommendations)

    def by_kind(self, kind: RecommendationKind) -> list[Recommendation]:
        return [r for r in self.recommendations if r.kind is kind]

    def has(self, kind: RecommendationKind) -> bool:
        return any(r.kind is kind for r in self.recommendations)

    def describe(self) -> str:
        if not self.recommendations:
            return "No reorganization recommended: predictions match the workload."
        return "\n".join(r.describe() for r in self.recommendations)


class WorkloadAdvisor:
    """Turns run-time statistics into reorganization recommendations."""

    def __init__(self, thresholds: AdvisorThresholds | None = None) -> None:
        self.thresholds = thresholds or AdvisorThresholds()

    # ------------------------------------------------------------------
    def analyze(
        self,
        houdini_stats: HoudiniStats | None = None,
        result: SimulationResult | None = None,
        maintenances: Iterable[ModelMaintenance] = (),
    ) -> AdvisorReport:
        """Produce recommendations from whatever statistics are available."""
        report = AdvisorReport()
        if result is not None:
            self._check_restarts(result, report)
            self._check_distribution(result, report)
            self._check_saturation(result, report)
        self._check_maintenance(list(maintenances), report)
        if houdini_stats is not None:
            self._check_estimation_overhead(houdini_stats, report)
            self._check_chronic_mispredictions(houdini_stats, report)
        return report

    # ------------------------------------------------------------------
    def _check_restarts(self, result: SimulationResult, report: AdvisorReport) -> None:
        if result.total_transactions == 0:
            return
        rate = result.restart_rate
        if rate > self.thresholds.restart_rate:
            report.recommendations.append(
                Recommendation(
                    kind=RecommendationKind.REGENERATE_MODELS,
                    reason=(
                        "transactions frequently touch partitions the models did not "
                        "predict; the training trace no longer matches the workload"
                    ),
                    evidence={"restart_rate": rate, "restarts": float(result.restarts)},
                )
            )

    def _check_distribution(self, result: SimulationResult, report: AdvisorReport) -> None:
        total = result.single_partition + result.distributed
        if total == 0:
            return
        fraction = result.distributed / total
        if fraction > self.thresholds.distributed_fraction:
            report.recommendations.append(
                Recommendation(
                    kind=RecommendationKind.REPARTITION,
                    reason=(
                        "a large share of the workload is distributed; a different "
                        "partitioning scheme could make more of it single-partition"
                    ),
                    evidence={"distributed_fraction": fraction},
                )
            )

    def _check_saturation(self, result: SimulationResult, report: AdvisorReport) -> None:
        total = result.single_partition + result.distributed
        if total == 0:
            return
        single_fraction = result.single_partition / total
        if (
            single_fraction >= (1.0 - self.thresholds.distributed_fraction)
            and result.average_latency_ms > self.thresholds.saturation_latency_ms
        ):
            report.recommendations.append(
                Recommendation(
                    kind=RecommendationKind.SCALE_OUT,
                    reason=(
                        "the workload is overwhelmingly single-partition yet latencies "
                        "are high, so partitions are queueing; adding partitions would "
                        "spread the load"
                    ),
                    evidence={
                        "single_partition_fraction": single_fraction,
                        "average_latency_ms": result.average_latency_ms,
                    },
                )
            )

    def _check_maintenance(
        self, maintenances: list[ModelMaintenance], report: AdvisorReport
    ) -> None:
        checks = sum(m.stats.accuracy_checks for m in maintenances)
        recomputations = sum(m.stats.recomputations for m in maintenances)
        if checks == 0:
            return
        rate = recomputations / checks
        if rate > self.thresholds.recomputation_rate:
            report.recommendations.append(
                Recommendation(
                    kind=RecommendationKind.REGENERATE_MODELS,
                    reason=(
                        "model maintenance keeps recomputing probabilities, which means "
                        "the transition distributions drift faster than on-line updates "
                        "can absorb; retrain from a fresh trace"
                    ),
                    evidence={
                        "recomputation_rate": rate,
                        "recomputations": float(recomputations),
                    },
                )
            )

    def _check_estimation_overhead(
        self, stats: HoudiniStats, report: AdvisorReport
    ) -> None:
        # Procedures that are (almost) always single-partition, never abort
        # under OP3, and spend a disproportionate share of time estimating
        # are exactly the §6.3 caching candidates.
        candidates: list[str] = []
        for name, procedure in stats.procedures.items():
            if procedure.transactions < self.thresholds.min_procedure_transactions:
                continue
            if procedure.op2_rate < 99.0:
                continue
            if procedure.average_estimation_ms < self.thresholds.min_estimation_ms:
                continue
            candidates.append(name)
        if not candidates:
            return
        overall = stats.average_estimation_ms()
        report.recommendations.append(
            Recommendation(
                kind=RecommendationKind.ENABLE_ESTIMATE_CACHE,
                reason=(
                    "these procedures are predictably single-partition, so their "
                    "estimates can be cached and reused instead of recomputed"
                ),
                evidence={"average_estimation_ms": overall},
                procedures=tuple(sorted(candidates)),
            )
        )

    def _check_chronic_mispredictions(
        self, stats: HoudiniStats, report: AdvisorReport
    ) -> None:
        chronic: list[str] = []
        worst = 100.0
        for name, procedure in stats.procedures.items():
            if procedure.transactions < self.thresholds.min_procedure_transactions:
                continue
            success = min(procedure.op1_rate, procedure.op2_rate)
            if success < self.thresholds.prediction_success_pct:
                chronic.append(name)
                worst = min(worst, success)
        if not chronic:
            return
        report.recommendations.append(
            Recommendation(
                kind=RecommendationKind.DISABLE_PREDICTION,
                reason=(
                    "predictions for these procedures fail more often than they help "
                    "(the paper disables Houdini for such procedures)"
                ),
                evidence={"worst_success_pct": worst},
                procedures=tuple(sorted(chronic)),
            )
        )
