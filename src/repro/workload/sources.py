"""Declarative workload sources: *what traffic arrives* at a cluster.

The paper's Houdini is trained from recorded traces and deployed against
live production traffic; this module decouples that traffic shape from the
cluster that runs it.  A :class:`WorkloadSource` declares how transaction
requests enter the system, and the session layer compiles it into the event
streams (``EXTERNAL_SUBMIT`` / ``CLIENT_READY``) that drive the steppable
simulator core.  Five shapes exist:

* :class:`ClosedLoopSource` — the paper's setup: N think-time clients per
  partition, each submitting its next request the moment the previous one
  completes.  Load adapts to the cluster's speed (arrival rate = completion
  rate).  This is the default when a spec declares no workload section, and
  it produces results byte-identical to the pre-source session path.
* :class:`OpenLoopSource` — an *arrival process*: requests arrive at wall
  times drawn from a deterministic Poisson / uniform / bursty process built
  on :class:`~repro.workload.rng.WorkloadRandom`, independent of how fast
  the cluster drains them.  This is how overload happens — queues grow
  without bound when the arrival rate exceeds the service rate — and it is
  the workload shape production traffic actually has.
* :class:`TraceReplaySource` — replays a recorded
  :class:`~repro.workload.trace.WorkloadTrace` with its original (or
  rescaled) timestamps: the record → train → replay loop of §3.1, closed.
* :class:`PhasedSource` — a time-phased mixture: each phase contributes its
  own arrival source for a fixed duration (workload shifts as data, not
  code).
* :class:`TenantSource` — a labeled composition of sources sharing one
  cluster; per-tenant metrics are broken out in
  :class:`~repro.sim.metrics.SimulationResult`.

Sources are declarative and serializable: ``validate()`` raises
:class:`~repro.errors.WorkloadError` on bad parameters, and
``to_dict()`` / :meth:`WorkloadSource.from_dict` round-trip through plain
JSON-friendly dicts exactly like the rest of
:class:`~repro.session.ClusterSpec`.  ``compile(ctx)`` turns a source into
a :class:`CompiledSource` — a deterministic, resumable stream of
:class:`Arrival` records — so the same source object can open any number of
sessions, each with an independent cursor.
"""

from __future__ import annotations

import heapq
import math
import zlib
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, NamedTuple

from ..errors import WorkloadError
from ..types import ProcedureRequest
from .rng import WorkloadRandom
from .trace import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..benchmarks.base import BenchmarkInstance
    from .generator import WorkloadGenerator

#: Arrival processes OpenLoopSource understands.
ARRIVAL_PROCESSES = ("poisson", "uniform", "bursty")


class Arrival(NamedTuple):
    """One compiled arrival: when, what, and for which tenant."""

    at_ms: float
    request: ProcedureRequest
    tenant: str | None = None


class CompileContext(NamedTuple):
    """What a source needs to turn its declaration into concrete requests."""

    benchmark: "BenchmarkInstance"
    seed: int = 0

    def make_generator(self, seed: int) -> "WorkloadGenerator":
        """A fresh benchmark generator with its own deterministic stream.

        Each open-loop source draws requests from its own generator (seeded
        from the session seed plus the source's seed) so arrival streams are
        independent of the closed-loop clients and of each other.
        """
        instance = self.benchmark
        return instance.bundle.make_generator(
            instance.catalog, instance.config, WorkloadRandom(self.seed * 1_000_003 + seed + 7)
        )


# ----------------------------------------------------------------------
# Compiled streams
# ----------------------------------------------------------------------
class CompiledSource:
    """A resumable, deterministic arrival stream with one-step lookahead.

    The session pulls arrivals in two shapes — the next ``count`` arrivals
    (``run_for(txns=...)``) or every arrival up to a simulated deadline
    (``run_for(sim_seconds=...)``) — and the cursor survives pauses and
    mid-replay reconfiguration.
    """

    def __init__(self, arrivals: Iterator[Arrival]) -> None:
        self._arrivals = arrivals
        self._lookahead: Arrival | None = None
        self._exhausted = False
        self._emitted = 0

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Arrivals handed out so far (the stream cursor)."""
        return self._emitted

    @property
    def exhausted(self) -> bool:
        """True once the stream has no further arrivals (open loops never are)."""
        self.peek()
        return self._exhausted and self._lookahead is None

    def peek(self) -> Arrival | None:
        """The next arrival without consuming it (``None`` when exhausted)."""
        if self._lookahead is None and not self._exhausted:
            try:
                self._lookahead = next(self._arrivals)
            except StopIteration:
                self._exhausted = True
        return self._lookahead

    def pop(self) -> Arrival | None:
        arrival = self.peek()
        if arrival is not None:
            self._lookahead = None
            self._emitted += 1
        return arrival

    # ------------------------------------------------------------------
    def take(self, count: int) -> list[Arrival]:
        """The next ``count`` arrivals (fewer if the stream ends first)."""
        out: list[Arrival] = []
        while len(out) < count:
            arrival = self.pop()
            if arrival is None:
                break
            out.append(arrival)
        return out

    def take_until(self, deadline_ms: float) -> list[Arrival]:
        """Every arrival with ``at_ms <= deadline_ms``, in timestamp order."""
        out: list[Arrival] = []
        while True:
            arrival = self.peek()
            if arrival is None or arrival.at_ms > deadline_ms:
                break
            out.append(self.pop())
        return out


# ----------------------------------------------------------------------
# The source hierarchy
# ----------------------------------------------------------------------
class WorkloadSource(ABC):
    """Declarative description of how traffic enters a cluster session."""

    #: Registry discriminator used by :meth:`to_dict` / :meth:`from_dict`.
    kind: str = ""

    @abstractmethod
    def validate(self) -> None:
        """Raise :class:`WorkloadError` on the first invalid parameter."""

    @abstractmethod
    def to_dict(self) -> dict:
        """Plain JSON-friendly dict form, including the ``kind`` key."""

    @abstractmethod
    def compile(self, ctx: CompileContext) -> CompiledSource:
        """A fresh arrival stream for one session (independent cursor)."""

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(data: Mapping) -> "WorkloadSource":
        """Rebuild any source from its :meth:`to_dict` form."""
        if not isinstance(data, Mapping):
            raise WorkloadError(
                f"workload source must be a mapping, got {type(data).__name__}"
            )
        kind = data.get("kind")
        factory = _SOURCE_KINDS.get(kind)
        if factory is None:
            raise WorkloadError(
                f"unknown workload source kind {kind!r}; available: "
                f"{', '.join(sorted(_SOURCE_KINDS))}"
            )
        return factory(data)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.to_dict()}>"


class ClosedLoopSource(WorkloadSource):
    """The paper's closed loop: think-time clients saturating the node.

    ``clients_per_partition`` and ``think_time_ms`` mirror the legacy
    simulator knobs; a spec with no workload section behaves exactly as if
    it declared ``ClosedLoopSource()`` with the spec's own values.
    """

    kind = "closed-loop"

    def __init__(
        self, clients_per_partition: int = 4, think_time_ms: float = 0.0
    ) -> None:
        self.clients_per_partition = clients_per_partition
        self.think_time_ms = think_time_ms
        self.validate()

    def validate(self) -> None:
        if (
            not isinstance(self.clients_per_partition, int)
            or isinstance(self.clients_per_partition, bool)
            or self.clients_per_partition < 1
        ):
            raise WorkloadError(
                f"clients_per_partition must be an integer >= 1, "
                f"got {self.clients_per_partition!r}"
            )
        if self.think_time_ms < 0:
            raise WorkloadError(
                f"think_time_ms must be non-negative, got {self.think_time_ms!r}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "clients_per_partition": self.clients_per_partition,
            "think_time_ms": self.think_time_ms,
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        # The closed loop emits no arrivals: the simulator's budget-parked
        # clients drive submission (the session layer special-cases this
        # source and never consumes the empty stream).
        return CompiledSource(iter(()))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClosedLoopSource) and self.to_dict() == other.to_dict()


class OpenLoopSource(WorkloadSource):
    """Open-loop arrivals: requests arrive on a clock, not on completions.

    ``rate_per_sec`` fixes the long-run arrival rate; ``arrival`` picks the
    process shape:

    * ``"poisson"`` — exponential inter-arrival gaps (memoryless, the
      standard open-loop model), deterministic under ``seed``;
    * ``"uniform"`` — a metronome: constant gaps of ``1000/rate`` ms;
    * ``"bursty"`` — groups of ``burst_size`` arrivals packed at 4x the
      rate followed by an idle gap, preserving the long-run rate (the
      shape that stresses admission control and queue policies).

    Requests are drawn from a dedicated benchmark generator (seeded from
    the session seed plus ``seed``), so several open-loop sources — e.g.
    tenants — produce independent deterministic mixes.  ``limit`` bounds
    the stream; ``None`` means unbounded (the session pulls what it needs).
    """

    kind = "open-loop"

    def __init__(
        self,
        rate_per_sec: float,
        arrival: str = "poisson",
        *,
        seed: int = 0,
        burst_size: int = 8,
        limit: int | None = None,
    ) -> None:
        self.rate_per_sec = rate_per_sec
        self.arrival = arrival
        self.seed = seed
        self.burst_size = burst_size
        self.limit = limit
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.rate_per_sec, (int, float)) or self.rate_per_sec <= 0:
            raise WorkloadError(
                f"rate_per_sec must be positive, got {self.rate_per_sec!r}"
            )
        if self.arrival not in ARRIVAL_PROCESSES:
            raise WorkloadError(
                f"unknown arrival process {self.arrival!r}; available: "
                f"{', '.join(ARRIVAL_PROCESSES)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise WorkloadError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.burst_size, int) or self.burst_size < 1:
            raise WorkloadError(
                f"burst_size must be an integer >= 1, got {self.burst_size!r}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise WorkloadError(f"limit must be a positive integer or None, got {self.limit!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rate_per_sec": self.rate_per_sec,
            "arrival": self.arrival,
            "seed": self.seed,
            "burst_size": self.burst_size,
            "limit": self.limit,
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        generator = ctx.make_generator(self.seed)
        gaps = arrival_gaps(
            self.arrival, self.rate_per_sec,
            seed=ctx.seed * 31 + self.seed, burst_size=self.burst_size,
        )

        def stream() -> Iterator[Arrival]:
            clock = 0.0
            emitted = 0
            for gap in gaps:
                clock += gap
                raw = generator.next_request()
                yield Arrival(clock, ProcedureRequest(raw.procedure, raw.parameters))
                emitted += 1
                if self.limit is not None and emitted >= self.limit:
                    return

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OpenLoopSource) and self.to_dict() == other.to_dict()


class TraceReplaySource(WorkloadSource):
    """Replay a recorded :class:`WorkloadTrace` as live traffic.

    Records with embedded submission timestamps (``at_ms``, stamped by
    :class:`~repro.workload.recorder.TraceRecorder` when recording against
    an arrival process) replay at those times; records without one fall
    back to a metronome of ``default_gap_ms``.  ``speedup`` rescales time
    (2.0 replays twice as fast — the what-if-load-doubles knob).

    Exactly one of ``trace`` (in-memory, serialized inline) or ``path``
    (a JSON-lines file, loaded lazily at compile time) must be given.
    Replay is deterministic: the same trace yields the same arrival stream
    in every session.
    """

    kind = "trace-replay"

    def __init__(
        self,
        trace: WorkloadTrace | None = None,
        *,
        path: str | None = None,
        speedup: float = 1.0,
        default_gap_ms: float = 1.0,
        limit: int | None = None,
    ) -> None:
        self.trace = trace
        self.path = path
        self.speedup = speedup
        self.default_gap_ms = default_gap_ms
        self.limit = limit
        self.validate()

    def validate(self) -> None:
        if (self.trace is None) == (self.path is None):
            raise WorkloadError(
                "TraceReplaySource needs exactly one of trace= (in-memory) "
                "or path= (JSON-lines file)"
            )
        if self.trace is not None and not isinstance(self.trace, WorkloadTrace):
            raise WorkloadError(
                f"trace must be a WorkloadTrace, got {type(self.trace).__name__}"
            )
        if not isinstance(self.speedup, (int, float)) or self.speedup <= 0:
            raise WorkloadError(f"speedup must be positive, got {self.speedup!r}")
        if not isinstance(self.default_gap_ms, (int, float)) or self.default_gap_ms < 0:
            raise WorkloadError(
                f"default_gap_ms must be non-negative, got {self.default_gap_ms!r}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise WorkloadError(f"limit must be a positive integer or None, got {self.limit!r}")

    def to_dict(self) -> dict:
        out: dict = {
            "kind": self.kind,
            "speedup": self.speedup,
            "default_gap_ms": self.default_gap_ms,
            "limit": self.limit,
        }
        if self.path is not None:
            out["path"] = self.path
        else:
            out["records"] = [record.to_json() for record in self.trace]
        return out

    def _load(self) -> WorkloadTrace:
        if self.trace is not None:
            return self.trace
        try:
            return WorkloadTrace.load(self.path)
        except WorkloadError:
            raise
        except OSError as error:
            raise WorkloadError(
                f"cannot read workload trace {self.path!r}: {error}"
            ) from error

    def compile(self, ctx: CompileContext) -> CompiledSource:
        trace = self._load()
        speedup = self.speedup
        gap = self.default_gap_ms
        limit = self.limit

        def stream() -> Iterator[Arrival]:
            clock = 0.0
            for index, record in enumerate(trace):
                if limit is not None and index >= limit:
                    return
                at = record.at_ms if record.at_ms is not None else index * gap
                # Timestamps never run backwards, even in a hand-edited trace.
                clock = max(clock, at / speedup)
                yield Arrival(
                    clock,
                    ProcedureRequest(record.procedure, tuple(record.parameters)),
                )

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TraceReplaySource) and self.to_dict() == other.to_dict()


class PhasedSource(WorkloadSource):
    """Time-phased mixture: each phase contributes one arrival source.

    ``phases`` is a sequence of ``(duration_ms, source)`` pairs; phase
    *i+1* starts when phase *i*'s duration elapses, and each phase's source
    emits only the arrivals that fall inside its window.  The final phase
    may use ``None`` as its duration to run unbounded.  Phases must be
    arrival sources (closed loops have no arrival clock to phase).
    """

    kind = "phased"

    def __init__(
        self, phases: Iterable[tuple[float | None, WorkloadSource]]
    ) -> None:
        self.phases = list(phases)
        self.validate()

    def validate(self) -> None:
        if not self.phases:
            raise WorkloadError("PhasedSource needs at least one phase")
        last = len(self.phases) - 1
        for index, entry in enumerate(self.phases):
            if not isinstance(entry, (tuple, list)) or len(entry) != 2:
                raise WorkloadError(
                    f"phase {index} must be a (duration_ms, source) pair, got {entry!r}"
                )
            duration, source = entry
            if not isinstance(source, WorkloadSource):
                raise WorkloadError(
                    f"phase {index} source must be a WorkloadSource, "
                    f"got {type(source).__name__}"
                )
            if isinstance(source, ClosedLoopSource):
                raise WorkloadError(
                    f"phase {index}: closed-loop sources cannot be phased "
                    "(they have no arrival clock); use OpenLoopSource or "
                    "TraceReplaySource phases"
                )
            source.validate()
            if duration is None:
                if index != last:
                    raise WorkloadError(
                        f"phase {index}: only the final phase may be unbounded "
                        "(duration None)"
                    )
            elif not isinstance(duration, (int, float)) or duration <= 0:
                raise WorkloadError(
                    f"phase {index} duration_ms must be positive (or None for "
                    f"the final phase), got {duration!r}"
                )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "phases": [
                {"duration_ms": duration, "source": source.to_dict()}
                for duration, source in self.phases
            ],
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        def stream() -> Iterator[Arrival]:
            offset = 0.0
            for duration, source in self.phases:
                compiled = source.compile(ctx)
                while True:
                    arrival = compiled.peek()
                    if arrival is None:
                        break
                    if duration is not None and arrival.at_ms >= duration:
                        break
                    compiled.pop()
                    yield arrival._replace(at_ms=offset + arrival.at_ms)
                if duration is None:
                    return
                offset += duration

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PhasedSource) and self.to_dict() == other.to_dict()


class TenantSource(WorkloadSource):
    """Labeled composition: several tenants share one cluster.

    ``tenants`` maps a tenant name to its arrival source.  The compiled
    stream is a timestamp-ordered merge of the per-tenant streams, each
    arrival labeled with its tenant (ties break on declaration order, which
    keeps merges deterministic).  Per-tenant throughput/latency appear in
    :attr:`~repro.sim.metrics.SimulationResult.tenants` and through
    ``ClusterSession.snapshot_metrics(tenant=...)``.
    """

    kind = "tenants"

    def __init__(self, tenants: Mapping[str, WorkloadSource]) -> None:
        self.tenants = dict(tenants)
        self.validate()

    def validate(self) -> None:
        if not self.tenants:
            raise WorkloadError("TenantSource needs at least one tenant")
        for name, source in self.tenants.items():
            if not isinstance(name, str) or not name:
                raise WorkloadError(f"tenant names must be non-empty strings, got {name!r}")
            if not isinstance(source, WorkloadSource):
                raise WorkloadError(
                    f"tenant {name!r} source must be a WorkloadSource, "
                    f"got {type(source).__name__}"
                )
            if isinstance(source, ClosedLoopSource):
                raise WorkloadError(
                    f"tenant {name!r}: closed-loop sources cannot be labeled "
                    "tenants (they have no arrival clock); use OpenLoopSource "
                    "or TraceReplaySource streams"
                )
            source.validate()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "tenants": {name: source.to_dict() for name, source in self.tenants.items()},
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        # Each tenant compiles under a seed derived from its name, so two
        # tenants declared with identical sources still produce independent
        # (but deterministic) streams instead of byte-identical twins.
        compiled = [
            (order, name, source.compile(ctx._replace(
                seed=ctx.seed + (zlib.crc32(name.encode("utf-8")) & 0xFFFF)
            )))
            for order, (name, source) in enumerate(self.tenants.items())
        ]

        def stream() -> Iterator[Arrival]:
            heap: list[tuple[float, int, int]] = []
            streams = {}
            for order, name, sub in compiled:
                streams[order] = (name, sub)
                arrival = sub.peek()
                if arrival is not None:
                    heap.append((arrival.at_ms, order, 0))
            heapq.heapify(heap)
            sequence = 0
            while heap:
                _, order, _ = heapq.heappop(heap)
                name, sub = streams[order]
                arrival = sub.pop()
                # Inner labels (a nested TenantSource) win over the outer name.
                yield arrival._replace(tenant=arrival.tenant or name)
                nxt = sub.peek()
                if nxt is not None:
                    sequence += 1
                    heapq.heappush(heap, (nxt.at_ms, order, sequence))

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TenantSource) and self.to_dict() == other.to_dict()


# ----------------------------------------------------------------------
# Deterministic arrival-gap processes (shared with the trace recorder)
# ----------------------------------------------------------------------
def arrival_gaps(
    process: str,
    rate_per_sec: float,
    *,
    seed: int = 0,
    burst_size: int = 8,
) -> Iterator[float]:
    """Infinite inter-arrival gaps (ms) for one arrival process.

    All three processes preserve the long-run rate ``rate_per_sec`` and are
    fully determined by ``seed`` — the property every replay/determinism
    contract in this package leans on.
    """
    if rate_per_sec <= 0:
        raise WorkloadError(f"rate_per_sec must be positive, got {rate_per_sec!r}")
    mean_ms = 1000.0 / rate_per_sec
    if process == "uniform":
        def uniform() -> Iterator[float]:
            while True:
                yield mean_ms
        return uniform()
    if process == "poisson":
        rng = WorkloadRandom(seed)
        def poisson() -> Iterator[float]:
            while True:
                # floating() draws from [0, 1); log(1-u) is always finite.
                yield -mean_ms * math.log(1.0 - rng.floating(0.0, 1.0))
        return poisson()
    if process == "bursty":
        # burst_size arrivals packed at 4x the rate, then an idle gap that
        # restores the long-run rate: one cycle spans burst_size * mean_ms.
        intra = mean_ms / 4.0
        pause = burst_size * mean_ms - (burst_size - 1) * intra
        def bursty() -> Iterator[float]:
            first = True
            while True:
                yield pause if not first else intra
                first = False
                for _ in range(burst_size - 1):
                    yield intra
        return bursty()
    raise WorkloadError(
        f"unknown arrival process {process!r}; available: {', '.join(ARRIVAL_PROCESSES)}"
    )


def arrival_times(
    process: str,
    rate_per_sec: float,
    count: int,
    *,
    seed: int = 0,
    burst_size: int = 8,
) -> list[float]:
    """The first ``count`` absolute arrival times (ms) of a process."""
    if count < 0:
        raise WorkloadError("count must be non-negative")
    times: list[float] = []
    clock = 0.0
    gaps = arrival_gaps(process, rate_per_sec, seed=seed, burst_size=burst_size)
    for _ in range(count):
        clock += next(gaps)
        times.append(clock)
    return times


# ----------------------------------------------------------------------
# Registry (dict-form deserialization)
# ----------------------------------------------------------------------
def _closed_loop_from_dict(data: Mapping) -> ClosedLoopSource:
    return ClosedLoopSource(
        clients_per_partition=data.get("clients_per_partition", 4),
        think_time_ms=data.get("think_time_ms", 0.0),
    )


def _open_loop_from_dict(data: Mapping) -> OpenLoopSource:
    if "rate_per_sec" not in data:
        raise WorkloadError("open-loop source dict is missing 'rate_per_sec'")
    return OpenLoopSource(
        data["rate_per_sec"],
        data.get("arrival", "poisson"),
        seed=data.get("seed", 0),
        burst_size=data.get("burst_size", 8),
        limit=data.get("limit"),
    )


def _trace_replay_from_dict(data: Mapping) -> TraceReplaySource:
    from .trace import TransactionTraceRecord

    trace = None
    if "records" in data:
        trace = WorkloadTrace(
            [TransactionTraceRecord.from_json(entry) for entry in data["records"]]
        )
    return TraceReplaySource(
        trace,
        path=data.get("path"),
        speedup=data.get("speedup", 1.0),
        default_gap_ms=data.get("default_gap_ms", 1.0),
        limit=data.get("limit"),
    )


def _phased_from_dict(data: Mapping) -> PhasedSource:
    phases = data.get("phases")
    if not isinstance(phases, (list, tuple)):
        raise WorkloadError("phased source dict needs a 'phases' list")
    built = []
    for entry in phases:
        if not isinstance(entry, Mapping) or "source" not in entry:
            raise WorkloadError(
                f"each phase must be a dict with 'duration_ms' and 'source', got {entry!r}"
            )
        built.append((entry.get("duration_ms"), WorkloadSource.from_dict(entry["source"])))
    return PhasedSource(built)


def _tenants_from_dict(data: Mapping) -> TenantSource:
    tenants = data.get("tenants")
    if not isinstance(tenants, Mapping):
        raise WorkloadError("tenants source dict needs a 'tenants' mapping")
    return TenantSource(
        {name: WorkloadSource.from_dict(source) for name, source in tenants.items()}
    )


_SOURCE_KINDS: dict[str, Callable[[Mapping], WorkloadSource]] = {
    ClosedLoopSource.kind: _closed_loop_from_dict,
    OpenLoopSource.kind: _open_loop_from_dict,
    TraceReplaySource.kind: _trace_replay_from_dict,
    PhasedSource.kind: _phased_from_dict,
    TenantSource.kind: _tenants_from_dict,
}

__all__ = [
    "ARRIVAL_PROCESSES",
    "Arrival",
    "CompileContext",
    "CompiledSource",
    "WorkloadSource",
    "ClosedLoopSource",
    "OpenLoopSource",
    "TraceReplaySource",
    "PhasedSource",
    "TenantSource",
    "arrival_gaps",
    "arrival_times",
]
