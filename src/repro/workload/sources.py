"""Declarative workload sources: *what traffic arrives* at a cluster.

The paper's Houdini is trained from recorded traces and deployed against
live production traffic; this module decouples that traffic shape from the
cluster that runs it.  A :class:`WorkloadSource` declares how transaction
requests enter the system, and the session layer compiles it into the event
streams (``EXTERNAL_SUBMIT`` / ``CLIENT_READY``) that drive the steppable
simulator core.  Five shapes exist:

* :class:`ClosedLoopSource` — the paper's setup: N think-time clients per
  partition, each submitting its next request the moment the previous one
  completes.  Load adapts to the cluster's speed (arrival rate = completion
  rate).  This is the default when a spec declares no workload section, and
  it produces results byte-identical to the pre-source session path.
* :class:`OpenLoopSource` — an *arrival process*: requests arrive at wall
  times drawn from a deterministic Poisson / uniform / bursty process built
  on :class:`~repro.workload.rng.WorkloadRandom`, independent of how fast
  the cluster drains them.  This is how overload happens — queues grow
  without bound when the arrival rate exceeds the service rate — and it is
  the workload shape production traffic actually has.
* :class:`TraceReplaySource` — replays a recorded
  :class:`~repro.workload.trace.WorkloadTrace` with its original (or
  rescaled) timestamps: the record → train → replay loop of §3.1, closed.
* :class:`PhasedSource` — a time-phased mixture: each phase contributes its
  own arrival source for a fixed duration (workload shifts as data, not
  code).
* :class:`TenantSource` — a labeled composition of sources sharing one
  cluster; per-tenant metrics are broken out in
  :class:`~repro.sim.metrics.SimulationResult`.

Sources are declarative and serializable: ``validate()`` raises
:class:`~repro.errors.WorkloadError` on bad parameters, and
``to_dict()`` / :meth:`WorkloadSource.from_dict` round-trip through plain
JSON-friendly dicts exactly like the rest of
:class:`~repro.session.ClusterSpec`.  ``compile(ctx)`` turns a source into
a :class:`CompiledSource` — a deterministic, resumable stream of
:class:`Arrival` records — so the same source object can open any number of
sessions, each with an independent cursor.
"""

from __future__ import annotations

import heapq
import math
import operator
import zlib
from abc import ABC, abstractmethod
from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Mapping, NamedTuple, Sequence

from ..errors import WorkloadError
from ..types import ProcedureRequest
from . import vectorized as _vectorized
from .rng import WorkloadRandom
from .trace import WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..benchmarks.base import BenchmarkInstance
    from .generator import WorkloadGenerator

#: Arrival processes OpenLoopSource understands.
ARRIVAL_PROCESSES = ("poisson", "uniform", "bursty")

#: Arrivals materialized per batch by chunk-fed open-loop streams.  Bounds
#: how far request generation runs ahead of what a session actually pulls
#: while still amortizing the per-batch vector-kernel overhead to nothing.
_ARRIVAL_CHUNK = 512

#: Gaps drawn per batch when the iterator-form ``arrival_gaps`` stream
#: internally routes through the vectorized kernel.
_GAP_BATCH = _vectorized.DEFAULT_CHUNK


class Arrival(NamedTuple):
    """One compiled arrival: when, what, and for which tenant."""

    at_ms: float
    request: ProcedureRequest
    tenant: str | None = None


class CompileContext(NamedTuple):
    """What a source needs to turn its declaration into concrete requests."""

    benchmark: "BenchmarkInstance"
    seed: int = 0

    def make_generator(self, seed: int) -> "WorkloadGenerator":
        """A fresh benchmark generator with its own deterministic stream.

        Each open-loop source draws requests from its own generator (seeded
        from the session seed plus the source's seed) so arrival streams are
        independent of the closed-loop clients and of each other.
        """
        instance = self.benchmark
        return instance.bundle.make_generator(
            instance.catalog, instance.config, WorkloadRandom(self.seed * 1_000_003 + seed + 7)
        )


# ----------------------------------------------------------------------
# Compiled streams
# ----------------------------------------------------------------------
def _one_at_a_time(arrivals: Iterator[Arrival]) -> Iterator[Sequence[Arrival]]:
    """Wrap a per-arrival iterator as singleton chunks (preserves laziness)."""
    for arrival in arrivals:
        yield (arrival,)


_AT_MS = operator.itemgetter(0)  # Arrival.at_ms, positionally (hot path)


class CompiledSource:
    """A resumable, deterministic arrival stream consumed in batches.

    The session pulls arrivals in two shapes — the next ``count`` arrivals
    (``run_for(txns=...)``) or every arrival up to a simulated deadline
    (``run_for(sim_seconds=...)``) — and the cursor survives pauses and
    mid-replay reconfiguration.

    Internally the stream is a sequence of chunks (lists of arrivals in
    timestamp order) consumed through a buffer + position cursor, so
    ``take``/``take_until`` slice whole batches instead of doing a
    per-element peek/pop dance.  Construct with either ``arrivals=`` (a
    per-arrival iterator, buffered one element at a time — exactly the old
    lookahead laziness) or ``chunks=`` (an iterator of pre-built arrival
    batches, each sorted by ``at_ms``, as the vectorized open-loop compiler
    produces).
    """

    def __init__(
        self,
        arrivals: Iterator[Arrival] | None = None,
        *,
        chunks: Iterator[Sequence[Arrival]] | None = None,
    ) -> None:
        if (arrivals is None) == (chunks is None):
            raise WorkloadError(
                "CompiledSource needs exactly one of arrivals= or chunks="
            )
        self._chunks = chunks if chunks is not None else _one_at_a_time(arrivals)
        self._buffer: Sequence[Arrival] = ()
        self._pos = 0
        self._exhausted = False
        self._emitted = 0

    # ------------------------------------------------------------------
    @property
    def emitted(self) -> int:
        """Arrivals handed out so far (the stream cursor)."""
        return self._emitted

    @property
    def exhausted(self) -> bool:
        """True once the stream has no further arrivals (open loops never are)."""
        return not self._refill()

    def _refill(self) -> bool:
        """Ensure the buffer has an unconsumed arrival; False at stream end."""
        while self._pos >= len(self._buffer):
            if self._exhausted:
                return False
            try:
                self._buffer = next(self._chunks)
            except StopIteration:
                self._exhausted = True
                self._buffer = ()
                self._pos = 0
                return False
            self._pos = 0
        return True

    def peek(self) -> Arrival | None:
        """The next arrival without consuming it (``None`` when exhausted)."""
        return self._buffer[self._pos] if self._refill() else None

    def pop(self) -> Arrival | None:
        if not self._refill():
            return None
        arrival = self._buffer[self._pos]
        self._pos += 1
        self._emitted += 1
        return arrival

    # ------------------------------------------------------------------
    def take(self, count: int) -> list[Arrival]:
        """The next ``count`` arrivals (fewer if the stream ends first)."""
        out: list[Arrival] = []
        while len(out) < count and self._refill():
            end = min(len(self._buffer), self._pos + count - len(out))
            out.extend(self._buffer[self._pos:end])
            self._emitted += end - self._pos
            self._pos = end
        return out

    def take_until(self, deadline_ms: float) -> list[Arrival]:
        """Every arrival with ``at_ms <= deadline_ms``, in timestamp order."""
        out: list[Arrival] = []
        while self._refill():
            buffer = self._buffer
            if buffer[self._pos].at_ms > deadline_ms:
                break
            if buffer[-1].at_ms <= deadline_ms:
                end = len(buffer)  # whole remaining chunk is in range
            else:
                end = bisect_right(buffer, deadline_ms, self._pos + 1, key=_AT_MS)
            out.extend(buffer[self._pos:end])
            self._emitted += end - self._pos
            self._pos = end
            if end < len(buffer):
                break
        return out


# ----------------------------------------------------------------------
# The source hierarchy
# ----------------------------------------------------------------------
class WorkloadSource(ABC):
    """Declarative description of how traffic enters a cluster session."""

    #: Registry discriminator used by :meth:`to_dict` / :meth:`from_dict`.
    kind: str = ""

    @abstractmethod
    def validate(self) -> None:
        """Raise :class:`WorkloadError` on the first invalid parameter."""

    @abstractmethod
    def to_dict(self) -> dict:
        """Plain JSON-friendly dict form, including the ``kind`` key."""

    @abstractmethod
    def compile(self, ctx: CompileContext) -> CompiledSource:
        """A fresh arrival stream for one session (independent cursor)."""

    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(data: Mapping) -> "WorkloadSource":
        """Rebuild any source from its :meth:`to_dict` form."""
        if not isinstance(data, Mapping):
            raise WorkloadError(
                f"workload source must be a mapping, got {type(data).__name__}"
            )
        kind = data.get("kind")
        factory = _SOURCE_KINDS.get(kind)
        if factory is None:
            raise WorkloadError(
                f"unknown workload source kind {kind!r}; available: "
                f"{', '.join(sorted(_SOURCE_KINDS))}"
            )
        return factory(data)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.to_dict()}>"


class ClosedLoopSource(WorkloadSource):
    """The paper's closed loop: think-time clients saturating the node.

    ``clients_per_partition`` and ``think_time_ms`` mirror the legacy
    simulator knobs; a spec with no workload section behaves exactly as if
    it declared ``ClosedLoopSource()`` with the spec's own values.
    """

    kind = "closed-loop"

    def __init__(
        self, clients_per_partition: int = 4, think_time_ms: float = 0.0
    ) -> None:
        self.clients_per_partition = clients_per_partition
        self.think_time_ms = think_time_ms
        self.validate()

    def validate(self) -> None:
        if (
            not isinstance(self.clients_per_partition, int)
            or isinstance(self.clients_per_partition, bool)
            or self.clients_per_partition < 1
        ):
            raise WorkloadError(
                f"clients_per_partition must be an integer >= 1, "
                f"got {self.clients_per_partition!r}"
            )
        if self.think_time_ms < 0:
            raise WorkloadError(
                f"think_time_ms must be non-negative, got {self.think_time_ms!r}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "clients_per_partition": self.clients_per_partition,
            "think_time_ms": self.think_time_ms,
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        # The closed loop emits no arrivals: the simulator's budget-parked
        # clients drive submission (the session layer special-cases this
        # source and never consumes the empty stream).
        return CompiledSource(iter(()))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClosedLoopSource) and self.to_dict() == other.to_dict()


class OpenLoopSource(WorkloadSource):
    """Open-loop arrivals: requests arrive on a clock, not on completions.

    ``rate_per_sec`` fixes the long-run arrival rate; ``arrival`` picks the
    process shape:

    * ``"poisson"`` — exponential inter-arrival gaps (memoryless, the
      standard open-loop model), deterministic under ``seed``;
    * ``"uniform"`` — a metronome: constant gaps of ``1000/rate`` ms;
    * ``"bursty"`` — groups of ``burst_size`` arrivals packed at 4x the
      rate followed by an idle gap, preserving the long-run rate (the
      shape that stresses admission control and queue policies).

    Requests are drawn from a dedicated benchmark generator (seeded from
    the session seed plus ``seed``), so several open-loop sources — e.g.
    tenants — produce independent deterministic mixes.  ``limit`` bounds
    the stream; ``None`` means unbounded (the session pulls what it needs).
    """

    kind = "open-loop"

    def __init__(
        self,
        rate_per_sec: float,
        arrival: str = "poisson",
        *,
        seed: int = 0,
        burst_size: int = 8,
        limit: int | None = None,
    ) -> None:
        self.rate_per_sec = rate_per_sec
        self.arrival = arrival
        self.seed = seed
        self.burst_size = burst_size
        self.limit = limit
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.rate_per_sec, (int, float)) or self.rate_per_sec <= 0:
            raise WorkloadError(
                f"rate_per_sec must be positive, got {self.rate_per_sec!r}"
            )
        if self.arrival not in ARRIVAL_PROCESSES:
            raise WorkloadError(
                f"unknown arrival process {self.arrival!r}; available: "
                f"{', '.join(ARRIVAL_PROCESSES)}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise WorkloadError(f"seed must be an integer, got {self.seed!r}")
        if not isinstance(self.burst_size, int) or self.burst_size < 1:
            raise WorkloadError(
                f"burst_size must be an integer >= 1, got {self.burst_size!r}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise WorkloadError(f"limit must be a positive integer or None, got {self.limit!r}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rate_per_sec": self.rate_per_sec,
            "arrival": self.arrival,
            "seed": self.seed,
            "burst_size": self.burst_size,
            "limit": self.limit,
        }

    def compile(self, ctx: CompileContext, *, _tenant: str | None = None) -> CompiledSource:
        generator = ctx.make_generator(self.seed)
        gap_seed = ctx.seed * 31 + self.seed
        if _vectorized.HAVE_NUMPY:
            # Vectorized path: timestamps arrive in pre-built batches; each
            # batch pairs time i with the generator's request i, exactly as
            # the scalar loop below would (the streams are independent, so
            # the pairing — and therefore the arrival stream — is identical).
            time_chunks = _vectorized.arrival_time_chunks(
                self.arrival, self.rate_per_sec,
                seed=gap_seed, burst_size=self.burst_size,
                chunk_size=_ARRIVAL_CHUNK, limit=self.limit,
            )

            def chunk_stream() -> Iterator[list[Arrival]]:
                next_request = generator.next_request
                for times in time_chunks:
                    chunk = []
                    append = chunk.append
                    for at in times:
                        raw = next_request()
                        append(Arrival(
                            at, ProcedureRequest(raw.procedure, raw.parameters), _tenant
                        ))
                    yield chunk

            return CompiledSource(chunks=chunk_stream())

        gaps = arrival_gaps(
            self.arrival, self.rate_per_sec,
            seed=gap_seed, burst_size=self.burst_size,
        )

        def stream() -> Iterator[Arrival]:
            clock = 0.0
            emitted = 0
            for gap in gaps:
                clock += gap
                raw = generator.next_request()
                yield Arrival(
                    clock, ProcedureRequest(raw.procedure, raw.parameters), _tenant
                )
                emitted += 1
                if self.limit is not None and emitted >= self.limit:
                    return

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OpenLoopSource) and self.to_dict() == other.to_dict()


class TraceReplaySource(WorkloadSource):
    """Replay a recorded :class:`WorkloadTrace` as live traffic.

    Records with embedded submission timestamps (``at_ms``, stamped by
    :class:`~repro.workload.recorder.TraceRecorder` when recording against
    an arrival process) replay at those times; records without one fall
    back to a metronome of ``default_gap_ms``.  ``speedup`` rescales time
    (2.0 replays twice as fast — the what-if-load-doubles knob).

    Exactly one of ``trace`` (in-memory, serialized inline) or ``path``
    (a JSON-lines file, loaded lazily at compile time) must be given.
    Replay is deterministic: the same trace yields the same arrival stream
    in every session.
    """

    kind = "trace-replay"

    def __init__(
        self,
        trace: WorkloadTrace | None = None,
        *,
        path: str | None = None,
        speedup: float = 1.0,
        default_gap_ms: float = 1.0,
        limit: int | None = None,
    ) -> None:
        self.trace = trace
        self.path = path
        self.speedup = speedup
        self.default_gap_ms = default_gap_ms
        self.limit = limit
        self.validate()

    def validate(self) -> None:
        if (self.trace is None) == (self.path is None):
            raise WorkloadError(
                "TraceReplaySource needs exactly one of trace= (in-memory) "
                "or path= (JSON-lines file)"
            )
        if self.trace is not None and not isinstance(self.trace, WorkloadTrace):
            raise WorkloadError(
                f"trace must be a WorkloadTrace, got {type(self.trace).__name__}"
            )
        if not isinstance(self.speedup, (int, float)) or self.speedup <= 0:
            raise WorkloadError(f"speedup must be positive, got {self.speedup!r}")
        if not isinstance(self.default_gap_ms, (int, float)) or self.default_gap_ms < 0:
            raise WorkloadError(
                f"default_gap_ms must be non-negative, got {self.default_gap_ms!r}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise WorkloadError(f"limit must be a positive integer or None, got {self.limit!r}")

    def to_dict(self) -> dict:
        out: dict = {
            "kind": self.kind,
            "speedup": self.speedup,
            "default_gap_ms": self.default_gap_ms,
            "limit": self.limit,
        }
        if self.path is not None:
            out["path"] = self.path
        else:
            out["records"] = [record.to_json() for record in self.trace]
        return out

    def _load(self) -> WorkloadTrace:
        if self.trace is not None:
            return self.trace
        try:
            return WorkloadTrace.load(self.path)
        except WorkloadError:
            raise
        except OSError as error:
            raise WorkloadError(
                f"cannot read workload trace {self.path!r}: {error}"
            ) from error

    def compile(self, ctx: CompileContext) -> CompiledSource:
        trace = self._load()
        speedup = self.speedup
        gap = self.default_gap_ms
        limit = self.limit

        def stream() -> Iterator[Arrival]:
            clock = 0.0
            for index, record in enumerate(trace):
                if limit is not None and index >= limit:
                    return
                at = record.at_ms if record.at_ms is not None else index * gap
                # Timestamps never run backwards, even in a hand-edited trace.
                clock = max(clock, at / speedup)
                yield Arrival(
                    clock,
                    ProcedureRequest(record.procedure, tuple(record.parameters)),
                )

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TraceReplaySource) and self.to_dict() == other.to_dict()


class PhasedSource(WorkloadSource):
    """Time-phased mixture: each phase contributes one arrival source.

    ``phases`` is a sequence of ``(duration_ms, source)`` pairs; phase
    *i+1* starts when phase *i*'s duration elapses, and each phase's source
    emits only the arrivals that fall inside its window.  The final phase
    may use ``None`` as its duration to run unbounded.  Phases must be
    arrival sources (closed loops have no arrival clock to phase).
    """

    kind = "phased"

    def __init__(
        self, phases: Iterable[tuple[float | None, WorkloadSource]]
    ) -> None:
        self.phases = list(phases)
        self.validate()

    def validate(self) -> None:
        if not self.phases:
            raise WorkloadError("PhasedSource needs at least one phase")
        last = len(self.phases) - 1
        for index, entry in enumerate(self.phases):
            if not isinstance(entry, (tuple, list)) or len(entry) != 2:
                raise WorkloadError(
                    f"phase {index} must be a (duration_ms, source) pair, got {entry!r}"
                )
            duration, source = entry
            if not isinstance(source, WorkloadSource):
                raise WorkloadError(
                    f"phase {index} source must be a WorkloadSource, "
                    f"got {type(source).__name__}"
                )
            if isinstance(source, ClosedLoopSource):
                raise WorkloadError(
                    f"phase {index}: closed-loop sources cannot be phased "
                    "(they have no arrival clock); use OpenLoopSource or "
                    "TraceReplaySource phases"
                )
            source.validate()
            if duration is None:
                if index != last:
                    raise WorkloadError(
                        f"phase {index}: only the final phase may be unbounded "
                        "(duration None)"
                    )
            elif not isinstance(duration, (int, float)) or duration <= 0:
                raise WorkloadError(
                    f"phase {index} duration_ms must be positive (or None for "
                    f"the final phase), got {duration!r}"
                )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "phases": [
                {"duration_ms": duration, "source": source.to_dict()}
                for duration, source in self.phases
            ],
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        def stream() -> Iterator[Arrival]:
            offset = 0.0
            for duration, source in self.phases:
                compiled = source.compile(ctx)
                while True:
                    arrival = compiled.peek()
                    if arrival is None:
                        break
                    if duration is not None and arrival.at_ms >= duration:
                        break
                    compiled.pop()
                    yield arrival._replace(at_ms=offset + arrival.at_ms)
                if duration is None:
                    return
                offset += duration

        return CompiledSource(stream())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PhasedSource) and self.to_dict() == other.to_dict()


class TenantSource(WorkloadSource):
    """Labeled composition: several tenants share one cluster.

    ``tenants`` maps a tenant name to its arrival source.  The compiled
    stream is a timestamp-ordered merge of the per-tenant streams, each
    arrival labeled with its tenant (ties break on declaration order, which
    keeps merges deterministic).  Per-tenant throughput/latency appear in
    :attr:`~repro.sim.metrics.SimulationResult.tenants` and through
    ``ClusterSession.snapshot_metrics(tenant=...)``.
    """

    kind = "tenants"

    def __init__(self, tenants: Mapping[str, WorkloadSource]) -> None:
        self.tenants = dict(tenants)
        self.validate()

    def validate(self) -> None:
        if not self.tenants:
            raise WorkloadError("TenantSource needs at least one tenant")
        for name, source in self.tenants.items():
            if not isinstance(name, str) or not name:
                raise WorkloadError(f"tenant names must be non-empty strings, got {name!r}")
            if not isinstance(source, WorkloadSource):
                raise WorkloadError(
                    f"tenant {name!r} source must be a WorkloadSource, "
                    f"got {type(source).__name__}"
                )
            if isinstance(source, ClosedLoopSource):
                raise WorkloadError(
                    f"tenant {name!r}: closed-loop sources cannot be labeled "
                    "tenants (they have no arrival clock); use OpenLoopSource "
                    "or TraceReplaySource streams"
                )
            source.validate()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "tenants": {name: source.to_dict() for name, source in self.tenants.items()},
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        # Each tenant compiles under a seed derived from its name, so two
        # tenants declared with identical sources still produce independent
        # (but deterministic) streams instead of byte-identical twins.
        compiled = [
            (order, name, source.compile(ctx._replace(
                seed=ctx.seed + (zlib.crc32(name.encode("utf-8")) & 0xFFFF)
            )))
            for order, (name, source) in enumerate(self.tenants.items())
        ]
        return CompiledSource(_merge_labeled(compiled))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TenantSource) and self.to_dict() == other.to_dict()


def _merge_labeled(
    compiled: list[tuple[int, str | None, CompiledSource]]
) -> Iterator[Arrival]:
    """Timestamp-ordered merge of labeled streams (ties break on order).

    Shared by :class:`TenantSource` and :class:`ClientCohortSource`.  A
    ``None`` label leaves arrivals unlabeled; otherwise the label fills any
    arrival whose own tenant is unset (inner labels — a nested
    TenantSource — win over the outer name).
    """
    heap: list[tuple[float, int, int]] = []
    streams = {}
    for order, name, sub in compiled:
        streams[order] = (name, sub)
        arrival = sub.peek()
        if arrival is not None:
            heap.append((arrival.at_ms, order, 0))
    heapq.heapify(heap)
    sequence = 0
    while heap:
        _, order, _ = heapq.heappop(heap)
        name, sub = streams[order]
        arrival = sub.pop()
        if name is not None and arrival.tenant is None:
            arrival = arrival._replace(tenant=name)
        yield arrival
        nxt = sub.peek()
        if nxt is not None:
            sequence += 1
            heapq.heappush(heap, (nxt.at_ms, order, sequence))


class Cohort:
    """One homogeneous slice of a simulated client population.

    A cohort declares ``users`` identical clients and how each behaves —
    either **open-loop** (``rate_per_user_per_sec``: every user submits on
    its own clock regardless of responses) or **closed-loop**
    (``think_time_ms``: every user waits that long between completion and
    next submission).  Exactly one of the two must be given.

    Cohorts exist so a million-user population costs O(#cohorts) state
    instead of a million live client objects: by Poisson superposition, N
    independent users each arriving at rate *r* are statistically one
    Poisson process at rate ``N*r``, so the whole cohort compiles to a
    single aggregated arrival stream.  Closed-loop cohorts are approximated
    the same way at rate ``users * 1000 / think_time_ms`` — the think-time-
    dominated regime, accurate while response time is small relative to
    think time (i.e. below saturation; past the knee a real closed loop
    would self-throttle where this approximation keeps pushing, which is
    exactly the overload behavior the knee-finder wants to measure).
    """

    def __init__(
        self,
        name: str,
        users: int,
        *,
        think_time_ms: float | None = None,
        rate_per_user_per_sec: float | None = None,
        arrival: str = "poisson",
        burst_size: int = 8,
    ) -> None:
        self.name = name
        self.users = users
        self.think_time_ms = think_time_ms
        self.rate_per_user_per_sec = rate_per_user_per_sec
        self.arrival = arrival
        self.burst_size = burst_size
        self.validate()

    def validate(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise WorkloadError(f"cohort name must be a non-empty string, got {self.name!r}")
        if (
            not isinstance(self.users, int)
            or isinstance(self.users, bool)
            or self.users < 1
        ):
            raise WorkloadError(
                f"cohort {self.name!r}: users must be an integer >= 1, got {self.users!r}"
            )
        if (self.think_time_ms is None) == (self.rate_per_user_per_sec is None):
            raise WorkloadError(
                f"cohort {self.name!r} needs exactly one of think_time_ms= "
                "(closed-loop users) or rate_per_user_per_sec= (open-loop users)"
            )
        if self.think_time_ms is not None and (
            not isinstance(self.think_time_ms, (int, float)) or self.think_time_ms <= 0
        ):
            raise WorkloadError(
                f"cohort {self.name!r}: think_time_ms must be positive, "
                f"got {self.think_time_ms!r}"
            )
        if self.rate_per_user_per_sec is not None and (
            not isinstance(self.rate_per_user_per_sec, (int, float))
            or self.rate_per_user_per_sec <= 0
        ):
            raise WorkloadError(
                f"cohort {self.name!r}: rate_per_user_per_sec must be positive, "
                f"got {self.rate_per_user_per_sec!r}"
            )
        if self.arrival not in ARRIVAL_PROCESSES:
            raise WorkloadError(
                f"cohort {self.name!r}: unknown arrival process {self.arrival!r}; "
                f"available: {', '.join(ARRIVAL_PROCESSES)}"
            )
        if not isinstance(self.burst_size, int) or self.burst_size < 1:
            raise WorkloadError(
                f"cohort {self.name!r}: burst_size must be an integer >= 1, "
                f"got {self.burst_size!r}"
            )

    @property
    def aggregate_rate_per_sec(self) -> float:
        """The cohort's one-stream arrival rate (superposition of its users)."""
        if self.rate_per_user_per_sec is not None:
            return self.users * self.rate_per_user_per_sec
        return self.users * 1000.0 / self.think_time_ms

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "users": self.users,
            "arrival": self.arrival,
            "burst_size": self.burst_size,
        }
        if self.think_time_ms is not None:
            out["think_time_ms"] = self.think_time_ms
        else:
            out["rate_per_user_per_sec"] = self.rate_per_user_per_sec
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "Cohort":
        if not isinstance(data, Mapping) or "name" not in data or "users" not in data:
            raise WorkloadError(
                f"each cohort must be a dict with 'name' and 'users', got {data!r}"
            )
        return Cohort(
            data["name"],
            data["users"],
            think_time_ms=data.get("think_time_ms"),
            rate_per_user_per_sec=data.get("rate_per_user_per_sec"),
            arrival=data.get("arrival", "poisson"),
            burst_size=data.get("burst_size", 8),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Cohort) and self.to_dict() == other.to_dict()


class ClientCohortSource(WorkloadSource):
    """A client population expressed as weighted cohorts.

    ``cohorts`` partitions the population into homogeneous groups (e.g.
    900k casual browsers at 0.2 txn/s each + 100k power users at 2 txn/s).
    Each cohort compiles to ONE aggregated arrival stream (see
    :class:`Cohort` for the superposition argument), so total state is
    O(#cohorts) no matter how many users are declared — the structural
    trick that makes a ≥1M-user overload study tractable on one host.

    With ``label_tenants`` (the default), arrivals are tagged with their
    cohort name, so per-cohort throughput and latency fall out of the
    existing per-tenant accounting for free; disable it to skip the
    per-arrival labeling and merge bookkeeping when only aggregate metrics
    matter (a single unlabeled cohort compiles straight to its stream).
    """

    kind = "cohorts"

    def __init__(
        self,
        cohorts: Iterable[Cohort],
        *,
        seed: int = 0,
        label_tenants: bool = True,
    ) -> None:
        self.cohorts = list(cohorts)
        self.seed = seed
        self.label_tenants = bool(label_tenants)
        self.validate()

    def validate(self) -> None:
        if not self.cohorts:
            raise WorkloadError("ClientCohortSource needs at least one cohort")
        seen: set[str] = set()
        for cohort in self.cohorts:
            if not isinstance(cohort, Cohort):
                raise WorkloadError(
                    f"cohorts must be Cohort instances, got {type(cohort).__name__}"
                )
            cohort.validate()
            if cohort.name in seen:
                raise WorkloadError(f"duplicate cohort name {cohort.name!r}")
            seen.add(cohort.name)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise WorkloadError(f"seed must be an integer, got {self.seed!r}")

    def total_users(self) -> int:
        """The declared population size across all cohorts."""
        return sum(cohort.users for cohort in self.cohorts)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cohorts": [cohort.to_dict() for cohort in self.cohorts],
            "seed": self.seed,
            "label_tenants": self.label_tenants,
        }

    def compile(self, ctx: CompileContext) -> CompiledSource:
        compiled = []
        for order, cohort in enumerate(self.cohorts):
            # Per-cohort seed derived from the name, mirroring TenantSource,
            # so identical cohort declarations still get independent streams.
            sub_ctx = ctx._replace(
                seed=ctx.seed + (zlib.crc32(cohort.name.encode("utf-8")) & 0xFFFF)
            )
            label = cohort.name if self.label_tenants else None
            aggregated = OpenLoopSource(
                cohort.aggregate_rate_per_sec,
                cohort.arrival,
                seed=self.seed + order,
                burst_size=cohort.burst_size,
            )
            # Labels are applied at Arrival construction (no per-arrival
            # _replace in the merge) — the merge only orders timestamps.
            compiled.append((order, None, aggregated.compile(sub_ctx, _tenant=label)))
        if len(compiled) == 1:
            return compiled[0][2]
        return CompiledSource(_merge_labeled(compiled))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ClientCohortSource) and self.to_dict() == other.to_dict()


# ----------------------------------------------------------------------
# Deterministic arrival-gap processes (shared with the trace recorder)
# ----------------------------------------------------------------------
def arrival_gaps(
    process: str,
    rate_per_sec: float,
    *,
    seed: int = 0,
    burst_size: int = 8,
    vectorized: bool | None = None,
) -> Iterator[float]:
    """Infinite inter-arrival gaps (ms) for one arrival process.

    All three processes preserve the long-run rate ``rate_per_sec`` and are
    fully determined by ``seed`` — the property every replay/determinism
    contract in this package leans on.

    With numpy installed, Poisson gaps are drawn in batches through the
    vectorized kernel (the canonical stream; see
    :mod:`repro.workload.vectorized`), so iterator consumers and chunked
    consumers observe byte-identical gaps.  ``vectorized`` forces the
    choice for testing: ``False`` selects the pure-Python ``math.log``
    fallback, which consumes the identical uniform draws and matches the
    kernel's gaps to within one ulp of the log.
    """
    if rate_per_sec <= 0:
        raise WorkloadError(f"rate_per_sec must be positive, got {rate_per_sec!r}")
    mean_ms = 1000.0 / rate_per_sec
    if process == "uniform":
        def uniform() -> Iterator[float]:
            while True:
                yield mean_ms
        return uniform()
    if process == "poisson":
        rng = WorkloadRandom(seed)
        use_kernel = _vectorized.HAVE_NUMPY if vectorized is None else vectorized
        if use_kernel:
            def poisson_batched() -> Iterator[float]:
                core = rng.core
                while True:
                    yield from _vectorized.exponential_gap_batch(
                        core, mean_ms, _GAP_BATCH
                    ).tolist()
            return poisson_batched()
        def poisson() -> Iterator[float]:
            while True:
                # floating() draws from [0, 1); log(1-u) is always finite.
                yield -mean_ms * math.log(1.0 - rng.floating(0.0, 1.0))
        return poisson()
    if process == "bursty":
        # burst_size arrivals packed at 4x the rate, then an idle gap that
        # restores the long-run rate: one cycle spans burst_size * mean_ms.
        intra = mean_ms / 4.0
        pause = burst_size * mean_ms - (burst_size - 1) * intra
        def bursty() -> Iterator[float]:
            first = True
            while True:
                yield pause if not first else intra
                first = False
                for _ in range(burst_size - 1):
                    yield intra
        return bursty()
    raise WorkloadError(
        f"unknown arrival process {process!r}; available: {', '.join(ARRIVAL_PROCESSES)}"
    )


def arrival_times(
    process: str,
    rate_per_sec: float,
    count: int,
    *,
    seed: int = 0,
    burst_size: int = 8,
    vectorized: bool | None = None,
) -> list[float]:
    """The first ``count`` absolute arrival times (ms) of a process.

    Uses the vectorized kernel in one shot when numpy is available (byte-
    identical to accumulating :func:`arrival_gaps`); ``vectorized=False``
    forces the scalar accumulation for testing and numpy-less hosts.
    """
    if count < 0:
        raise WorkloadError("count must be non-negative")
    use_kernel = _vectorized.HAVE_NUMPY if vectorized is None else vectorized
    if use_kernel:
        return _vectorized.vectorized_arrival_times(
            process, rate_per_sec, count, seed=seed, burst_size=burst_size
        )
    times: list[float] = []
    clock = 0.0
    gaps = arrival_gaps(
        process, rate_per_sec, seed=seed, burst_size=burst_size, vectorized=False
    )
    for _ in range(count):
        clock += next(gaps)
        times.append(clock)
    return times


# ----------------------------------------------------------------------
# Registry (dict-form deserialization)
# ----------------------------------------------------------------------
def _closed_loop_from_dict(data: Mapping) -> ClosedLoopSource:
    return ClosedLoopSource(
        clients_per_partition=data.get("clients_per_partition", 4),
        think_time_ms=data.get("think_time_ms", 0.0),
    )


def _open_loop_from_dict(data: Mapping) -> OpenLoopSource:
    if "rate_per_sec" not in data:
        raise WorkloadError("open-loop source dict is missing 'rate_per_sec'")
    return OpenLoopSource(
        data["rate_per_sec"],
        data.get("arrival", "poisson"),
        seed=data.get("seed", 0),
        burst_size=data.get("burst_size", 8),
        limit=data.get("limit"),
    )


def _trace_replay_from_dict(data: Mapping) -> TraceReplaySource:
    from .trace import TransactionTraceRecord

    trace = None
    if "records" in data:
        trace = WorkloadTrace(
            [TransactionTraceRecord.from_json(entry) for entry in data["records"]]
        )
    return TraceReplaySource(
        trace,
        path=data.get("path"),
        speedup=data.get("speedup", 1.0),
        default_gap_ms=data.get("default_gap_ms", 1.0),
        limit=data.get("limit"),
    )


def _phased_from_dict(data: Mapping) -> PhasedSource:
    phases = data.get("phases")
    if not isinstance(phases, (list, tuple)):
        raise WorkloadError("phased source dict needs a 'phases' list")
    built = []
    for entry in phases:
        if not isinstance(entry, Mapping) or "source" not in entry:
            raise WorkloadError(
                f"each phase must be a dict with 'duration_ms' and 'source', got {entry!r}"
            )
        built.append((entry.get("duration_ms"), WorkloadSource.from_dict(entry["source"])))
    return PhasedSource(built)


def _tenants_from_dict(data: Mapping) -> TenantSource:
    tenants = data.get("tenants")
    if not isinstance(tenants, Mapping):
        raise WorkloadError("tenants source dict needs a 'tenants' mapping")
    return TenantSource(
        {name: WorkloadSource.from_dict(source) for name, source in tenants.items()}
    )


def _cohorts_from_dict(data: Mapping) -> ClientCohortSource:
    cohorts = data.get("cohorts")
    if not isinstance(cohorts, (list, tuple)):
        raise WorkloadError("cohorts source dict needs a 'cohorts' list")
    return ClientCohortSource(
        [Cohort.from_dict(entry) for entry in cohorts],
        seed=data.get("seed", 0),
        label_tenants=data.get("label_tenants", True),
    )


_SOURCE_KINDS: dict[str, Callable[[Mapping], WorkloadSource]] = {
    ClosedLoopSource.kind: _closed_loop_from_dict,
    OpenLoopSource.kind: _open_loop_from_dict,
    TraceReplaySource.kind: _trace_replay_from_dict,
    PhasedSource.kind: _phased_from_dict,
    TenantSource.kind: _tenants_from_dict,
    ClientCohortSource.kind: _cohorts_from_dict,
}

__all__ = [
    "ARRIVAL_PROCESSES",
    "Arrival",
    "CompileContext",
    "CompiledSource",
    "WorkloadSource",
    "ClosedLoopSource",
    "OpenLoopSource",
    "TraceReplaySource",
    "PhasedSource",
    "TenantSource",
    "Cohort",
    "ClientCohortSource",
    "arrival_gaps",
    "arrival_times",
]
