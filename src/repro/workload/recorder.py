"""Trace recorder.

Builds a :class:`~repro.workload.trace.WorkloadTrace` by actually executing
requests against a populated database with no lock restrictions.  This is the
reproduction of the paper's "sample workload trace ... collected over a
simulated one hour period": the control code runs for real, so loops,
conditionals and user aborts all show up in the trace exactly as they would
in production.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..catalog.schema import Catalog
from ..engine.engine import AttemptOutcome, ExecutionEngine
from ..storage.partition_store import Database
from ..types import PartitionId, ProcedureRequest
from .trace import QueryTraceRecord, TransactionTraceRecord, WorkloadTrace

#: Chooses the base partition used while recording a request.
BasePartitionChooser = Callable[[ProcedureRequest], PartitionId]


class TraceRecorder:
    """Executes requests and records their actual execution paths."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        *,
        base_partition_chooser: BasePartitionChooser | None = None,
        embed_partitions: bool = False,
    ) -> None:
        self.catalog = catalog
        self.database = database
        self.engine = ExecutionEngine(catalog, database)
        self._choose_base = base_partition_chooser or self._default_base_chooser
        self.embed_partitions = embed_partitions
        self._next_txn_id = 1

    # ------------------------------------------------------------------
    def record(self, requests: Iterable[ProcedureRequest]) -> WorkloadTrace:
        """Execute every request once and return the resulting trace."""
        trace = WorkloadTrace()
        for request in requests:
            trace.append(self.record_one(request))
        return trace

    def record_one(self, request: ProcedureRequest) -> TransactionTraceRecord:
        """Execute a single request (unrestricted) and trace it."""
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        base_partition = self._choose_base(request)
        attempt = self.engine.execute_attempt(
            request,
            txn_id=txn_id,
            base_partition=base_partition,
            locked_partitions=None,
            undo_enabled=True,
        )
        queries = tuple(
            QueryTraceRecord(
                statement=invocation.statement,
                parameters=invocation.parameters,
                partitions=tuple(invocation.partitions) if self.embed_partitions else None,
            )
            for invocation in attempt.invocations
        )
        return TransactionTraceRecord(
            txn_id=txn_id,
            procedure=request.procedure,
            parameters=tuple(request.parameters),
            queries=queries,
            aborted=attempt.outcome is AttemptOutcome.USER_ABORT,
        )

    # ------------------------------------------------------------------
    def _default_base_chooser(self, request: ProcedureRequest) -> PartitionId:
        """Default base partition: home partition of the first scalar parameter.

        Benchmark generators typically put the anchor entity id (warehouse,
        subscriber, user) first; hashing it matches what a perfectly routed
        request would do.  Callers with different conventions should supply
        their own chooser (the benchmark packages do).
        """
        for value in request.parameters:
            if isinstance(value, (int, str)) and not isinstance(value, bool):
                return self.catalog.scheme.partition_for_value(value)
        return 0
