"""Trace recorder.

Builds a :class:`~repro.workload.trace.WorkloadTrace` by actually executing
requests against a populated database with no lock restrictions.  This is the
reproduction of the paper's "sample workload trace ... collected over a
simulated one hour period": the control code runs for real, so loops,
conditionals and user aborts all show up in the trace exactly as they would
in production.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from ..catalog.schema import Catalog
from ..engine.engine import AttemptOutcome, ExecutionEngine
from ..errors import WorkloadError
from ..storage.partition_store import Database
from ..types import PartitionId, ProcedureRequest
from .trace import QueryTraceRecord, TransactionTraceRecord, WorkloadTrace

#: Chooses the base partition used while recording a request.
BasePartitionChooser = Callable[[ProcedureRequest], PartitionId]


class TraceRecorder:
    """Executes requests and records their actual execution paths."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        *,
        base_partition_chooser: BasePartitionChooser | None = None,
        embed_partitions: bool = False,
    ) -> None:
        self.catalog = catalog
        self.database = database
        self.engine = ExecutionEngine(catalog, database)
        self._choose_base = base_partition_chooser or self._default_base_chooser
        self.embed_partitions = embed_partitions
        self._next_txn_id = 1

    # ------------------------------------------------------------------
    def record(
        self,
        requests: Iterable[ProcedureRequest],
        *,
        arrival_times_ms: Iterable[float] | None = None,
    ) -> WorkloadTrace:
        """Execute every request once and return the resulting trace.

        ``arrival_times_ms`` optionally stamps each record with a submission
        timestamp (e.g. from :func:`repro.workload.sources.arrival_times`),
        which :class:`~repro.workload.sources.TraceReplaySource` replays at
        original or rescaled speed.  The iterable must yield at least as
        many timestamps as there are requests.
        """
        trace = WorkloadTrace()
        times: Iterator[float] | None = (
            iter(arrival_times_ms) if arrival_times_ms is not None else None
        )
        for request in requests:
            at_ms = None
            if times is not None:
                try:
                    at_ms = next(times)
                except StopIteration:
                    raise WorkloadError(
                        f"arrival_times_ms ran out after {len(trace)} "
                        f"timestamp(s) with requests still unrecorded"
                    ) from None
            trace.append(self.record_one(request, at_ms=at_ms))
        return trace

    def record_one(
        self, request: ProcedureRequest, *, at_ms: float | None = None
    ) -> TransactionTraceRecord:
        """Execute a single request (unrestricted) and trace it."""
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        base_partition = self._choose_base(request)
        attempt = self.engine.execute_attempt(
            request,
            txn_id=txn_id,
            base_partition=base_partition,
            locked_partitions=None,
            undo_enabled=True,
        )
        queries = tuple(
            QueryTraceRecord(
                statement=invocation.statement,
                parameters=invocation.parameters,
                partitions=tuple(invocation.partitions) if self.embed_partitions else None,
            )
            for invocation in attempt.invocations
        )
        return TransactionTraceRecord(
            txn_id=txn_id,
            procedure=request.procedure,
            parameters=tuple(request.parameters),
            queries=queries,
            aborted=attempt.outcome is AttemptOutcome.USER_ABORT,
            at_ms=at_ms,
        )

    # ------------------------------------------------------------------
    def _default_base_chooser(self, request: ProcedureRequest) -> PartitionId:
        """Default base partition: home partition of the first scalar parameter.

        Benchmark generators typically put the anchor entity id (warehouse,
        subscriber, user) first; hashing it matches what a perfectly routed
        request would do.  Callers with different conventions should supply
        their own chooser (the benchmark packages do).
        """
        for value in request.parameters:
            if isinstance(value, (int, str)) and not isinstance(value, bool):
                return self.catalog.scheme.partition_for_value(value)
        return 0
