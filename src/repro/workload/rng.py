"""Deterministic random-number helpers for workload generation.

All benchmark generators draw from a :class:`WorkloadRandom`, a thin wrapper
around :class:`random.Random` that adds the distributions OLTP benchmarks
need (TPC-C's NURand, Zipfian skew, weighted choices) while guaranteeing that
the same seed always produces the same workload — a requirement for
reproducible traces and experiments.
"""

from __future__ import annotations

import random
import string
from typing import Sequence, TypeVar

from ..errors import WorkloadError

T = TypeVar("T")

_ALPHANUMERIC = string.ascii_uppercase + string.digits


class WorkloadRandom:
    """Seeded random source with OLTP-benchmark distributions."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        # TPC-C's NURand constant; fixed so runs are reproducible.
        self._c_value = 123

    @property
    def core(self) -> random.Random:
        """The underlying :class:`random.Random`.

        Exposed for the vectorized arrival kernel, which transplants this
        generator's Mersenne-Twister state into numpy to draw gap batches
        from the *same* stream (see :mod:`repro.workload.vectorized`).
        """
        return self._random

    # ------------------------------------------------------------------
    # Plain delegation
    # ------------------------------------------------------------------
    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if low > high:
            raise WorkloadError(f"invalid range [{low}, {high}]")
        return self._random.randint(low, high)

    def floating(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def probability(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise WorkloadError(f"probability {p} outside [0, 1]")
        return self._random.random() < p

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise WorkloadError("cannot choose from an empty sequence")
        return self._random.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        return self._random.sample(list(items), count)

    def shuffle(self, items: list[T]) -> list[T]:
        shuffled = list(items)
        self._random.shuffle(shuffled)
        return shuffled

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------
    def weighted_choice(self, weighted_items: Sequence[tuple[T, float]]) -> T:
        """Choose an item with probability proportional to its weight."""
        if not weighted_items:
            raise WorkloadError("cannot choose from an empty weighted sequence")
        total = sum(weight for _, weight in weighted_items)
        if total <= 0:
            raise WorkloadError("weights must sum to a positive value")
        threshold = self._random.random() * total
        accumulated = 0.0
        for item, weight in weighted_items:
            accumulated += weight
            if threshold <= accumulated:
                return item
        return weighted_items[-1][0]

    def nurand(self, a: int, low: int, high: int) -> int:
        """TPC-C non-uniform random distribution NURand(A, x, y)."""
        value = (
            (self.integer(0, a) | self.integer(low, high)) + self._c_value
        ) % (high - low + 1) + low
        return value

    def zipf(self, n: int, skew: float = 1.0) -> int:
        """Zipfian value in ``[1, n]`` (1 is the most popular)."""
        if n < 1:
            raise WorkloadError("zipf needs n >= 1")
        if skew <= 0:
            return self.integer(1, n)
        # Rejection-free inverse-CDF over a small support; adequate for the
        # benchmark catalog sizes used here.
        harmonic = sum(1.0 / (i ** skew) for i in range(1, n + 1))
        threshold = self._random.random() * harmonic
        accumulated = 0.0
        for i in range(1, n + 1):
            accumulated += 1.0 / (i ** skew)
            if threshold <= accumulated:
                return i
        return n

    # ------------------------------------------------------------------
    # Strings
    # ------------------------------------------------------------------
    def alphanumeric(self, low: int, high: int | None = None) -> str:
        """Random alphanumeric string with length in ``[low, high]``."""
        length = low if high is None else self.integer(low, high)
        return "".join(self._random.choice(_ALPHANUMERIC) for _ in range(length))

    def numeric_string(self, length: int) -> str:
        return "".join(self._random.choice(string.digits) for _ in range(length))

    # ------------------------------------------------------------------
    def fork(self, label: str) -> "WorkloadRandom":
        """Create an independent, deterministic child generator."""
        child_seed = (self.seed * 1_000_003 + sum(ord(c) for c in label)) & 0x7FFFFFFF
        return WorkloadRandom(child_seed)
