"""Workload subsystem: how traffic is generated, recorded, and replayed.

The paper's lifecycle (§3.1) is a loop: sample a workload trace from the
running system, train the Markov models and parameter mappings off-line,
deploy them against live traffic, and keep learning on-line.  This package
holds every piece of that loop that is about *traffic* rather than about
models:

* :class:`WorkloadRandom` — a seeded random source with the OLTP benchmark
  distributions (NURand, Zipf, weighted mixes); every stream in this
  package is deterministic under its seed.
* :class:`WorkloadGenerator` — per-benchmark request factories (transaction
  mix + parameter distributions).
* :class:`TraceRecorder` / :class:`WorkloadTrace` — record requests by
  really executing them (loops, conditionals and user aborts appear exactly
  as in production) and serialize the result as JSON lines.  Records may
  carry submission timestamps (``at_ms``) so a trace captures *when* work
  arrived, not just what it was.
* :class:`WorkloadSource` and its hierarchy (:mod:`repro.workload.sources`)
  — the declarative answer to "what traffic does a cluster session serve?":

  - :class:`ClosedLoopSource` — the paper's benchmark harness: think-time
    clients that submit a new request per completion, so offered load
    always matches cluster speed (the default; byte-identical to the
    pre-source session path);
  - :class:`OpenLoopSource` — production-shaped traffic: Poisson / uniform
    / bursty arrival processes whose rate is independent of service rate —
    the regime where queues grow and admission control matters;
  - :class:`TraceReplaySource` — replay a recorded trace at original or
    rescaled timestamps, closing the record → train → replay loop;
  - :class:`PhasedSource` — time-phased workload shifts as data;
  - :class:`TenantSource` — labeled multi-tenant streams sharing one
    cluster, with per-tenant metric breakdowns;
  - :class:`ClientCohortSource` — a population of :class:`Cohort` groups
    (closed- or open-loop users) aggregated by Poisson superposition, so a
    million logical users cost O(#cohorts) state — the scale mode's
    workload shape.

With numpy available, open-loop arrival timestamps are generated in
vectorized batches (:mod:`repro.workload.vectorized`) that are
byte-identical to the scalar stream — the same seed always yields the same
arrivals either way.

Sources validate strictly, round-trip through ``to_dict`` /
``from_dict`` like the rest of :class:`~repro.session.ClusterSpec`, and
compile into deterministic arrival streams that the session layer feeds to
the simulator as ``EXTERNAL_SUBMIT`` / ``CLIENT_READY`` events.
"""

from .generator import WorkloadGenerator
from .recorder import TraceRecorder
from .rng import WorkloadRandom
from .sources import (
    ARRIVAL_PROCESSES,
    Arrival,
    ClientCohortSource,
    ClosedLoopSource,
    Cohort,
    CompileContext,
    CompiledSource,
    OpenLoopSource,
    PhasedSource,
    TenantSource,
    TraceReplaySource,
    WorkloadSource,
    arrival_gaps,
    arrival_times,
)
from .trace import QueryTraceRecord, TransactionTraceRecord, WorkloadTrace

__all__ = [
    "WorkloadRandom",
    "WorkloadGenerator",
    "TraceRecorder",
    "WorkloadTrace",
    "TransactionTraceRecord",
    "QueryTraceRecord",
    "WorkloadSource",
    "ClosedLoopSource",
    "OpenLoopSource",
    "TraceReplaySource",
    "PhasedSource",
    "TenantSource",
    "Cohort",
    "ClientCohortSource",
    "Arrival",
    "CompileContext",
    "CompiledSource",
    "ARRIVAL_PROCESSES",
    "arrival_gaps",
    "arrival_times",
]
