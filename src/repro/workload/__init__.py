"""Workload subsystem: deterministic RNG, traces, generators, recorder."""

from .generator import WorkloadGenerator
from .recorder import TraceRecorder
from .rng import WorkloadRandom
from .trace import QueryTraceRecord, TransactionTraceRecord, WorkloadTrace

__all__ = [
    "WorkloadRandom",
    "WorkloadGenerator",
    "TraceRecorder",
    "WorkloadTrace",
    "TransactionTraceRecord",
    "QueryTraceRecord",
]
