"""Vectorized arrival-time generation: the million-user scale mode's hot path.

The scalar arrival processes in :func:`repro.workload.sources.arrival_gaps`
draw one inter-arrival gap per event through a Python iterator — fine for
hundreds of clients, hopeless for production rates where a single overload
probe wants millions of arrivals.  This module generates the *same* arrival
streams in numpy batches:

* :func:`exponential_gap_batch` draws a block of Poisson-process gaps by
  transplanting the Mersenne-Twister state of the stream's
  :class:`random.Random` into a :class:`numpy.random.RandomState` (both are
  MT19937 with the identical 53-bit double output path, so the uniform draws
  are bit-for-bit the ones the scalar path would make), applying the
  exponential inverse-CDF as one vector operation, and writing the advanced
  generator state back so scalar and vectorized consumption interleave
  freely on one stream.
* :func:`arrival_time_chunks` turns any of the three processes (poisson /
  uniform / bursty) into batches of *absolute* arrival timestamps.  The
  batch prepends the running clock before ``cumsum``, which makes the
  prefix-sum bitwise identical to the scalar ``clock += gap`` accumulation
  (both reduce left to right in float64) across chunk boundaries.
* :func:`vectorized_arrival_times` is the one-shot convenience used by the
  micro-benchmarks and the trace recorder.

Stream-equivalence contract
---------------------------
With numpy installed, the vectorized kernel is the *canonical* gap stream:
``arrival_gaps`` batches through it internally, so iterator-driven and
chunk-driven consumers observe byte-identical arrivals for the same seed
(held by ``tests/workload/test_vectorized.py`` across all three processes).
Without numpy, the pure-Python fallback in :mod:`repro.workload.sources`
consumes the identical uniform sequence and differs from the kernel only in
the last ulp of ``log`` for a ~0.3% minority of Poisson gaps (``math.log``
vs numpy's vectorized log); uniform and bursty gaps are exact constants and
identical under both paths.  The fallback therefore remains a valid
deterministic stream on numpy-less hosts, and every cross-implementation
test pins the shared uniform draws exactly and the gaps to one ulp.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import WorkloadError

try:  # pragma: no cover - exercised implicitly by every numpy-present run
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less hosts
    _np = None

#: Whether the vectorized kernel is available on this host.
HAVE_NUMPY = _np is not None

#: Default arrivals per generated batch.  Large enough to amortize the
#: state-transplant and vector-op overhead (~10 µs per batch), small enough
#: that lazily compiled sources never run far ahead of what a session pulls.
DEFAULT_CHUNK = 4096


def _require_numpy() -> None:
    if not HAVE_NUMPY or _np is None:
        raise WorkloadError(
            "vectorized arrival generation requires numpy; install it or use "
            "the scalar arrival_gaps/arrival_times fallback"
        )


# ----------------------------------------------------------------------
# Mersenne-Twister state transplanting
# ----------------------------------------------------------------------
def _transplant(rng: random.Random) -> "_np.random.RandomState":
    """A ``RandomState`` positioned exactly where ``rng``'s MT19937 is.

    CPython's :class:`random.Random` and numpy's legacy
    :class:`~numpy.random.RandomState` share the MT19937 core *and* the
    53-bit double construction (``(a << 26 | b) / 2**53``), so a state copy
    makes ``random_sample`` reproduce ``rng.random()`` bit for bit.
    """
    version, internal, _gauss = rng.getstate()
    if version != 3:  # pragma: no cover - CPython has used version 3 since 2.4
        raise WorkloadError(f"unsupported random.Random state version {version}")
    state = _np.random.RandomState()
    state.set_state(("MT19937", _np.array(internal[:-1], dtype=_np.uint32), internal[-1]))
    return state


def _read_back(rng: random.Random, state: "_np.random.RandomState") -> None:
    """Advance ``rng`` to where the transplanted ``state`` has moved."""
    _, keys, pos, _, _ = state.get_state(legacy=True)
    rng.setstate((3, tuple(int(key) for key in keys) + (int(pos),), None))


# ----------------------------------------------------------------------
# Gap batches
# ----------------------------------------------------------------------
def exponential_gap_batch(
    rng: random.Random, mean_ms: float, count: int
) -> "_np.ndarray":
    """``count`` Poisson-process gaps drawn from ``rng``'s own stream.

    Consumes exactly ``count`` uniforms from ``rng`` (its state advances as
    if ``rng.random()`` had been called ``count`` times) and applies the
    same inverse CDF as the scalar path: ``-mean_ms * log(1 - u)``.
    """
    _require_numpy()
    if count < 0:
        raise WorkloadError("count must be non-negative")
    state = _transplant(rng)
    uniforms = state.random_sample(count)
    _read_back(rng, state)
    return -mean_ms * _np.log(1.0 - uniforms)


def _bursty_gap_batch(
    index: int, count: int, intra: float, pause: float, burst_size: int
) -> "_np.ndarray":
    """Gaps ``index .. index+count`` of the bursty cycle (no RNG involved).

    The scalar pattern is ``intra`` at index 0 (the stream opens mid-burst)
    and ``pause`` at every later index divisible by ``burst_size``.
    """
    gaps = _np.full(count, intra)
    first_cycle = -(-index // burst_size) * burst_size  # first multiple >= index
    if first_cycle == index and index == 0:
        first_cycle = burst_size
    gaps[first_cycle - index::burst_size] = pause
    return gaps


def arrival_time_chunks(
    process: str,
    rate_per_sec: float,
    *,
    seed: int = 0,
    burst_size: int = 8,
    chunk_size: int = DEFAULT_CHUNK,
    limit: int | None = None,
    start_clock_ms: float = 0.0,
) -> Iterator[list[float]]:
    """Batches of absolute arrival times (ms) for one arrival process.

    Yields lists of ``chunk_size`` monotonically increasing timestamps
    (the final batch may be shorter when ``limit`` bounds the stream;
    without a limit the iterator is infinite).  Timestamps are bitwise
    identical to accumulating :func:`repro.workload.sources.arrival_gaps`
    one gap at a time: each batch seeds its prefix sum with the running
    clock so the float64 additions happen in the exact scalar order.
    """
    _require_numpy()
    if rate_per_sec <= 0:
        raise WorkloadError(f"rate_per_sec must be positive, got {rate_per_sec!r}")
    if chunk_size < 1:
        raise WorkloadError(f"chunk_size must be >= 1, got {chunk_size!r}")
    if limit is not None and limit < 0:
        raise WorkloadError(f"limit must be non-negative or None, got {limit!r}")
    mean_ms = 1000.0 / rate_per_sec
    if process == "poisson":
        rng = random.Random(seed)
        make_gaps = lambda index, count: exponential_gap_batch(rng, mean_ms, count)
    elif process == "uniform":
        make_gaps = lambda index, count: _np.full(count, mean_ms)
    elif process == "bursty":
        if burst_size < 1:
            raise WorkloadError(f"burst_size must be >= 1, got {burst_size!r}")
        intra = mean_ms / 4.0
        pause = burst_size * mean_ms - (burst_size - 1) * intra
        make_gaps = lambda index, count: _bursty_gap_batch(
            index, count, intra, pause, burst_size
        )
    else:
        raise WorkloadError(
            f"unknown arrival process {process!r}; available: poisson, uniform, bursty"
        )

    def stream() -> Iterator[list[float]]:
        clock = start_clock_ms
        emitted = 0
        scratch = _np.empty(chunk_size + 1)
        while limit is None or emitted < limit:
            count = chunk_size if limit is None else min(chunk_size, limit - emitted)
            buffer = scratch if count == chunk_size else _np.empty(count + 1)
            # Seeding the prefix sum with the clock keeps every addition in
            # the scalar `clock += gap` order, so chunk boundaries never
            # perturb a single bit of the emitted timestamps.
            buffer[0] = clock
            buffer[1:] = make_gaps(emitted, count)
            times = _np.cumsum(buffer)
            clock = float(times[-1])
            emitted += count
            yield times[1:].tolist()

    return stream()


def vectorized_arrival_times(
    process: str,
    rate_per_sec: float,
    count: int,
    *,
    seed: int = 0,
    burst_size: int = 8,
) -> list[float]:
    """The first ``count`` absolute arrival times (ms), in one batch.

    The vectorized equivalent of :func:`repro.workload.sources.arrival_times`
    (byte-identical output); used by the 1M-arrival micro-benchmark and by
    trace recording at production rates.
    """
    if count < 0:
        raise WorkloadError("count must be non-negative")
    if count == 0:
        return []
    for chunk in arrival_time_chunks(
        process, rate_per_sec, seed=seed, burst_size=burst_size,
        chunk_size=count, limit=count,
    ):
        return chunk
    return []  # pragma: no cover - limit=count always yields one chunk


__all__ = [
    "HAVE_NUMPY",
    "DEFAULT_CHUNK",
    "exponential_gap_batch",
    "arrival_time_chunks",
    "vectorized_arrival_times",
]
