"""Workload generator base class.

Each benchmark supplies a generator that turns a deterministic random source
into a stream of :class:`~repro.types.ProcedureRequest` objects following the
benchmark's transaction mix and parameter distributions.  Generators also
expose the *home partition* of a request — the partition of the "anchor"
entity (warehouse, subscriber, seller) — which the trace recorder and the
oracle strategy use as the control-code location.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

from ..catalog.schema import Catalog
from ..errors import WorkloadError
from ..types import PartitionId, ProcedureRequest
from .rng import WorkloadRandom


class WorkloadGenerator(ABC):
    """Produces procedure requests for one benchmark."""

    #: Benchmark name (e.g. ``"tpcc"``).
    benchmark: str = ""

    def __init__(self, catalog: Catalog, rng: WorkloadRandom | None = None) -> None:
        self.catalog = catalog
        self.rng = rng or WorkloadRandom(0)

    # ------------------------------------------------------------------
    @abstractmethod
    def next_request(self) -> ProcedureRequest:
        """Generate the next request according to the transaction mix."""

    @abstractmethod
    def home_partition(self, request: ProcedureRequest) -> PartitionId:
        """Best base partition for a request (used by the oracle and traces)."""

    # ------------------------------------------------------------------
    def generate(self, count: int) -> list[ProcedureRequest]:
        """Generate ``count`` requests."""
        if count < 0:
            raise WorkloadError("count must be non-negative")
        return [self.next_request() for _ in range(count)]

    def stream(self, count: int) -> Iterator[ProcedureRequest]:
        for _ in range(count):
            yield self.next_request()

    # ------------------------------------------------------------------
    @property
    def mix(self) -> Sequence[tuple[str, float]]:
        """The (procedure, weight) transaction mix; informational."""
        return ()

    def describe(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{weight:g}" for name, weight in self.mix)
        return f"<{type(self).__name__} {parts}>"
