"""Workload traces.

A *workload trace* is the input to Markov-model generation and parameter
mapping (Section 3.1 of the paper): for each sampled transaction it records
the procedure's input parameters and the sequence of queries the transaction
executed with their parameters.  Traces deliberately do **not** store the
partitions each query accessed — the paper notes that partitions must be
re-estimated with the DBMS's internal API whenever the partitioning scheme
changes, and the model builder here does exactly that.  (The recorder can
optionally embed the observed partitions for debugging.)

Traces serialize to JSON-lines so they can be saved, inspected and reloaded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import WorkloadError


@dataclass(frozen=True)
class QueryTraceRecord:
    """One query invocation inside a traced transaction."""

    statement: str
    parameters: tuple
    partitions: tuple[int, ...] | None = None

    def to_json(self) -> dict:
        payload: dict = {"statement": self.statement, "parameters": _jsonable(self.parameters)}
        if self.partitions is not None:
            payload["partitions"] = list(self.partitions)
        return payload

    @staticmethod
    def from_json(payload: dict) -> "QueryTraceRecord":
        partitions = payload.get("partitions")
        return QueryTraceRecord(
            statement=payload["statement"],
            parameters=_detuple(payload["parameters"]),
            partitions=tuple(partitions) if partitions is not None else None,
        )


@dataclass(frozen=True)
class TransactionTraceRecord:
    """One traced transaction: procedure inputs plus the executed queries.

    ``at_ms`` optionally records the transaction's submission timestamp
    relative to the start of the trace.  The recorder stamps it when the
    trace is collected against an arrival process, and
    :class:`~repro.workload.sources.TraceReplaySource` replays stamped
    records at their original (or rescaled) times; unstamped records fall
    back to a fixed replay gap.
    """

    txn_id: int
    procedure: str
    parameters: tuple
    queries: tuple[QueryTraceRecord, ...]
    aborted: bool = False
    at_ms: float | None = None

    @property
    def query_count(self) -> int:
        return len(self.queries)

    def to_json(self) -> dict:
        payload = {
            "txn_id": self.txn_id,
            "procedure": self.procedure,
            "parameters": _jsonable(self.parameters),
            "queries": [q.to_json() for q in self.queries],
            "aborted": self.aborted,
        }
        if self.at_ms is not None:
            payload["at_ms"] = self.at_ms
        return payload

    @staticmethod
    def from_json(payload: dict) -> "TransactionTraceRecord":
        return TransactionTraceRecord(
            txn_id=payload["txn_id"],
            procedure=payload["procedure"],
            parameters=_detuple(payload["parameters"]),
            queries=tuple(QueryTraceRecord.from_json(q) for q in payload["queries"]),
            aborted=payload.get("aborted", False),
            at_ms=payload.get("at_ms"),
        )


@dataclass
class WorkloadTrace:
    """A sample workload trace: an ordered list of transaction records."""

    records: list[TransactionTraceRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    def append(self, record: TransactionTraceRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[TransactionTraceRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TransactionTraceRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    # ------------------------------------------------------------------
    @property
    def procedures(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.procedure, None)
        return tuple(seen)

    def for_procedure(self, procedure: str) -> "WorkloadTrace":
        """Sub-trace containing only the given procedure's transactions."""
        return WorkloadTrace([r for r in self.records if r.procedure == procedure])

    def split(self, *fractions: float) -> tuple["WorkloadTrace", ...]:
        """Split the trace into consecutive segments by fraction.

        The paper's feed-forward selection splits per-procedure workloads
        into training (30%), validation (30%) and testing (40%) worksets.
        Fractions must sum to at most 1; the final segment absorbs rounding.
        """
        if not fractions:
            raise WorkloadError("split requires at least one fraction")
        if any(f < 0 for f in fractions) or sum(fractions) > 1.0 + 1e-9:
            raise WorkloadError(f"invalid split fractions {fractions!r}")
        segments: list[WorkloadTrace] = []
        start = 0
        total = len(self.records)
        for i, fraction in enumerate(fractions):
            if i == len(fractions) - 1 and abs(sum(fractions) - 1.0) < 1e-9:
                stop = total
            else:
                stop = start + int(round(total * fraction))
            segments.append(WorkloadTrace(self.records[start:stop]))
            start = stop
        return tuple(segments)

    def halves(self) -> tuple["WorkloadTrace", "WorkloadTrace"]:
        """First/second half split used by the Table 3 accuracy experiment."""
        middle = len(self.records) // 2
        return WorkloadTrace(self.records[:middle]), WorkloadTrace(self.records[middle:])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON lines."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_json()) + "\n")

    @staticmethod
    def load(path: str | Path) -> "WorkloadTrace":
        """Read a JSON-lines trace written by :meth:`save`."""
        path = Path(path)
        records = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(TransactionTraceRecord.from_json(json.loads(line)))
                except (json.JSONDecodeError, KeyError) as exc:
                    raise WorkloadError(f"malformed trace line {line_number}: {exc}") from exc
        return WorkloadTrace(records)


# ----------------------------------------------------------------------
# JSON helpers: tuples round-trip as lists, so parameters are normalized.
# ----------------------------------------------------------------------
def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _detuple(value):
    if isinstance(value, list):
        return tuple(_detuple(v) for v in value)
    return value
