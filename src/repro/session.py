"""Session-oriented cluster API: open a cluster, stream work in, reconfigure live.

The paper's Houdini is an *online* component — it sits in front of a live
H-Store cluster, plans every incoming request, and keeps learning while
traffic flows.  This module is the public surface for that mode of
operation, replacing the one-shot ``pipeline.train(...)`` →
``ClusterSimulator.run()`` flow with a long-lived session over the
incrementally steppable event core of :mod:`repro.sim.simulator`:

.. code-block:: python

    from repro.session import Cluster, ClusterSpec

    spec = ClusterSpec(benchmark="tpcc", num_partitions=8, strategy="houdini")
    with Cluster.open(spec) as session:
        session.run_for(txns=2000)                  # drive the closed loop
        session.reconfigure(policy="shortest-predicted")
        session.run_for(sim_seconds=2.0)            # or by simulated time
        print(session.snapshot_metrics().summary_row())

Session lifecycle
-----------------
``Cluster.open(spec)`` validates the spec, trains the off-line artifacts
(or adopts pre-trained ones via ``artifacts=``), assembles the execution
strategy and the simulator, and returns a :class:`ClusterSession`.  The
session is then driven explicitly:

* :meth:`ClusterSession.run_for` — run the closed-loop clients for a number
  of transactions (``txns=``) or an amount of simulated time
  (``sim_seconds=``); returns a metrics snapshot.
* :meth:`ClusterSession.submit` — inject a single out-of-loop request; it is
  scheduled alongside the closed-loop traffic the next time the session is
  driven and does not consume closed-loop budget.
* :meth:`ClusterSession.step` — process exactly one simulator event.
* :meth:`ClusterSession.snapshot_metrics` — materialize a
  :class:`~repro.sim.metrics.SimulationResult` on demand; the warm-up window
  is finalized over the completions recorded *so far* and recomputed on the
  next snapshot (metrics are cumulative across ``run_for`` calls).
  ``snapshot_metrics(tenant=...)`` returns one tenant's breakdown.
* :meth:`ClusterSession.in_flight` — the unfinished transactions a paused
  snapshot excludes: txn id, procedure, tenant, attempt, partitions held,
  predicted remaining time.
* :meth:`ClusterSession.drain` — stop new closed-loop submissions, let every
  queued and in-flight transaction finish, and snapshot.
* :meth:`ClusterSession.close` — drain and seal the session (further driving
  raises :class:`~repro.errors.SessionError`); also the context-manager exit.

Workload sources
----------------
What traffic the session serves is declared by ``ClusterSpec.workload`` — a
:class:`~repro.workload.sources.WorkloadSource`.  The default (``None``) is
the paper's closed loop; :class:`~repro.workload.sources.OpenLoopSource`,
:class:`~repro.workload.sources.TraceReplaySource`,
:class:`~repro.workload.sources.PhasedSource` and
:class:`~repro.workload.sources.TenantSource` compile into deterministic
``EXTERNAL_SUBMIT`` arrival streams instead, injected by ``run_for`` as the
clock advances.  ``reconfigure(workload=...)`` swaps the live source, and
scripted reconfiguration schedules replay deterministically through
:meth:`ClusterSpec.diff` + :meth:`ClusterSession.apply_schedule`.

Batch equivalence: a fresh session driven with ``run_for(txns=N)`` produces
a :class:`SimulationResult` byte-identical to the one-shot
``ClusterSimulator.run()`` with ``total_transactions=N`` — same latencies,
counters, windows and per-procedure breakdowns (held by
``tests/session/test_session.py`` and ``tests/sim/test_event_runtime.py``).
``pipeline.simulate`` remains as a thin deprecation shim over this API.

Reconfigure semantics
---------------------
:meth:`ClusterSession.reconfigure` applies live changes between (or during)
runs, routing every change through the existing invalidation contracts so
no stale derived state survives:

* ``policy=`` swaps the scheduling policy;
  :meth:`~repro.scheduling.scheduler.TransactionScheduler.rekey` rebuilds
  the pending heap under the new policy's keys and drops the per-class key
  cache.  Transactions queued before the swap keep the prediction
  annotations they were submitted with.
* ``admission=`` installs/updates/removes admission limits.  In-flight
  transactions admitted under the old limits release their capacity through
  ``release_if_admitted`` — installing a controller mid-run never
  underflows, and the new limits apply from the next dispatch on.
* ``estimate_caching=`` / ``confidence_threshold=`` route through
  :meth:`~repro.houdini.houdini.Houdini.reconfigure`, which invalidates the
  §6.3 :class:`~repro.houdini.cache.EstimateCache` and the compiled
  whole-walk records (both memoize decisions that baked the old
  configuration in).  Requires a Houdini-backed strategy.
* ``generator=`` swaps the workload generator — the workload-shift scenario:
  the cluster, models and learned state survive, only the traffic changes.
* ``cost=`` assigns cost-model constants by name;
  :meth:`~repro.sim.cost_model.CostModel.__setattr__` clears the cost-
  schedule cache automatically and the scheduler's predicted-cost cache is
  dropped alongside it.

Reconfiguration changes the *live* session only; the spec the session was
opened from is never mutated, so it can be reused to open further sessions.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable, Mapping

from .benchmarks import BenchmarkInstance, available_benchmarks, get_benchmark
from .errors import SessionError, SimulationError, WorkloadError
from .houdini import GlobalModelProvider, Houdini, HoudiniConfig
from .houdini.providers import ModelProvider
from .mapping import ParameterMappingSet, build_parameter_mappings
from .markov import MarkovModel, build_models_from_trace
from .modelpart import ModelPartitioner, PartitionedModelProvider, PartitionerConfig
from .scheduling.admission import AdmissionLimits
from .scheduling.policies import SchedulingPolicy, available_policies
from .selftune import SelfTuneConfig, SelfTuneManager
from .sim import ClusterSimulator, CostModel, SimulationResult, SimulatorConfig
from .tenancy import TenancyConfig
from .strategies import (
    AssumeDistributedStrategy,
    AssumeSinglePartitionStrategy,
    HoudiniStrategy,
    OracleStrategy,
)
from .txn.strategy import ExecutionStrategy
from .types import ProcedureRequest
from .workload import TraceRecorder, WorkloadTrace
from .workload.generator import WorkloadGenerator
from .workload.sources import (
    Arrival,
    ClosedLoopSource,
    CompileContext,
    CompiledSource,
    WorkloadSource,
)

#: Execution strategies a spec may name (the paper's comparisons).
STRATEGY_NAMES = (
    "assume-distributed",
    "assume-single-partition",
    "oracle",
    "houdini",
    "houdini-global",
    "houdini-partitioned",
)

#: Model-provider choices for Houdini-backed strategies.
MODEL_PROVIDERS = ("global", "partitioned")

_UNSET = object()


# ----------------------------------------------------------------------
# Off-line artifacts
# ----------------------------------------------------------------------
@dataclass
class TrainedArtifacts:
    """Off-line artifacts derived from a sample workload trace."""

    trace: WorkloadTrace
    models: dict[str, MarkovModel]
    mappings: ParameterMappingSet
    benchmark: BenchmarkInstance
    extras: dict = field(default_factory=dict)

    def global_provider(self) -> GlobalModelProvider:
        return GlobalModelProvider(self.models)


# ----------------------------------------------------------------------
# The declarative cluster specification
# ----------------------------------------------------------------------
@dataclass
class ClusterSpec:
    """One declarative, validated configuration for a cluster session.

    Composes every choice the previous five config objects spread out —
    benchmark, simulator, Houdini, scheduling, admission and model provider
    — and round-trips through plain dicts: ``ClusterSpec.from_kwargs(
    **spec.to_dict())`` reproduces the spec (policies are normalized to
    their registry names, nested configs to field dicts).  Validation is
    strict: unknown fields and out-of-range values raise
    :class:`~repro.errors.SessionError` with an actionable message instead
    of being silently ignored.
    """

    # --- benchmark -----------------------------------------------------
    benchmark: str = "tpcc"
    num_partitions: int = 8
    partitions_per_node: int = 2
    seed: int = 0
    trace_transactions: int = 2000
    benchmark_config: Mapping | None = None
    # --- strategy / Houdini --------------------------------------------
    strategy: str = "houdini"
    learning: bool = True
    model_provider: str = "global"
    houdini: HoudiniConfig | None = None
    #: Self-tuning loop (:mod:`repro.selftune`): a
    #: :class:`~repro.selftune.SelfTuneConfig` (or its field dict) enables
    #: online drift detection, background retraining and atomic hot model
    #: swaps; ``None`` (default) leaves the loop off.  Requires a learning
    #: Houdini strategy with the global model provider.
    selftune: SelfTuneConfig | Mapping | None = None
    #: Multi-tenant policy (:mod:`repro.tenancy`): a
    #: :class:`~repro.tenancy.TenancyConfig` (or its dict form) layers
    #: per-tenant weighted fair queuing, admission quotas, latency SLOs and
    #: predicted-work shedding over the node scheduler; ``None`` (default)
    #: keeps the single shared scheduler.
    tenancy: TenancyConfig | Mapping | None = None
    # --- simulator -----------------------------------------------------
    clients_per_partition: int = 4
    warmup_fraction: float = 0.1
    client_think_time_ms: float = 0.0
    #: Latency accounting: ``"exact"`` (default) keeps every observation —
    #: byte-identical to specs that predate this field — while
    #: ``"streaming"`` replaces the unbounded per-latency lists with the
    #: O(1)-memory sketches of :mod:`repro.sim.sketch`, the million-user
    #: scale mode (counters stay exact; percentiles carry the sketch's
    #: documented error bound).
    metrics_mode: str = "exact"
    #: Where transaction logic executes: ``"inline"`` (default) runs it in
    #: the event loop; ``"sharded"`` shards the partition stores across
    #: ``num_workers`` OS worker processes and dispatches predictable
    #: single-partition transactions to them (:mod:`repro.sim.backend`).
    #: Simulated metrics are byte-identical either way under the same
    #: seed; only wall-clock throughput differs.
    execution_backend: str = "inline"
    #: Worker processes for the sharded backend (clamped to the partition
    #: count; ignored by the inline backend).
    num_workers: int = 2
    # --- workload ------------------------------------------------------
    #: How traffic enters the session: a :class:`WorkloadSource` (or its
    #: dict form).  ``None`` — the default — is the legacy closed loop
    #: driven by ``clients_per_partition``/``client_think_time_ms``, byte-
    #: identical to specs that predate this section.  An explicit
    #: :class:`ClosedLoopSource` overrides those two fields; any other
    #: source (open-loop arrivals, trace replay, phased mixes, tenant
    #: streams) runs the simulator in open-loop mode.
    workload: WorkloadSource | Mapping | None = None
    # --- scheduling / admission / cost --------------------------------
    policy: SchedulingPolicy | str | None = None
    admission: AdmissionLimits | None = None
    cost_model: CostModel | None = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if isinstance(self.houdini, Mapping):
            self.houdini = _coerce(HoudiniConfig, self.houdini, "houdini")
        if isinstance(self.selftune, Mapping):
            self.selftune = _coerce(SelfTuneConfig, self.selftune, "selftune")
        if isinstance(self.tenancy, Mapping):
            self.tenancy = _coerce_tenancy(self.tenancy)
        if isinstance(self.admission, Mapping):
            self.admission = _coerce(AdmissionLimits, self.admission, "admission")
        if isinstance(self.cost_model, Mapping):
            self.cost_model = _coerce(CostModel, self.cost_model, "cost_model")
        if isinstance(self.workload, Mapping):
            self.workload = _coerce_workload(self.workload)
        self.validate()

    def validate(self) -> None:
        """Check every field; raise :class:`SessionError` on the first problem."""
        benchmarks = available_benchmarks()
        if self.benchmark not in benchmarks:
            raise SessionError(
                f"unknown benchmark {self.benchmark!r}; available: "
                f"{', '.join(benchmarks)}"
            )
        if self.strategy not in STRATEGY_NAMES:
            raise SessionError(
                f"unknown strategy {self.strategy!r}; available: "
                f"{', '.join(STRATEGY_NAMES)}"
            )
        if self.model_provider not in MODEL_PROVIDERS:
            raise SessionError(
                f"unknown model_provider {self.model_provider!r}; available: "
                f"{', '.join(MODEL_PROVIDERS)}"
            )
        for name, minimum in (
            ("num_partitions", 1),
            ("partitions_per_node", 1),
            ("trace_transactions", 1),
            ("clients_per_partition", 1),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise SessionError(
                    f"{name} must be an integer >= {minimum}, got {value!r}"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SessionError(f"seed must be an integer, got {self.seed!r}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise SessionError(
                f"warmup_fraction must be within [0, 1), got {self.warmup_fraction!r}"
            )
        if self.client_think_time_ms < 0:
            raise SessionError(
                f"client_think_time_ms must be non-negative, "
                f"got {self.client_think_time_ms!r}"
            )
        if self.metrics_mode not in ("exact", "streaming"):
            raise SessionError(
                f"metrics_mode must be 'exact' or 'streaming', "
                f"got {self.metrics_mode!r}"
            )
        if self.execution_backend not in ("inline", "sharded"):
            raise SessionError(
                f"execution_backend must be 'inline' or 'sharded', "
                f"got {self.execution_backend!r}"
            )
        if (
            not isinstance(self.num_workers, int)
            or isinstance(self.num_workers, bool)
            or self.num_workers < 1
        ):
            raise SessionError(
                f"num_workers must be an integer >= 1, got {self.num_workers!r}"
            )
        if isinstance(self.policy, str) and self.policy not in available_policies():
            raise SessionError(
                f"unknown scheduling policy {self.policy!r}; available: "
                f"{', '.join(available_policies())} (or pass a SchedulingPolicy "
                f"instance, or None for FCFS)"
            )
        if self.houdini is not None and not isinstance(self.houdini, HoudiniConfig):
            raise SessionError(
                f"houdini must be a HoudiniConfig or a field dict, "
                f"got {type(self.houdini).__name__}"
            )
        if self.selftune is not None:
            if not isinstance(self.selftune, SelfTuneConfig):
                raise SessionError(
                    f"selftune must be a SelfTuneConfig or a field dict, "
                    f"got {type(self.selftune).__name__}"
                )
            if not self.strategy.startswith("houdini"):
                raise SessionError(
                    f"selftune requires a Houdini strategy, got {self.strategy!r}"
                )
            if self.model_provider != "global" or self.strategy == "houdini-partitioned":
                raise SessionError(
                    "selftune currently supports the global model provider only"
                )
            if not self.learning:
                raise SessionError(
                    "selftune requires learning=True (it consumes the "
                    "run-time transition stream)"
                )
        if self.tenancy is not None and not isinstance(self.tenancy, TenancyConfig):
            raise SessionError(
                f"tenancy must be a TenancyConfig or its dict form, "
                f"got {type(self.tenancy).__name__}"
            )
        if self.admission is not None and not isinstance(self.admission, AdmissionLimits):
            raise SessionError(
                f"admission must be AdmissionLimits or a field dict, "
                f"got {type(self.admission).__name__}"
            )
        if self.cost_model is not None and not isinstance(self.cost_model, CostModel):
            raise SessionError(
                f"cost_model must be a CostModel or a field dict, "
                f"got {type(self.cost_model).__name__}"
            )
        if self.workload is not None:
            if not isinstance(self.workload, WorkloadSource):
                raise SessionError(
                    f"workload must be a WorkloadSource or its dict form, "
                    f"got {type(self.workload).__name__}"
                )
            try:
                self.workload.validate()
            except WorkloadError as error:
                raise SessionError(f"invalid workload source: {error}") from error

    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ClusterSpec":
        """Build a spec from keyword arguments, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, known, n=1)
                hints.append(f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
            raise SessionError(
                f"unknown ClusterSpec field(s): {', '.join(hints)}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        return cls(**kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls.from_kwargs(**dict(data))

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-friendly) that :meth:`from_kwargs` accepts.

        Policies are normalized to their registry name, nested configs to
        their field dicts; ``None`` fields stay ``None``.
        """
        policy = self.policy
        if isinstance(policy, SchedulingPolicy):
            policy = policy.name
        return {
            "benchmark": self.benchmark,
            "num_partitions": self.num_partitions,
            "partitions_per_node": self.partitions_per_node,
            "seed": self.seed,
            "trace_transactions": self.trace_transactions,
            "benchmark_config": dict(self.benchmark_config)
            if self.benchmark_config is not None else None,
            "strategy": self.strategy,
            "learning": self.learning,
            "model_provider": self.model_provider,
            "houdini": _init_field_dict(self.houdini),
            "selftune": _init_field_dict(self.selftune),
            # Nested per-tenant policies need the recursive dict form, not
            # the flat init-field dict.
            "tenancy": self.tenancy.to_dict() if self.tenancy is not None else None,
            "clients_per_partition": self.clients_per_partition,
            "warmup_fraction": self.warmup_fraction,
            "client_think_time_ms": self.client_think_time_ms,
            "metrics_mode": self.metrics_mode,
            "execution_backend": self.execution_backend,
            "num_workers": self.num_workers,
            "workload": self.workload.to_dict() if self.workload is not None else None,
            "policy": policy,
            "admission": _init_field_dict(self.admission),
            "cost_model": _init_field_dict(self.cost_model),
        }

    def diff(self, other: "ClusterSpec") -> dict:
        """Fields where ``other`` differs from this spec, in ``to_dict`` form.

        The returned ``{field: other's value}`` mapping is JSON-friendly, so
        reconfiguration scripts can be saved next to their ``to_dict``
        baselines and replayed later with
        :meth:`ClusterSession.apply_schedule`.
        """
        mine = self.to_dict()
        theirs = other.to_dict()
        return {key: theirs[key] for key in theirs if mine[key] != theirs[key]}

    def simulator_config(self, total_transactions: int = 0) -> SimulatorConfig:
        """The :class:`SimulatorConfig` this spec describes."""
        clients = self.clients_per_partition
        think = self.client_think_time_ms
        open_loop = False
        if isinstance(self.workload, ClosedLoopSource):
            clients = self.workload.clients_per_partition
            think = self.workload.think_time_ms
        elif self.workload is not None:
            open_loop = True
        return SimulatorConfig(
            clients_per_partition=clients,
            total_transactions=total_transactions,
            warmup_fraction=self.warmup_fraction,
            client_think_time_ms=think,
            policy=self.policy,
            admission_limits=self.admission,
            open_loop=open_loop,
            metrics_mode=self.metrics_mode,
            execution_backend=self.execution_backend,
            num_workers=self.num_workers,
            # Copied so live reconfigure never mutates the (reusable) spec.
            tenancy=self.tenancy.copy() if self.tenancy is not None else None,
        )


def _init_field_dict(config) -> dict | None:
    """The init-field dict of a dataclass instance (``None`` passes through)."""
    if config is None:
        return None
    out = {}
    for f in fields(config):
        if not f.init:
            continue
        value = getattr(config, f.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        out[f.name] = value
    return out


def _coerce_workload(data: Mapping | WorkloadSource | None) -> WorkloadSource | None:
    """Coerce a workload declaration (dict form allowed) to a source."""
    if data is None or isinstance(data, WorkloadSource):
        return data
    try:
        return WorkloadSource.from_dict(data)
    except WorkloadError as error:
        raise SessionError(f"invalid workload source: {error}") from error


def _coerce_tenancy(data: Mapping | TenancyConfig) -> TenancyConfig:
    """Coerce a tenancy declaration (dict form allowed), strict validation."""
    if isinstance(data, TenancyConfig):
        return data
    try:
        return TenancyConfig.from_dict(data)
    except (TypeError, SimulationError) as error:
        raise SessionError(f"invalid tenancy configuration: {error}") from error


def _coerce(cls, data: Mapping, label: str):
    """Build ``cls(**data)`` with an actionable error for unknown keys."""
    known = {f.name for f in fields(cls) if f.init}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SessionError(
            f"unknown {label} field(s): {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(sorted(known))}"
        )
    kwargs = dict(data)
    if cls is HoudiniConfig and "disabled_procedures" in kwargs:
        kwargs["disabled_procedures"] = frozenset(kwargs["disabled_procedures"])
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise SessionError(f"invalid {label} configuration: {error}") from error


# ----------------------------------------------------------------------
# Training and assembly (the canonical implementations; repro.pipeline
# keeps its historical signatures as thin shims over these)
# ----------------------------------------------------------------------
def build_benchmark(
    name: str,
    num_partitions: int,
    *,
    seed: int = 0,
    partitions_per_node: int = 2,
    config_overrides: Mapping | None = None,
) -> BenchmarkInstance:
    """Build and populate one benchmark at the given cluster size."""
    bundle = get_benchmark(name)
    return bundle.build(
        num_partitions,
        partitions_per_node=partitions_per_node,
        seed=seed,
        config_overrides=config_overrides,
    )


def record_trace(instance: BenchmarkInstance, transactions: int) -> WorkloadTrace:
    """Record a sample workload trace by executing real transactions."""
    recorder = TraceRecorder(
        instance.catalog,
        instance.database,
        base_partition_chooser=instance.generator.home_partition,
    )
    return recorder.record(instance.generator.generate(transactions))


def train(spec: ClusterSpec) -> TrainedArtifacts:
    """Derive the off-line artifacts (Fig. 6) for a cluster specification.

    Builds and populates the benchmark, records a sample workload trace by
    executing real transactions, and derives the Markov models and parameter
    mappings.  The returned benchmark instance's database reflects the trace
    execution (the paper also trains on a live sample of the running system).
    """
    instance = build_benchmark(
        spec.benchmark,
        spec.num_partitions,
        seed=spec.seed,
        partitions_per_node=spec.partitions_per_node,
        config_overrides=spec.benchmark_config,
    )
    trace = record_trace(instance, spec.trace_transactions)
    models = build_models_from_trace(
        instance.catalog,
        trace,
        base_partition_chooser=lambda record: instance.generator.home_partition(
            ProcedureRequest(record.procedure, record.parameters)
        ),
    )
    mappings = build_parameter_mappings(instance.catalog, trace)
    return TrainedArtifacts(
        trace=trace, models=models, mappings=mappings, benchmark=instance
    )


def build_houdini(
    artifacts: TrainedArtifacts,
    *,
    provider: ModelProvider | None = None,
    config: HoudiniConfig | None = None,
    learning: bool = True,
) -> Houdini:
    """Assemble a Houdini instance from trained artifacts."""
    instance = artifacts.benchmark
    houdini_config = config or HoudiniConfig(
        disabled_procedures=instance.bundle.houdini_disabled_procedures
    )
    if houdini_config.disabled_procedures != instance.bundle.houdini_disabled_procedures:
        houdini_config.disabled_procedures = (
            houdini_config.disabled_procedures | instance.bundle.houdini_disabled_procedures
        )
    return Houdini(
        instance.catalog,
        provider or artifacts.global_provider(),
        artifacts.mappings,
        houdini_config,
        learning=learning,
    )


def build_partitioned_provider(
    artifacts: TrainedArtifacts,
    *,
    feature_selection: str = "heuristic",
    houdini_config: HoudiniConfig | None = None,
    partitioner_config: PartitionerConfig | None = None,
) -> PartitionedModelProvider:
    """Build the Section-5 partitioned models from the recorded trace.

    ``feature_selection='feedforward'`` runs the full paper pipeline (greedy
    feature search scored by estimate accuracy); the default ``'heuristic'``
    uses the Fig. 9-style fixed feature set, which is what the large
    throughput sweeps use to keep their running time reasonable.
    """
    instance = artifacts.benchmark
    config = partitioner_config or PartitionerConfig(feature_selection=feature_selection)
    if partitioner_config is None:
        config.feature_selection = feature_selection
    partitioner = ModelPartitioner(
        instance.catalog,
        artifacts.mappings,
        houdini_config=houdini_config or HoudiniConfig(
            disabled_procedures=instance.bundle.houdini_disabled_procedures
        ),
        config=config,
        base_partition_chooser=lambda record: instance.generator.home_partition(
            ProcedureRequest(record.procedure, record.parameters)
        ),
    )
    return partitioner.build_provider(artifacts.trace, dict(artifacts.models))


def build_strategy(
    name: str,
    artifacts: TrainedArtifacts,
    *,
    houdini: Houdini | None = None,
    seed: int = 0,
    learning: bool = True,
    houdini_config: HoudiniConfig | None = None,
    model_provider: str = "global",
) -> ExecutionStrategy:
    """Build one of the paper's execution strategies by name."""
    instance = artifacts.benchmark
    if name == "assume-distributed":
        return AssumeDistributedStrategy(instance.catalog, seed=seed)
    if name == "assume-single-partition":
        return AssumeSinglePartitionStrategy(instance.catalog, seed=seed)
    if name == "oracle":
        return OracleStrategy(instance.catalog, instance.database)
    partitioned = name == "houdini-partitioned" or model_provider == "partitioned"
    if name in ("houdini", "houdini-global", "houdini-partitioned"):
        if houdini is None:
            provider = None
            if partitioned:
                provider = artifacts.extras.get("partitioned_provider")
                if provider is None:
                    provider = build_partitioned_provider(artifacts)
                    artifacts.extras["partitioned_provider"] = provider
            houdini = build_houdini(
                artifacts, provider=provider, config=houdini_config, learning=learning
            )
        return HoudiniStrategy(houdini, name=name)
    raise SessionError(
        f"unknown strategy {name!r}; available: {', '.join(STRATEGY_NAMES)}"
    )


# ----------------------------------------------------------------------
# The session façade
# ----------------------------------------------------------------------
class Cluster:
    """Entry point: ``Cluster.open(spec)`` yields a live :class:`ClusterSession`."""

    @staticmethod
    def open(
        spec: ClusterSpec | None = None,
        *,
        artifacts: TrainedArtifacts | None = None,
        strategy: ExecutionStrategy | None = None,
        houdini: Houdini | None = None,
        **kwargs: Any,
    ) -> "ClusterSession":
        """Open a long-lived cluster session.

        ``spec`` may be omitted and given as keyword arguments instead
        (``Cluster.open(benchmark="tatp", strategy="oracle")``).  Passing
        pre-trained ``artifacts`` skips training — the idiom for comparing
        strategies over one training pass, or for opening several sessions
        against the same artifacts.  A prebuilt ``strategy`` (or ``houdini``)
        instance overrides the spec's strategy assembly; a strategy *name*
        is shorthand for the spec field of the same name.
        """
        if isinstance(strategy, str):
            if spec is None:
                kwargs["strategy"] = strategy
            else:
                spec = replace(spec, strategy=strategy)
            strategy = None
        if spec is None:
            spec = ClusterSpec.from_kwargs(**kwargs)
        elif kwargs:
            raise SessionError(
                "pass either a ClusterSpec or keyword fields, not both "
                f"(got extra: {', '.join(sorted(kwargs))})"
            )
        if artifacts is None:
            artifacts = train(spec)
        if strategy is None:
            # The spec's HoudiniConfig is copied so live reconfiguration of
            # this session never leaks into other sessions opened from the
            # same spec object.
            config = replace(spec.houdini) if spec.houdini is not None else None
            strategy = build_strategy(
                spec.strategy,
                artifacts,
                houdini=houdini,
                seed=spec.seed,
                learning=spec.learning,
                houdini_config=config,
                model_provider=spec.model_provider,
            )
        # Copied for the same reason as the HoudiniConfig above: live cost
        # reconfiguration mutates the model, and the spec must stay reusable.
        cost_model = replace(spec.cost_model) if spec.cost_model is not None else CostModel()
        simulator = ClusterSimulator(
            artifacts.benchmark.catalog,
            artifacts.benchmark.database,
            artifacts.benchmark.generator,
            strategy,
            cost_model=cost_model,
            config=spec.simulator_config(),
            benchmark_name=artifacts.benchmark.name,
        )
        return ClusterSession(spec, artifacts, strategy, simulator)


class ClusterSession:
    """A live cluster: stream transactions in, reconfigure, snapshot, drain.

    See the module docstring for the lifecycle and reconfigure semantics.
    Sessions are single-threaded, like the node scheduler they model.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        artifacts: TrainedArtifacts,
        strategy: ExecutionStrategy,
        simulator: ClusterSimulator,
    ) -> None:
        self.spec = spec
        self.artifacts = artifacts
        self.strategy = strategy
        self.simulator = simulator
        self._closed = False
        #: Compile context shared by every workload source this session runs.
        self._workload_ctx = CompileContext(artifacts.benchmark, spec.seed)
        #: The live workload source (the spec's at open; swappable via
        #: ``reconfigure(workload=...)``).
        self.workload: WorkloadSource | None = spec.workload
        #: Compiled arrival stream, or ``None`` when the built-in closed
        #: loop drives submission.
        self._arrivals: CompiledSource | None = None
        #: Simulated time at which the current arrival stream's clock
        #: started (non-zero after a live workload swap).
        self._arrival_offset = 0.0
        if spec.workload is not None and not isinstance(spec.workload, ClosedLoopSource):
            self._arrivals = self._compile_source(spec.workload)
        #: The self-tuning manager (``None`` unless enabled by the spec or a
        #: later ``reconfigure(selftune=...)``).
        self.selftune: SelfTuneManager | None = None
        if spec.selftune is not None:
            # Copied like the HoudiniConfig above: the spec stays reusable.
            self._install_selftune(replace(spec.selftune))
        simulator.begin()

    def _install_selftune(self, config: SelfTuneConfig) -> None:
        houdini = self.houdini
        if houdini is None:
            raise SessionError(
                f"selftune requires a Houdini strategy, got {self.strategy.name!r}"
            )
        if not isinstance(houdini.provider, GlobalModelProvider):
            raise SessionError(
                "selftune currently supports the global model provider only"
            )
        if not houdini.learning:
            raise SessionError(
                "selftune requires learning=True (it consumes the run-time "
                "transition stream)"
            )
        simulator = self.simulator
        manager = SelfTuneManager(
            houdini, config, clock=lambda: simulator.txn_clock_ms
        )
        houdini.set_selftune(manager)
        simulator.set_selftune(manager)
        self.selftune = manager

    def _compile_source(self, source: WorkloadSource) -> CompiledSource:
        """Compile a source, surfacing failures (e.g. an unreadable trace
        file) as session errors."""
        try:
            return source.compile(self._workload_ctx)
        except WorkloadError as error:
            raise SessionError(f"invalid workload source: {error}") from error

    # ------------------------------------------------------------------
    @property
    def houdini(self) -> Houdini | None:
        """The strategy's Houdini instance, if it has one."""
        return getattr(self.strategy, "houdini", None)

    @property
    def now_ms(self) -> float:
        """Current simulated time."""
        return self.simulator.now_ms

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    # ------------------------------------------------------------------
    def submit(
        self,
        request: ProcedureRequest,
        *,
        at_ms: float | None = None,
        tenant: str | None = None,
    ) -> None:
        """Inject one out-of-loop request (processed when the session is driven).

        The request enters the node scheduler at ``max(at_ms, now)`` without
        consuming closed-loop budget; its metrics land in the same
        accumulators as closed-loop traffic.  ``tenant=`` labels it for the
        per-tenant breakdowns and, when tenancy is enabled, subjects it to
        that tenant's weight, quota, SLO tracking and shedding.
        """
        self._check_open()
        self.simulator.submit_request(request, at_ms=at_ms, tenant=tenant)

    def step(self) -> bool:
        """Process exactly one simulator event; ``False`` if none remain."""
        self._check_open()
        return self.simulator.step()

    def run_for(
        self, txns: int | None = None, *, sim_seconds: float | None = None
    ) -> SimulationResult:
        """Drive the session's workload and return a metrics snapshot.

        Exactly one of ``txns`` or ``sim_seconds`` must be given.  Under the
        (default) closed loop, ``txns`` grants that many further submissions
        and runs until the cluster quiesces, while ``sim_seconds`` runs the
        saturated loop for that much simulated time.  Under an arrival
        source (open loop, trace replay, tenant streams), ``txns`` injects
        the next that-many arrivals and drains them, while ``sim_seconds``
        injects every arrival falling inside the window and pauses the
        clock at its end — in-flight work is visible via :meth:`in_flight`.
        """
        self._check_open()
        if (txns is None) == (sim_seconds is None):
            raise SessionError("run_for needs exactly one of txns= or sim_seconds=")
        simulator = self.simulator
        if txns is not None:
            if txns < 0:
                raise SessionError(f"txns must be non-negative, got {txns!r}")
            if self._arrivals is None:
                simulator.extend_budget(txns)
            else:
                self._inject(self._arrivals.take(txns))
            simulator.run_until()
        else:
            if sim_seconds < 0:
                raise SessionError(
                    f"sim_seconds must be non-negative, got {sim_seconds!r}"
                )
            self._run_to(simulator.now_ms + 1000.0 * sim_seconds)
        return simulator.snapshot()

    def _run_to(self, deadline_ms: float) -> None:
        """Run the live workload up to an absolute simulated deadline."""
        simulator = self.simulator
        if self._arrivals is None:
            simulator.extend_budget(float("inf"))
            simulator.run_until(deadline_ms=deadline_ms)
            simulator.freeze_budget()
        else:
            self._inject(self._arrivals.take_until(deadline_ms - self._arrival_offset))
            simulator.run_until(deadline_ms=deadline_ms)
        simulator.advance_clock(deadline_ms)

    def _inject(self, batch: list[Arrival]) -> None:
        """Feed compiled arrivals into the event core as external submits."""
        offset = self._arrival_offset
        submit = self.simulator.submit_request
        for arrival in batch:
            submit(
                arrival.request,
                at_ms=offset + arrival.at_ms,
                tenant=arrival.tenant,
            )

    # ------------------------------------------------------------------
    def reconfigure(
        self,
        *,
        policy: Any = _UNSET,
        admission: Any = _UNSET,
        estimate_caching: bool | None = None,
        confidence_threshold: float | None = None,
        generator: WorkloadGenerator | None = None,
        cost: Mapping[str, float] | None = None,
        workload: WorkloadSource | Mapping | None = None,
        maintenance_window: Any = _UNSET,
        selftune: Any = _UNSET,
        tenancy: Any = _UNSET,
    ) -> "ClusterSession":
        """Apply live configuration changes (see the module docstring).

        ``workload=`` swaps the traffic source mid-session: a
        :class:`ClosedLoopSource` (re)activates the closed-loop clients,
        any other source freezes them and streams its arrivals from the
        current simulated time on — the cluster, models and learned state
        all survive, only the traffic changes.

        ``maintenance_window=`` resizes the §4.5 sliding window live: every
        tracked maintenance rebuilds its counters from the recent tail
        (``None`` disables the window).  ``selftune=`` enables the
        self-tuning loop mid-session (a :class:`SelfTuneConfig` or field
        dict) or, with ``None``, detaches it.

        ``tenancy=`` installs, swaps, or (with ``None``) removes the
        multi-tenant policy live: the node queue is transplanted between the
        shared and the per-tenant scheduler in dispatch order, quota slots
        held by in-flight transactions release exactly what they charged,
        and SLO counters reset only for tenants whose objective changed.

        Returns ``self`` so calls chain:
        ``session.reconfigure(policy="shortest-predicted").run_for(txns=500)``.
        """
        self._check_open()
        simulator = self.simulator
        if workload is not None:
            source = _coerce_workload(workload)
            try:
                source.validate()
            except WorkloadError as error:
                raise SessionError(f"invalid workload source: {error}") from error
            if isinstance(source, ClosedLoopSource):
                # Arrival streams stop; the closed-loop clients take over
                # (started now if the session opened open-loop).  The client
                # population is fixed at open time, so a different count
                # cannot be honored and must not be silently ignored.
                if source.clients_per_partition != simulator.config.clients_per_partition:
                    raise SessionError(
                        f"cannot change clients_per_partition on a live session "
                        f"(open with {simulator.config.clients_per_partition}, "
                        f"asked for {source.clients_per_partition}); open a new "
                        f"session for a different client population"
                    )
                self._arrivals = None
                simulator.config.client_think_time_ms = source.think_time_ms
                simulator.activate_clients()
            else:
                # The closed loop stops submitting (in-flight work still
                # finishes); the new stream's clock starts at the current
                # simulated time.
                compiled = self._compile_source(source)
                simulator.freeze_budget()
                self._arrivals = compiled
                self._arrival_offset = simulator.now_ms
            self.workload = source
        if policy is not _UNSET:
            if isinstance(policy, str) and policy not in available_policies():
                raise SessionError(
                    f"unknown scheduling policy {policy!r}; available: "
                    f"{', '.join(available_policies())}"
                )
            simulator.set_policy(policy)
        if admission is not _UNSET:
            if isinstance(admission, Mapping):
                admission = _coerce(AdmissionLimits, admission, "admission")
            if admission is not None and not isinstance(admission, AdmissionLimits):
                raise SessionError(
                    f"admission must be AdmissionLimits, a field dict or None, "
                    f"got {type(admission).__name__}"
                )
            simulator.set_admission(admission)
        if generator is not None:
            simulator.set_generator(generator)
        if cost is not None:
            model = simulator.cost_model
            for name, value in cost.items():
                if not name.endswith("_ms") or not hasattr(model, name):
                    raise SessionError(
                        f"unknown cost-model constant {name!r}; constants are "
                        f"the *_ms fields of repro.sim.CostModel"
                    )
                # CostModel.__setattr__ clears the cost-schedule cache.
                setattr(model, name, value)
            # Predicted per-class costs baked the old constants in.
            simulator.scheduler.clear_cost_cache()
        if estimate_caching is not None or confidence_threshold is not None:
            houdini = self.houdini
            if houdini is None:
                raise SessionError(
                    "estimate_caching / confidence_threshold reconfiguration "
                    f"requires a Houdini-backed strategy (this session runs "
                    f"{self.strategy.name!r})"
                )
            try:
                houdini.reconfigure(
                    estimate_caching=estimate_caching,
                    confidence_threshold=confidence_threshold,
                )
            except ValueError as error:
                raise SessionError(str(error)) from error
        if maintenance_window is not _UNSET:
            houdini = self.houdini
            if houdini is None:
                raise SessionError(
                    "maintenance_window reconfiguration requires a "
                    f"Houdini-backed strategy (this session runs "
                    f"{self.strategy.name!r})"
                )
            try:
                houdini.reconfigure(maintenance_window=maintenance_window)
            except ValueError as error:
                raise SessionError(str(error)) from error
        if selftune is not _UNSET:
            if selftune is None:
                houdini = self.houdini
                if houdini is not None:
                    houdini.set_selftune(None)
                simulator.set_selftune(None)
                self.selftune = None
            else:
                if isinstance(selftune, Mapping):
                    selftune = _coerce(SelfTuneConfig, selftune, "selftune")
                elif isinstance(selftune, SelfTuneConfig):
                    selftune = replace(selftune)
                else:
                    raise SessionError(
                        f"selftune must be a SelfTuneConfig, a field dict or "
                        f"None, got {type(selftune).__name__}"
                    )
                self._install_selftune(selftune)
        if tenancy is not _UNSET:
            if isinstance(tenancy, Mapping):
                tenancy = _coerce_tenancy(tenancy)
            elif isinstance(tenancy, TenancyConfig):
                # Copied so the caller's config object stays reusable.
                tenancy = tenancy.copy()
            elif tenancy is not None:
                raise SessionError(
                    f"tenancy must be a TenancyConfig, its dict form or None, "
                    f"got {type(tenancy).__name__}"
                )
            simulator.set_tenancy(tenancy)
        return self

    # ------------------------------------------------------------------
    def snapshot_metrics(self, *, tenant: str | None = None):
        """Materialize cumulative metrics on demand (repeatable).

        With ``tenant=``, return that tenant's
        :class:`~repro.sim.metrics.TenantBreakdown` instead of the full
        :class:`~repro.sim.metrics.SimulationResult` (``TenantSource``
        sessions; raises :class:`SessionError` for unknown tenants).
        """
        self._check_open()
        result = self.simulator.snapshot()
        if tenant is None:
            return result
        breakdown = result.tenants.get(tenant)
        if breakdown is None:
            known = ", ".join(sorted(result.tenants)) or "none"
            raise SessionError(f"unknown tenant {tenant!r}; known tenants: {known}")
        return breakdown

    def in_flight(self):
        """Unfinished transactions at the paused clock (executing + queued).

        Each entry is an :class:`~repro.sim.simulator.InFlightTransaction`:
        transaction id, procedure, tenant, attempt count, partitions held
        and predicted remaining milliseconds.  Metric snapshots exclude this
        work by design; this is the view into the gap — most useful after a
        ``run_for(sim_seconds=...)`` pause, where completions beyond the
        deadline are still in flight.
        """
        self._check_open()
        return self.simulator.in_flight()

    def drain(self) -> SimulationResult:
        """Finish all queued and in-flight work, stop new submissions, snapshot."""
        self._check_open()
        self.simulator.freeze_budget()
        self.simulator.run_until()
        return self.simulator.snapshot()

    # ------------------------------------------------------------------
    def apply_schedule(
        self, schedule: Iterable[tuple[float, Mapping[str, Any]]]
    ) -> "ClusterSession":
        """Replay a scripted reconfigure schedule against simulated time.

        ``schedule`` is a sequence of ``(at_ms, diff)`` pairs — ``diff`` as
        produced by :meth:`ClusterSpec.diff` (to-dict forms).  The session
        runs its live workload up to each ``at_ms`` in order and applies the
        diff there, so the same seed and schedule always reproduce the same
        result, byte for byte.  Only live-reconfigurable fields may appear
        in a diff: ``policy``, ``admission``, ``cost_model``, ``workload``,
        ``selftune``, ``tenancy`` and the Houdini runtime knobs
        (``enable_estimate_caching``, ``confidence_threshold``); anything
        else raises :class:`SessionError`.
        """
        self._check_open()
        entries = sorted(schedule, key=lambda entry: entry[0])
        for at_ms, diff in entries:
            if at_ms < 0:
                raise SessionError(f"schedule times must be non-negative, got {at_ms!r}")
            if at_ms > self.simulator.now_ms:
                self._run_to(at_ms)
            self._apply_diff(diff)
        return self

    def _apply_diff(self, diff: Mapping[str, Any]) -> None:
        """Apply one :meth:`ClusterSpec.diff` entry through ``reconfigure``."""
        changes: dict[str, Any] = {}
        for key, value in diff.items():
            if key == "policy":
                changes["policy"] = value
            elif key == "admission":
                changes["admission"] = value
            elif key == "workload":
                changes["workload"] = value if value is not None else ClosedLoopSource(
                    self.spec.clients_per_partition, self.spec.client_think_time_ms
                )
            elif key == "cost_model":
                if value is None:
                    raise SessionError(
                        "cost_model cannot be cleared live; diff against a spec "
                        "that keeps a cost model"
                    )
                live = self.simulator.cost_model
                constants = {
                    name: new for name, new in value.items()
                    if name.endswith("_ms") and getattr(live, name, new) != new
                }
                if constants:
                    changes["cost"] = constants
            elif key == "houdini":
                houdini = self.houdini
                if houdini is None:
                    raise SessionError(
                        "houdini reconfiguration requires a Houdini-backed "
                        f"strategy (this session runs {self.strategy.name!r})"
                    )
                target = value or _init_field_dict(HoudiniConfig())
                live_config = houdini.config
                for name, new in target.items():
                    current = getattr(live_config, name)
                    if isinstance(current, frozenset):
                        current = sorted(current)
                    if current == new:
                        continue
                    if name == "enable_estimate_caching":
                        changes["estimate_caching"] = new
                    elif name == "confidence_threshold":
                        changes["confidence_threshold"] = new
                    elif name == "maintenance_window":
                        changes["maintenance_window"] = new
                    else:
                        raise SessionError(
                            f"houdini field {name!r} is not live-reconfigurable; "
                            "only enable_estimate_caching, confidence_threshold "
                            "and maintenance_window can change in a schedule"
                        )
            elif key == "selftune":
                changes["selftune"] = value
            elif key == "tenancy":
                changes["tenancy"] = value
            else:
                raise SessionError(
                    f"spec field {key!r} is not live-reconfigurable; schedules "
                    "may change policy, admission, cost_model, workload, "
                    "selftune, tenancy and the Houdini runtime knobs"
                )
        if changes:
            self.reconfigure(**changes)

    def close(self) -> SimulationResult:
        """Drain the session and seal it; returns the final metrics.

        Also stops the sharded backend's worker processes, if any.
        """
        if self._closed:
            raise SessionError("session is already closed")
        try:
            result = self.drain()
        finally:
            self._closed = True
            self.simulator.close()
        return result

    # ------------------------------------------------------------------
    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        if exc_type is not None:
            # The body failed: seal the session without draining.  Running
            # the event loop on the very state that just raised could both
            # mask the original exception and silently execute queued work.
            # Worker processes are still released.
            self._closed = True
            self.simulator.close()
            return
        self.close()

    def describe(self) -> str:
        return (
            f"ClusterSession({self.spec.benchmark}/{self.strategy.name} "
            f"P={self.spec.num_partitions} t={self.now_ms:.1f}ms "
            f"submitted={self.simulator.submitted}"
            f"{', closed' if self._closed else ''})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"
