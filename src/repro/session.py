"""Session-oriented cluster API: open a cluster, stream work in, reconfigure live.

The paper's Houdini is an *online* component — it sits in front of a live
H-Store cluster, plans every incoming request, and keeps learning while
traffic flows.  This module is the public surface for that mode of
operation, replacing the one-shot ``pipeline.train(...)`` →
``ClusterSimulator.run()`` flow with a long-lived session over the
incrementally steppable event core of :mod:`repro.sim.simulator`:

.. code-block:: python

    from repro.session import Cluster, ClusterSpec

    spec = ClusterSpec(benchmark="tpcc", num_partitions=8, strategy="houdini")
    with Cluster.open(spec) as session:
        session.run_for(txns=2000)                  # drive the closed loop
        session.reconfigure(policy="shortest-predicted")
        session.run_for(sim_seconds=2.0)            # or by simulated time
        print(session.snapshot_metrics().summary_row())

Session lifecycle
-----------------
``Cluster.open(spec)`` validates the spec, trains the off-line artifacts
(or adopts pre-trained ones via ``artifacts=``), assembles the execution
strategy and the simulator, and returns a :class:`ClusterSession`.  The
session is then driven explicitly:

* :meth:`ClusterSession.run_for` — run the closed-loop clients for a number
  of transactions (``txns=``) or an amount of simulated time
  (``sim_seconds=``); returns a metrics snapshot.
* :meth:`ClusterSession.submit` — inject a single out-of-loop request; it is
  scheduled alongside the closed-loop traffic the next time the session is
  driven and does not consume closed-loop budget.
* :meth:`ClusterSession.step` — process exactly one simulator event.
* :meth:`ClusterSession.snapshot_metrics` — materialize a
  :class:`~repro.sim.metrics.SimulationResult` on demand; the warm-up window
  is finalized over the completions recorded *so far* and recomputed on the
  next snapshot (metrics are cumulative across ``run_for`` calls).
* :meth:`ClusterSession.drain` — stop new closed-loop submissions, let every
  queued and in-flight transaction finish, and snapshot.
* :meth:`ClusterSession.close` — drain and seal the session (further driving
  raises :class:`~repro.errors.SessionError`); also the context-manager exit.

Batch equivalence: a fresh session driven with ``run_for(txns=N)`` produces
a :class:`SimulationResult` byte-identical to the one-shot
``ClusterSimulator.run()`` with ``total_transactions=N`` — same latencies,
counters, windows and per-procedure breakdowns (held by
``tests/session/test_session.py`` and ``tests/sim/test_event_runtime.py``).
``pipeline.simulate`` remains as a thin deprecation shim over this API.

Reconfigure semantics
---------------------
:meth:`ClusterSession.reconfigure` applies live changes between (or during)
runs, routing every change through the existing invalidation contracts so
no stale derived state survives:

* ``policy=`` swaps the scheduling policy;
  :meth:`~repro.scheduling.scheduler.TransactionScheduler.rekey` rebuilds
  the pending heap under the new policy's keys and drops the per-class key
  cache.  Transactions queued before the swap keep the prediction
  annotations they were submitted with.
* ``admission=`` installs/updates/removes admission limits.  In-flight
  transactions admitted under the old limits release their capacity through
  ``release_if_admitted`` — installing a controller mid-run never
  underflows, and the new limits apply from the next dispatch on.
* ``estimate_caching=`` / ``confidence_threshold=`` route through
  :meth:`~repro.houdini.houdini.Houdini.reconfigure`, which invalidates the
  §6.3 :class:`~repro.houdini.cache.EstimateCache` and the compiled
  whole-walk records (both memoize decisions that baked the old
  configuration in).  Requires a Houdini-backed strategy.
* ``generator=`` swaps the workload generator — the workload-shift scenario:
  the cluster, models and learned state survive, only the traffic changes.
* ``cost=`` assigns cost-model constants by name;
  :meth:`~repro.sim.cost_model.CostModel.__setattr__` clears the cost-
  schedule cache automatically and the scheduler's predicted-cost cache is
  dropped alongside it.

Reconfiguration changes the *live* session only; the spec the session was
opened from is never mutated, so it can be reused to open further sessions.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from .benchmarks import BenchmarkInstance, available_benchmarks, get_benchmark
from .errors import SessionError
from .houdini import GlobalModelProvider, Houdini, HoudiniConfig
from .houdini.providers import ModelProvider
from .mapping import ParameterMappingSet, build_parameter_mappings
from .markov import MarkovModel, build_models_from_trace
from .modelpart import ModelPartitioner, PartitionedModelProvider, PartitionerConfig
from .scheduling.admission import AdmissionLimits
from .scheduling.policies import SchedulingPolicy, available_policies
from .sim import ClusterSimulator, CostModel, SimulationResult, SimulatorConfig
from .strategies import (
    AssumeDistributedStrategy,
    AssumeSinglePartitionStrategy,
    HoudiniStrategy,
    OracleStrategy,
)
from .txn.strategy import ExecutionStrategy
from .types import ProcedureRequest
from .workload import TraceRecorder, WorkloadTrace
from .workload.generator import WorkloadGenerator

#: Execution strategies a spec may name (the paper's comparisons).
STRATEGY_NAMES = (
    "assume-distributed",
    "assume-single-partition",
    "oracle",
    "houdini",
    "houdini-global",
    "houdini-partitioned",
)

#: Model-provider choices for Houdini-backed strategies.
MODEL_PROVIDERS = ("global", "partitioned")

_UNSET = object()


# ----------------------------------------------------------------------
# Off-line artifacts
# ----------------------------------------------------------------------
@dataclass
class TrainedArtifacts:
    """Off-line artifacts derived from a sample workload trace."""

    trace: WorkloadTrace
    models: dict[str, MarkovModel]
    mappings: ParameterMappingSet
    benchmark: BenchmarkInstance
    extras: dict = field(default_factory=dict)

    def global_provider(self) -> GlobalModelProvider:
        return GlobalModelProvider(self.models)


# ----------------------------------------------------------------------
# The declarative cluster specification
# ----------------------------------------------------------------------
@dataclass
class ClusterSpec:
    """One declarative, validated configuration for a cluster session.

    Composes every choice the previous five config objects spread out —
    benchmark, simulator, Houdini, scheduling, admission and model provider
    — and round-trips through plain dicts: ``ClusterSpec.from_kwargs(
    **spec.to_dict())`` reproduces the spec (policies are normalized to
    their registry names, nested configs to field dicts).  Validation is
    strict: unknown fields and out-of-range values raise
    :class:`~repro.errors.SessionError` with an actionable message instead
    of being silently ignored.
    """

    # --- benchmark -----------------------------------------------------
    benchmark: str = "tpcc"
    num_partitions: int = 8
    partitions_per_node: int = 2
    seed: int = 0
    trace_transactions: int = 2000
    benchmark_config: Mapping | None = None
    # --- strategy / Houdini --------------------------------------------
    strategy: str = "houdini"
    learning: bool = True
    model_provider: str = "global"
    houdini: HoudiniConfig | None = None
    # --- simulator -----------------------------------------------------
    clients_per_partition: int = 4
    warmup_fraction: float = 0.1
    client_think_time_ms: float = 0.0
    # --- scheduling / admission / cost --------------------------------
    policy: SchedulingPolicy | str | None = None
    admission: AdmissionLimits | None = None
    cost_model: CostModel | None = None

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if isinstance(self.houdini, Mapping):
            self.houdini = _coerce(HoudiniConfig, self.houdini, "houdini")
        if isinstance(self.admission, Mapping):
            self.admission = _coerce(AdmissionLimits, self.admission, "admission")
        if isinstance(self.cost_model, Mapping):
            self.cost_model = _coerce(CostModel, self.cost_model, "cost_model")
        self.validate()

    def validate(self) -> None:
        """Check every field; raise :class:`SessionError` on the first problem."""
        benchmarks = available_benchmarks()
        if self.benchmark not in benchmarks:
            raise SessionError(
                f"unknown benchmark {self.benchmark!r}; available: "
                f"{', '.join(benchmarks)}"
            )
        if self.strategy not in STRATEGY_NAMES:
            raise SessionError(
                f"unknown strategy {self.strategy!r}; available: "
                f"{', '.join(STRATEGY_NAMES)}"
            )
        if self.model_provider not in MODEL_PROVIDERS:
            raise SessionError(
                f"unknown model_provider {self.model_provider!r}; available: "
                f"{', '.join(MODEL_PROVIDERS)}"
            )
        for name, minimum in (
            ("num_partitions", 1),
            ("partitions_per_node", 1),
            ("trace_transactions", 1),
            ("clients_per_partition", 1),
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
                raise SessionError(
                    f"{name} must be an integer >= {minimum}, got {value!r}"
                )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SessionError(f"seed must be an integer, got {self.seed!r}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise SessionError(
                f"warmup_fraction must be within [0, 1), got {self.warmup_fraction!r}"
            )
        if self.client_think_time_ms < 0:
            raise SessionError(
                f"client_think_time_ms must be non-negative, "
                f"got {self.client_think_time_ms!r}"
            )
        if isinstance(self.policy, str) and self.policy not in available_policies():
            raise SessionError(
                f"unknown scheduling policy {self.policy!r}; available: "
                f"{', '.join(available_policies())} (or pass a SchedulingPolicy "
                f"instance, or None for FCFS)"
            )
        if self.houdini is not None and not isinstance(self.houdini, HoudiniConfig):
            raise SessionError(
                f"houdini must be a HoudiniConfig or a field dict, "
                f"got {type(self.houdini).__name__}"
            )
        if self.admission is not None and not isinstance(self.admission, AdmissionLimits):
            raise SessionError(
                f"admission must be AdmissionLimits or a field dict, "
                f"got {type(self.admission).__name__}"
            )
        if self.cost_model is not None and not isinstance(self.cost_model, CostModel):
            raise SessionError(
                f"cost_model must be a CostModel or a field dict, "
                f"got {type(self.cost_model).__name__}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "ClusterSpec":
        """Build a spec from keyword arguments, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - known)
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, known, n=1)
                hints.append(f"{name!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
            raise SessionError(
                f"unknown ClusterSpec field(s): {', '.join(hints)}; "
                f"valid fields: {', '.join(sorted(known))}"
            )
        return cls(**kwargs)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls.from_kwargs(**dict(data))

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-friendly) that :meth:`from_kwargs` accepts.

        Policies are normalized to their registry name, nested configs to
        their field dicts; ``None`` fields stay ``None``.
        """
        policy = self.policy
        if isinstance(policy, SchedulingPolicy):
            policy = policy.name
        return {
            "benchmark": self.benchmark,
            "num_partitions": self.num_partitions,
            "partitions_per_node": self.partitions_per_node,
            "seed": self.seed,
            "trace_transactions": self.trace_transactions,
            "benchmark_config": dict(self.benchmark_config)
            if self.benchmark_config is not None else None,
            "strategy": self.strategy,
            "learning": self.learning,
            "model_provider": self.model_provider,
            "houdini": _init_field_dict(self.houdini),
            "clients_per_partition": self.clients_per_partition,
            "warmup_fraction": self.warmup_fraction,
            "client_think_time_ms": self.client_think_time_ms,
            "policy": policy,
            "admission": _init_field_dict(self.admission),
            "cost_model": _init_field_dict(self.cost_model),
        }

    def simulator_config(self, total_transactions: int = 0) -> SimulatorConfig:
        """The :class:`SimulatorConfig` this spec describes."""
        return SimulatorConfig(
            clients_per_partition=self.clients_per_partition,
            total_transactions=total_transactions,
            warmup_fraction=self.warmup_fraction,
            client_think_time_ms=self.client_think_time_ms,
            policy=self.policy,
            admission_limits=self.admission,
        )


def _init_field_dict(config) -> dict | None:
    """The init-field dict of a dataclass instance (``None`` passes through)."""
    if config is None:
        return None
    out = {}
    for f in fields(config):
        if not f.init:
            continue
        value = getattr(config, f.name)
        if isinstance(value, frozenset):
            value = sorted(value)
        out[f.name] = value
    return out


def _coerce(cls, data: Mapping, label: str):
    """Build ``cls(**data)`` with an actionable error for unknown keys."""
    known = {f.name for f in fields(cls) if f.init}
    unknown = sorted(set(data) - known)
    if unknown:
        raise SessionError(
            f"unknown {label} field(s): {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(sorted(known))}"
        )
    kwargs = dict(data)
    if cls is HoudiniConfig and "disabled_procedures" in kwargs:
        kwargs["disabled_procedures"] = frozenset(kwargs["disabled_procedures"])
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise SessionError(f"invalid {label} configuration: {error}") from error


# ----------------------------------------------------------------------
# Training and assembly (the canonical implementations; repro.pipeline
# keeps its historical signatures as thin shims over these)
# ----------------------------------------------------------------------
def build_benchmark(
    name: str,
    num_partitions: int,
    *,
    seed: int = 0,
    partitions_per_node: int = 2,
    config_overrides: Mapping | None = None,
) -> BenchmarkInstance:
    """Build and populate one benchmark at the given cluster size."""
    bundle = get_benchmark(name)
    return bundle.build(
        num_partitions,
        partitions_per_node=partitions_per_node,
        seed=seed,
        config_overrides=config_overrides,
    )


def record_trace(instance: BenchmarkInstance, transactions: int) -> WorkloadTrace:
    """Record a sample workload trace by executing real transactions."""
    recorder = TraceRecorder(
        instance.catalog,
        instance.database,
        base_partition_chooser=instance.generator.home_partition,
    )
    return recorder.record(instance.generator.generate(transactions))


def train(spec: ClusterSpec) -> TrainedArtifacts:
    """Derive the off-line artifacts (Fig. 6) for a cluster specification.

    Builds and populates the benchmark, records a sample workload trace by
    executing real transactions, and derives the Markov models and parameter
    mappings.  The returned benchmark instance's database reflects the trace
    execution (the paper also trains on a live sample of the running system).
    """
    instance = build_benchmark(
        spec.benchmark,
        spec.num_partitions,
        seed=spec.seed,
        partitions_per_node=spec.partitions_per_node,
        config_overrides=spec.benchmark_config,
    )
    trace = record_trace(instance, spec.trace_transactions)
    models = build_models_from_trace(
        instance.catalog,
        trace,
        base_partition_chooser=lambda record: instance.generator.home_partition(
            ProcedureRequest(record.procedure, record.parameters)
        ),
    )
    mappings = build_parameter_mappings(instance.catalog, trace)
    return TrainedArtifacts(
        trace=trace, models=models, mappings=mappings, benchmark=instance
    )


def build_houdini(
    artifacts: TrainedArtifacts,
    *,
    provider: ModelProvider | None = None,
    config: HoudiniConfig | None = None,
    learning: bool = True,
) -> Houdini:
    """Assemble a Houdini instance from trained artifacts."""
    instance = artifacts.benchmark
    houdini_config = config or HoudiniConfig(
        disabled_procedures=instance.bundle.houdini_disabled_procedures
    )
    if houdini_config.disabled_procedures != instance.bundle.houdini_disabled_procedures:
        houdini_config.disabled_procedures = (
            houdini_config.disabled_procedures | instance.bundle.houdini_disabled_procedures
        )
    return Houdini(
        instance.catalog,
        provider or artifacts.global_provider(),
        artifacts.mappings,
        houdini_config,
        learning=learning,
    )


def build_partitioned_provider(
    artifacts: TrainedArtifacts,
    *,
    feature_selection: str = "heuristic",
    houdini_config: HoudiniConfig | None = None,
    partitioner_config: PartitionerConfig | None = None,
) -> PartitionedModelProvider:
    """Build the Section-5 partitioned models from the recorded trace.

    ``feature_selection='feedforward'`` runs the full paper pipeline (greedy
    feature search scored by estimate accuracy); the default ``'heuristic'``
    uses the Fig. 9-style fixed feature set, which is what the large
    throughput sweeps use to keep their running time reasonable.
    """
    instance = artifacts.benchmark
    config = partitioner_config or PartitionerConfig(feature_selection=feature_selection)
    if partitioner_config is None:
        config.feature_selection = feature_selection
    partitioner = ModelPartitioner(
        instance.catalog,
        artifacts.mappings,
        houdini_config=houdini_config or HoudiniConfig(
            disabled_procedures=instance.bundle.houdini_disabled_procedures
        ),
        config=config,
        base_partition_chooser=lambda record: instance.generator.home_partition(
            ProcedureRequest(record.procedure, record.parameters)
        ),
    )
    return partitioner.build_provider(artifacts.trace, dict(artifacts.models))


def build_strategy(
    name: str,
    artifacts: TrainedArtifacts,
    *,
    houdini: Houdini | None = None,
    seed: int = 0,
    learning: bool = True,
    houdini_config: HoudiniConfig | None = None,
    model_provider: str = "global",
) -> ExecutionStrategy:
    """Build one of the paper's execution strategies by name."""
    instance = artifacts.benchmark
    if name == "assume-distributed":
        return AssumeDistributedStrategy(instance.catalog, seed=seed)
    if name == "assume-single-partition":
        return AssumeSinglePartitionStrategy(instance.catalog, seed=seed)
    if name == "oracle":
        return OracleStrategy(instance.catalog, instance.database)
    partitioned = name == "houdini-partitioned" or model_provider == "partitioned"
    if name in ("houdini", "houdini-global", "houdini-partitioned"):
        if houdini is None:
            provider = None
            if partitioned:
                provider = artifacts.extras.get("partitioned_provider")
                if provider is None:
                    provider = build_partitioned_provider(artifacts)
                    artifacts.extras["partitioned_provider"] = provider
            houdini = build_houdini(
                artifacts, provider=provider, config=houdini_config, learning=learning
            )
        return HoudiniStrategy(houdini, name=name)
    raise SessionError(
        f"unknown strategy {name!r}; available: {', '.join(STRATEGY_NAMES)}"
    )


# ----------------------------------------------------------------------
# The session façade
# ----------------------------------------------------------------------
class Cluster:
    """Entry point: ``Cluster.open(spec)`` yields a live :class:`ClusterSession`."""

    @staticmethod
    def open(
        spec: ClusterSpec | None = None,
        *,
        artifacts: TrainedArtifacts | None = None,
        strategy: ExecutionStrategy | None = None,
        houdini: Houdini | None = None,
        **kwargs: Any,
    ) -> "ClusterSession":
        """Open a long-lived cluster session.

        ``spec`` may be omitted and given as keyword arguments instead
        (``Cluster.open(benchmark="tatp", strategy="oracle")``).  Passing
        pre-trained ``artifacts`` skips training — the idiom for comparing
        strategies over one training pass, or for opening several sessions
        against the same artifacts.  A prebuilt ``strategy`` (or ``houdini``)
        instance overrides the spec's strategy assembly; a strategy *name*
        is shorthand for the spec field of the same name.
        """
        if isinstance(strategy, str):
            if spec is None:
                kwargs["strategy"] = strategy
            else:
                spec = replace(spec, strategy=strategy)
            strategy = None
        if spec is None:
            spec = ClusterSpec.from_kwargs(**kwargs)
        elif kwargs:
            raise SessionError(
                "pass either a ClusterSpec or keyword fields, not both "
                f"(got extra: {', '.join(sorted(kwargs))})"
            )
        if artifacts is None:
            artifacts = train(spec)
        if strategy is None:
            # The spec's HoudiniConfig is copied so live reconfiguration of
            # this session never leaks into other sessions opened from the
            # same spec object.
            config = replace(spec.houdini) if spec.houdini is not None else None
            strategy = build_strategy(
                spec.strategy,
                artifacts,
                houdini=houdini,
                seed=spec.seed,
                learning=spec.learning,
                houdini_config=config,
                model_provider=spec.model_provider,
            )
        # Copied for the same reason as the HoudiniConfig above: live cost
        # reconfiguration mutates the model, and the spec must stay reusable.
        cost_model = replace(spec.cost_model) if spec.cost_model is not None else CostModel()
        simulator = ClusterSimulator(
            artifacts.benchmark.catalog,
            artifacts.benchmark.database,
            artifacts.benchmark.generator,
            strategy,
            cost_model=cost_model,
            config=spec.simulator_config(),
            benchmark_name=artifacts.benchmark.name,
        )
        return ClusterSession(spec, artifacts, strategy, simulator)


class ClusterSession:
    """A live cluster: stream transactions in, reconfigure, snapshot, drain.

    See the module docstring for the lifecycle and reconfigure semantics.
    Sessions are single-threaded, like the node scheduler they model.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        artifacts: TrainedArtifacts,
        strategy: ExecutionStrategy,
        simulator: ClusterSimulator,
    ) -> None:
        self.spec = spec
        self.artifacts = artifacts
        self.strategy = strategy
        self.simulator = simulator
        self._closed = False
        simulator.begin()

    # ------------------------------------------------------------------
    @property
    def houdini(self) -> Houdini | None:
        """The strategy's Houdini instance, if it has one."""
        return getattr(self.strategy, "houdini", None)

    @property
    def now_ms(self) -> float:
        """Current simulated time."""
        return self.simulator.now_ms

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed")

    # ------------------------------------------------------------------
    def submit(self, request: ProcedureRequest, *, at_ms: float | None = None) -> None:
        """Inject one out-of-loop request (processed when the session is driven).

        The request enters the node scheduler at ``max(at_ms, now)`` without
        consuming closed-loop budget; its metrics land in the same
        accumulators as closed-loop traffic.
        """
        self._check_open()
        self.simulator.submit_request(request, at_ms=at_ms)

    def step(self) -> bool:
        """Process exactly one simulator event; ``False`` if none remain."""
        self._check_open()
        return self.simulator.step()

    def run_for(
        self, txns: int | None = None, *, sim_seconds: float | None = None
    ) -> SimulationResult:
        """Drive the closed-loop clients and return a metrics snapshot.

        Exactly one of ``txns`` (grant that many further submissions and run
        until the cluster quiesces) or ``sim_seconds`` (run the saturated
        closed loop for that much simulated time) must be given.
        """
        self._check_open()
        if (txns is None) == (sim_seconds is None):
            raise SessionError("run_for needs exactly one of txns= or sim_seconds=")
        simulator = self.simulator
        if txns is not None:
            if txns < 0:
                raise SessionError(f"txns must be non-negative, got {txns!r}")
            simulator.extend_budget(txns)
            simulator.run_until()
        else:
            if sim_seconds < 0:
                raise SessionError(
                    f"sim_seconds must be non-negative, got {sim_seconds!r}"
                )
            deadline = simulator.now_ms + 1000.0 * sim_seconds
            simulator.extend_budget(float("inf"))
            simulator.run_until(deadline_ms=deadline)
            simulator.freeze_budget()
            simulator.advance_clock(deadline)
        return simulator.snapshot()

    # ------------------------------------------------------------------
    def reconfigure(
        self,
        *,
        policy: Any = _UNSET,
        admission: Any = _UNSET,
        estimate_caching: bool | None = None,
        confidence_threshold: float | None = None,
        generator: WorkloadGenerator | None = None,
        cost: Mapping[str, float] | None = None,
    ) -> "ClusterSession":
        """Apply live configuration changes (see the module docstring).

        Returns ``self`` so calls chain:
        ``session.reconfigure(policy="shortest-predicted").run_for(txns=500)``.
        """
        self._check_open()
        simulator = self.simulator
        if policy is not _UNSET:
            if isinstance(policy, str) and policy not in available_policies():
                raise SessionError(
                    f"unknown scheduling policy {policy!r}; available: "
                    f"{', '.join(available_policies())}"
                )
            simulator.set_policy(policy)
        if admission is not _UNSET:
            if isinstance(admission, Mapping):
                admission = _coerce(AdmissionLimits, admission, "admission")
            if admission is not None and not isinstance(admission, AdmissionLimits):
                raise SessionError(
                    f"admission must be AdmissionLimits, a field dict or None, "
                    f"got {type(admission).__name__}"
                )
            simulator.set_admission(admission)
        if generator is not None:
            simulator.set_generator(generator)
        if cost is not None:
            model = simulator.cost_model
            for name, value in cost.items():
                if not name.endswith("_ms") or not hasattr(model, name):
                    raise SessionError(
                        f"unknown cost-model constant {name!r}; constants are "
                        f"the *_ms fields of repro.sim.CostModel"
                    )
                # CostModel.__setattr__ clears the cost-schedule cache.
                setattr(model, name, value)
            # Predicted per-class costs baked the old constants in.
            simulator.scheduler.clear_cost_cache()
        if estimate_caching is not None or confidence_threshold is not None:
            houdini = self.houdini
            if houdini is None:
                raise SessionError(
                    "estimate_caching / confidence_threshold reconfiguration "
                    f"requires a Houdini-backed strategy (this session runs "
                    f"{self.strategy.name!r})"
                )
            try:
                houdini.reconfigure(
                    estimate_caching=estimate_caching,
                    confidence_threshold=confidence_threshold,
                )
            except ValueError as error:
                raise SessionError(str(error)) from error
        return self

    # ------------------------------------------------------------------
    def snapshot_metrics(self) -> SimulationResult:
        """Materialize cumulative metrics on demand (repeatable)."""
        self._check_open()
        return self.simulator.snapshot()

    def drain(self) -> SimulationResult:
        """Finish all queued and in-flight work, stop new submissions, snapshot."""
        self._check_open()
        self.simulator.freeze_budget()
        self.simulator.run_until()
        return self.simulator.snapshot()

    def close(self) -> SimulationResult:
        """Drain the session and seal it; returns the final metrics."""
        if self._closed:
            raise SessionError("session is already closed")
        result = self.drain()
        self._closed = True
        return result

    # ------------------------------------------------------------------
    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._closed:
            return
        if exc_type is not None:
            # The body failed: seal the session without draining.  Running
            # the event loop on the very state that just raised could both
            # mask the original exception and silently execute queued work.
            self._closed = True
            return
        self.close()

    def describe(self) -> str:
        return (
            f"ClusterSession({self.spec.benchmark}/{self.strategy.name} "
            f"P={self.spec.num_partitions} t={self.now_ms:.1f}ms "
            f"submitted={self.simulator.submitted}"
            f"{', closed' if self._closed else ''})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"
