"""Per-partition data storage.

Each partition in the cluster owns a :class:`PartitionStore`: one
:class:`~repro.storage.heap.RowHeap` per table.  Replicated tables get a heap
in every partition; partitioned tables only store the rows whose
partitioning-column value hashes to this partition (the loader enforces
this).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..catalog.schema import Schema
from ..errors import StorageError, UnknownTableError
from ..types import PartitionId
from .heap import RowHeap


class PartitionStore:
    """All table heaps belonging to one partition."""

    def __init__(self, partition_id: PartitionId, schema: Schema) -> None:
        self.partition_id = partition_id
        self.schema = schema
        self._heaps: dict[str, RowHeap] = {
            table.name: RowHeap(table) for table in schema.tables()
        }

    def heap(self, table_name: str) -> RowHeap:
        try:
            return self._heaps[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    def table_names(self) -> Iterator[str]:
        return iter(self._heaps)

    def row_count(self, table_name: str | None = None) -> int:
        """Rows stored on this partition, for one table or in total."""
        if table_name is not None:
            return len(self.heap(table_name))
        return sum(len(heap) for heap in self._heaps.values())

    def insert_row(self, table_name: str, values: dict[str, Any]) -> int:
        return self.heap(table_name).insert(values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PartitionStore partition={self.partition_id} rows={self.row_count()}>"


class Database:
    """The full cluster's data: one :class:`PartitionStore` per partition.

    The database also offers loader helpers that route rows to their home
    partitions (and to every partition for replicated tables).
    """

    def __init__(self, schema: Schema, num_partitions: int) -> None:
        if num_partitions < 1:
            raise StorageError("database needs at least one partition")
        self.schema = schema
        self.num_partitions = num_partitions
        self._partitions = [PartitionStore(p, schema) for p in range(num_partitions)]

    def partition(self, partition_id: PartitionId) -> PartitionStore:
        if not 0 <= partition_id < self.num_partitions:
            raise StorageError(f"partition {partition_id} out of range")
        return self._partitions[partition_id]

    def partitions(self) -> Iterator[PartitionStore]:
        return iter(self._partitions)

    # ------------------------------------------------------------------
    # Loader helpers
    # ------------------------------------------------------------------
    def load_row(self, table_name: str, values: dict[str, Any], estimator) -> None:
        """Insert one row at its home partition (all partitions if replicated).

        ``estimator`` is a :class:`~repro.catalog.partitioning.PartitionEstimator`
        for the target cluster configuration.
        """
        table = self.schema.table(table_name)
        row = table.new_row(values)
        if table.replicated:
            for store in self._partitions:
                store.insert_row(table_name, row)
            return
        home = estimator.partition_for_row(table, row)
        self.partition(home).insert_row(table_name, row)

    def total_rows(self, table_name: str | None = None) -> int:
        return sum(store.row_count(table_name) for store in self._partitions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Database partitions={self.num_partitions} rows={self.total_rows()}>"
