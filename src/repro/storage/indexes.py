"""In-memory index structures for the row store.

Two index kinds are provided:

* :class:`HashIndex` — equality lookups (the common case for OLTP index
  look-ups the paper assumes; "transactions touch a small subset of data
  using index look-ups").
* :class:`OrderedIndex` — a sorted-key index used for the handful of range /
  "latest N" access patterns in the benchmarks (e.g. TPC-C StockLevel and
  OrderStatus).

Indexes map key tuples to lists of row ids within a
:class:`~repro.storage.heap.RowHeap`.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator

from ..errors import StorageError

#: Shared empty bucket returned by read-only misses.
_EMPTY_BUCKET: list[int] = []


class HashIndex:
    """A (possibly non-unique) hash index from key tuples to row ids."""

    def __init__(self, columns: tuple[str, ...], unique: bool = False) -> None:
        if not columns:
            raise StorageError("index requires at least one column")
        self.columns = columns
        self.unique = unique
        self._entries: dict[tuple[Any, ...], list[int]] = {}

    def key_of(self, row: dict[str, Any]) -> tuple[Any, ...]:
        return tuple(row[c] for c in self.columns)

    def insert(self, key: tuple[Any, ...], row_id: int) -> None:
        bucket = self._entries.setdefault(key, [])
        if self.unique and bucket:
            raise StorageError(f"unique index violation on {self.columns}: {key!r}")
        bucket.append(row_id)

    def remove(self, key: tuple[Any, ...], row_id: int) -> None:
        bucket = self._entries.get(key)
        if not bucket or row_id not in bucket:
            raise StorageError(f"row {row_id} not present for key {key!r}")
        bucket.remove(row_id)
        if not bucket:
            del self._entries[key]

    def lookup(self, key: tuple[Any, ...]) -> list[int]:
        return list(self._entries.get(key, ()))

    def lookup_readonly(self, key: tuple[Any, ...]):
        """Bucket for ``key`` without the defensive copy.

        The returned sequence is live index state — callers must not mutate
        it or the heap while holding it (the read-only SELECT path).
        """
        return self._entries.get(key, _EMPTY_BUCKET)

    def contains(self, key: tuple[Any, ...]) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())

    def keys(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._entries)


class OrderedIndex:
    """A sorted-key index supporting range scans.

    Keys are kept in a sorted list; each key maps to the row ids carrying it.
    This is a simple reproduction of a B-tree's leaf level, adequate for the
    small per-partition data volumes of the benchmarks.
    """

    def __init__(self, columns: tuple[str, ...]) -> None:
        if not columns:
            raise StorageError("index requires at least one column")
        self.columns = columns
        self._keys: list[tuple[Any, ...]] = []
        self._entries: dict[tuple[Any, ...], list[int]] = {}

    def key_of(self, row: dict[str, Any]) -> tuple[Any, ...]:
        return tuple(row[c] for c in self.columns)

    def insert(self, key: tuple[Any, ...], row_id: int) -> None:
        if key not in self._entries:
            bisect.insort(self._keys, key)
            self._entries[key] = []
        self._entries[key].append(row_id)

    def remove(self, key: tuple[Any, ...], row_id: int) -> None:
        bucket = self._entries.get(key)
        if not bucket or row_id not in bucket:
            raise StorageError(f"row {row_id} not present for key {key!r}")
        bucket.remove(row_id)
        if not bucket:
            del self._entries[key]
            index = bisect.bisect_left(self._keys, key)
            if index < len(self._keys) and self._keys[index] == key:
                del self._keys[index]

    def lookup(self, key: tuple[Any, ...]) -> list[int]:
        return list(self._entries.get(key, ()))

    def lookup_readonly(self, key: tuple[Any, ...]):
        """Bucket for ``key`` without the defensive copy (read-only use)."""
        return self._entries.get(key, _EMPTY_BUCKET)

    def range(
        self,
        low: tuple[Any, ...] | None = None,
        high: tuple[Any, ...] | None = None,
        *,
        reverse: bool = False,
    ) -> Iterator[int]:
        """Yield row ids whose keys fall in ``[low, high]`` (inclusive)."""
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        stop = len(self._keys) if high is None else bisect.bisect_right(self._keys, high)
        selected: Iterable[tuple[Any, ...]] = self._keys[start:stop]
        if reverse:
            selected = reversed(list(selected))
        for key in selected:
            yield from self._entries[key]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())
