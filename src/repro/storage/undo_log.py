"""Transient undo logging (OP3 substrate).

H-Store keeps a per-transaction, in-memory undo buffer that is discarded at
commit and replayed (in reverse) at abort.  The paper's OP3 optimization
disables this buffer for transactions that are predicted never to abort; the
cost of maintaining the buffer is what the optimization saves, and the danger
is that an abort after disabling it is unrecoverable.

The :class:`UndoLog` here is *real*: aborting a transaction rolls the
in-memory tables back to their previous state, and a rollback attempted while
logging is disabled raises :class:`~repro.errors.UnrecoverableError` so tests
can prove Houdini never triggers it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from ..errors import UnrecoverableError


class UndoAction(Enum):
    """Kind of change recorded in an undo record."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True)
class UndoRecord:
    """A single logical undo record.

    ``before_image`` is the full previous row for UPDATE/DELETE and ``None``
    for INSERT (undoing an insert simply deletes the row again).
    """

    action: UndoAction
    table: str
    partition_id: int
    row_id: int
    before_image: dict[str, Any] | None = None


class UndoLog:
    """Per-transaction undo buffer.

    The log may be *disabled* (OP3): records are then not retained, the
    counter of skipped records is kept for metrics, and any later attempt to
    roll back raises :class:`UnrecoverableError`.
    """

    #: Optional write-effect sink.  When a subclass sets this to a list, the
    #: statement executor appends one replayable op per physical write —
    #: independent of whether undo records are being retained.  ``None`` (the
    #: default) keeps the hot write path free of any capture cost.
    effects: list | None = None

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._records: list[UndoRecord] = []
        self._skipped = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def disable(self) -> None:
        """Stop recording undo information (the OP3 optimization)."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records_written(self) -> int:
        """Number of records actually retained (undo-log maintenance cost)."""
        return len(self._records)

    @property
    def records_skipped(self) -> int:
        """Number of records that OP3 allowed the engine to skip."""
        return self._skipped

    # ------------------------------------------------------------------
    def record(self, record: UndoRecord) -> None:
        if self._enabled:
            self._records.append(record)
        else:
            self._skipped += 1

    def record_insert(self, table: str, partition_id: int, row_id: int) -> None:
        if not self._enabled:
            self._skipped += 1
            return
        self._records.append(UndoRecord(UndoAction.INSERT, table, partition_id, row_id))

    def note_skipped(self) -> None:
        """Count a record the caller proved unnecessary to even build.

        The executor uses this when undo logging is disabled to skip the
        before-image copy entirely while keeping the skipped-records metric
        (which drives OP3 accounting and lock-escalation safety) exact.
        """
        self._skipped += 1

    def record_update(
        self, table: str, partition_id: int, row_id: int, before_image: dict[str, Any]
    ) -> None:
        """Record a row's previous image.  The log takes ownership of
        ``before_image`` — callers must pass a dict they will not mutate
        afterwards (the row heap hands back a fresh copy)."""
        if not self._enabled:
            self._skipped += 1
            return
        self._records.append(
            UndoRecord(UndoAction.UPDATE, table, partition_id, row_id, before_image)
        )

    def record_delete(
        self, table: str, partition_id: int, row_id: int, before_image: dict[str, Any]
    ) -> None:
        """Record a deleted row.  Takes ownership of ``before_image`` (the
        heap no longer references the popped row dict)."""
        if not self._enabled:
            self._skipped += 1
            return
        self._records.append(
            UndoRecord(UndoAction.DELETE, table, partition_id, row_id, before_image)
        )

    # ------------------------------------------------------------------
    def rollback(self, store_resolver) -> int:
        """Undo every recorded change, newest first.

        ``store_resolver(partition_id)`` must return the
        :class:`~repro.storage.partition_store.PartitionStore` owning the
        partition.  Returns the number of records undone.

        Raises
        ------
        UnrecoverableError
            If changes were made while the log was disabled — the situation
            the paper describes as requiring the node to halt.
        """
        if self._skipped:
            raise UnrecoverableError(
                f"abort requested but {self._skipped} changes were made without undo logging"
            )
        undone = 0
        for record in reversed(self._records):
            store = store_resolver(record.partition_id)
            heap = store.heap(record.table)
            if record.action is UndoAction.INSERT:
                heap.delete(record.row_id)
            elif record.action is UndoAction.UPDATE:
                assert record.before_image is not None
                current = heap.get(record.row_id)
                heap.update(record.row_id, {
                    column: record.before_image[column]
                    for column in current
                })
            else:  # DELETE
                assert record.before_image is not None
                heap.insert_raw(record.before_image, record.row_id)
            undone += 1
        self._records.clear()
        return undone

    def clear(self) -> None:
        """Discard the buffer (what commit does)."""
        self._records.clear()
        self._skipped = 0
