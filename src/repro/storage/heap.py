"""Row heaps: the per-partition storage of a single table.

Rows are plain dicts stored in a slotted list; a monotonically increasing row
id addresses each slot.  The heap maintains the table's primary-key hash
index plus any declared secondary indexes, and exposes the low-level
insert/update/delete operations the statement executor builds on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..errors import DuplicateKeyError, StorageError
from ..catalog.table import Table
from .indexes import HashIndex, OrderedIndex


class RowHeap:
    """All rows of one table stored on one partition."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 0
        self._primary: HashIndex | None = None
        if table.primary_key:
            self._primary = HashIndex(tuple(table.primary_key), unique=True)
        self._secondary: dict[str, HashIndex | OrderedIndex] = {}
        for index in table.secondary_indexes:
            self._secondary[index.name] = HashIndex(tuple(index.columns), unique=index.unique)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of every live row (order unspecified)."""
        for row in self._rows.values():
            yield dict(row)

    def row_ids(self) -> Iterator[int]:
        return iter(self._rows.keys())

    def get(self, row_id: int) -> dict[str, Any]:
        try:
            return dict(self._rows[row_id])
        except KeyError:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}") from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: dict[str, Any]) -> int:
        """Insert a row (validated against the table) and return its row id."""
        row = self.table.new_row(values)
        if self._primary is not None:
            key = self._primary.key_of(row)
            if self._primary.contains(key):
                raise DuplicateKeyError(self.table.name, key)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        if self._primary is not None:
            self._primary.insert(self._primary.key_of(row), row_id)
        for index in self._secondary.values():
            index.insert(index.key_of(row), row_id)
        return row_id

    def insert_raw(self, row: dict[str, Any], row_id: int) -> None:
        """Re-insert a previously deleted row under its original id (undo)."""
        if row_id in self._rows:
            raise StorageError(f"row id {row_id} already present")
        self._rows[row_id] = dict(row)
        self._next_row_id = max(self._next_row_id, row_id + 1)
        if self._primary is not None:
            self._primary.insert(self._primary.key_of(row), row_id)
        for index in self._secondary.values():
            index.insert(index.key_of(row), row_id)

    def update(self, row_id: int, assignments: dict[str, Any]) -> dict[str, Any]:
        """Apply column assignments to a row, returning its *previous* image."""
        if row_id not in self._rows:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}")
        self.table.validate_update(assignments)
        current = self._rows[row_id]
        before = dict(current)
        reindex_primary = self._primary is not None and any(
            column in self.table.primary_key for column in assignments
        )
        affected_secondary = [
            index for index in self._secondary.values()
            if any(column in index.columns for column in assignments)
        ]
        if reindex_primary:
            self._primary.remove(self._primary.key_of(before), row_id)
        for index in affected_secondary:
            index.remove(index.key_of(before), row_id)
        current.update(assignments)
        if reindex_primary:
            self._primary.insert(self._primary.key_of(current), row_id)
        for index in affected_secondary:
            index.insert(index.key_of(current), row_id)
        return before

    def delete(self, row_id: int) -> dict[str, Any]:
        """Delete a row, returning its previous image."""
        if row_id not in self._rows:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}")
        row = self._rows.pop(row_id)
        if self._primary is not None:
            self._primary.remove(self._primary.key_of(row), row_id)
        for index in self._secondary.values():
            index.remove(index.key_of(row), row_id)
        return row

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def find(self, predicate: dict[str, Any]) -> list[int]:
        """Return the row ids matching conjunctive equality predicates.

        Uses the primary-key index when the predicate covers it, a secondary
        index when one matches a subset of the predicate columns, and falls
        back to a sequential scan otherwise.
        """
        if not predicate:
            return list(self._rows.keys())
        candidates = self._candidate_ids(predicate)
        matching = []
        for row_id in candidates:
            row = self._rows.get(row_id)
            if row is None:
                continue
            if all(row.get(column) == value for column, value in predicate.items()):
                matching.append(row_id)
        return matching

    def _candidate_ids(self, predicate: dict[str, Any]) -> list[int]:
        predicate_columns = set(predicate)
        if self._primary is not None and set(self.table.primary_key) <= predicate_columns:
            key = tuple(predicate[c] for c in self.table.primary_key)
            return self._primary.lookup(key)
        for index in self._secondary.values():
            if set(index.columns) <= predicate_columns:
                key = tuple(predicate[c] for c in index.columns)
                return index.lookup(key)
        return list(self._rows.keys())

    def select(
        self,
        predicate: dict[str, Any],
        *,
        output_columns: tuple[str, ...] = (),
        order_by: tuple[str, bool] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Run a SELECT against this heap and return projected row copies."""
        row_ids = self.find(predicate)
        rows = [dict(self._rows[row_id]) for row_id in row_ids]
        if order_by is not None:
            column, descending = order_by
            rows.sort(key=lambda r: r[column], reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        if output_columns:
            rows = [{c: row[c] for c in output_columns} for row in rows]
        return rows

    def aggregate(self, predicate: dict[str, Any], column: str, func: Callable[[list[Any]], Any]) -> Any:
        """Apply ``func`` to the values of ``column`` across matching rows."""
        values = [self._rows[row_id][column] for row_id in self.find(predicate)]
        return func(values)
