"""Row heaps: the per-partition storage of a single table.

Rows are plain dicts stored in a slotted list; a monotonically increasing row
id addresses each slot.  The heap maintains the table's primary-key hash
index plus any declared secondary indexes, and exposes the low-level
insert/update/delete operations the statement executor builds on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..errors import DuplicateKeyError, StorageError
from ..catalog.table import Table
from .indexes import HashIndex, OrderedIndex

#: Shared empty list for the no-affected-indexes common case.
_NO_INDEXES: list = []
#: Shared empty row list for primary-key misses.
_NO_ROWS: list = []


class RowHeap:
    """All rows of one table stored on one partition."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_row_id = 0
        self._primary: HashIndex | None = None
        if table.primary_key:
            self._primary = HashIndex(tuple(table.primary_key), unique=True)
        self._secondary: dict[str, HashIndex | OrderedIndex] = {}
        for index in table.secondary_indexes:
            self._secondary[index.name] = HashIndex(tuple(index.columns), unique=index.unique)
        #: Non-unique indexes over proper prefixes of the primary key, built
        #: lazily the first time a predicate covers that prefix (OLTP code
        #: like TPC-C's ORDER_LINE or TATP's CALL_FORWARDING constantly looks
        #: rows up by a PK prefix, which would otherwise be a full scan).
        #: Keyed by prefix length; maintained by every mutation thereafter.
        self._prefix: dict[int, HashIndex] = {}
        #: Precomputed column sets consulted on every ``find``.
        self._pk_columns: tuple[str, ...] = tuple(table.primary_key or ())
        self._pk_set: frozenset[str] = frozenset(self._pk_columns)
        self._secondary_sets: tuple[tuple[HashIndex | OrderedIndex, frozenset[str]], ...] = tuple(
            (index, frozenset(index.columns)) for index in self._secondary.values()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of every live row (order unspecified)."""
        for row in self._rows.values():
            yield dict(row)

    def row_ids(self) -> Iterator[int]:
        return iter(self._rows.keys())

    def get(self, row_id: int) -> dict[str, Any]:
        try:
            return dict(self._rows[row_id])
        except KeyError:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}") from None

    def row(self, row_id: int) -> dict[str, Any]:
        """The *live* row dict — read-only, executor fast path only."""
        try:
            return self._rows[row_id]
        except KeyError:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}") from None

    # ------------------------------------------------------------------
    # Primary-key fast path (compiled executor access plans)
    # ------------------------------------------------------------------
    def pk_row_ids(self, key: tuple[Any, ...]) -> list[int]:
        """Row ids carrying an exact primary-key tuple.

        Returns the live index bucket (possibly a shared empty list):
        callers that mutate the heap while iterating must copy it first.
        """
        if self._primary is None:
            raise StorageError(f"table {self.table.name!r} has no primary key")
        return self._primary.lookup_readonly(key)

    def pk_rows(self, key: tuple[Any, ...]) -> list[dict[str, Any]]:
        """Live row dicts for an exact primary-key tuple (read-only)."""
        if self._primary is None:
            raise StorageError(f"table {self.table.name!r} has no primary key")
        bucket = self._primary.lookup_readonly(key)
        if not bucket:
            return _NO_ROWS
        rows = self._rows
        return [rows[row_id] for row_id in bucket]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: dict[str, Any]) -> int:
        """Insert a row (validated against the table) and return its row id."""
        row = self.table.new_row(values)
        primary = self._primary
        key = None
        if primary is not None:
            key = primary.key_of(row)
            if primary.contains(key):
                raise DuplicateKeyError(self.table.name, key)
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = row
        if primary is not None:
            primary.insert(key, row_id)
        for index in self._secondary.values():
            index.insert(index.key_of(row), row_id)
        for index in self._prefix.values():
            index.insert(index.key_of(row), row_id)
        return row_id

    def insert_raw(self, row: dict[str, Any], row_id: int) -> None:
        """Re-insert a previously deleted row under its original id (undo)."""
        if row_id in self._rows:
            raise StorageError(f"row id {row_id} already present")
        stored = dict(row)
        self._rows[row_id] = stored
        self._next_row_id = max(self._next_row_id, row_id + 1)
        if self._primary is not None:
            self._primary.insert(self._primary.key_of(row), row_id)
        for index in self._secondary.values():
            index.insert(index.key_of(row), row_id)
        for index in self._prefix.values():
            index.insert(index.key_of(stored), row_id)

    def update(
        self,
        row_id: int,
        assignments: dict[str, Any],
        *,
        validate: bool = True,
        capture_before: bool = True,
    ) -> dict[str, Any] | None:
        """Apply column assignments to a row, returning its *previous* image.

        ``validate=False`` skips the per-call type validation; callers (the
        statement executor) use it after validating a shared assignment dict
        once for a whole multi-row update.  ``capture_before=False`` skips
        building the previous-image copy and returns ``None`` — for updates
        whose undo logging is disabled (OP3), where the image would be
        dropped anyway.
        """
        if row_id not in self._rows:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}")
        if validate:
            self.table.validate_update(assignments)
        current = self._rows[row_id]
        reindex_primary = self._primary is not None and not self._pk_set.isdisjoint(
            assignments
        )
        affected_secondary = [
            index for index, column_set in self._secondary_sets
            if not column_set.isdisjoint(assignments)
        ] if self._secondary else _NO_INDEXES
        affected_prefix = [
            index for index in self._prefix.values()
            if any(column in index.columns for column in assignments)
        ] if self._prefix else _NO_INDEXES
        if reindex_primary:
            self._primary.remove(self._primary.key_of(current), row_id)
        for index in affected_secondary:
            index.remove(index.key_of(current), row_id)
        for index in affected_prefix:
            index.remove(index.key_of(current), row_id)
        before = dict(current) if capture_before else None
        current.update(assignments)
        if reindex_primary:
            self._primary.insert(self._primary.key_of(current), row_id)
        for index in affected_secondary:
            index.insert(index.key_of(current), row_id)
        for index in affected_prefix:
            index.insert(index.key_of(current), row_id)
        return before

    def delete(self, row_id: int) -> dict[str, Any]:
        """Delete a row, returning its previous image."""
        if row_id not in self._rows:
            raise StorageError(f"no row with id {row_id} in table {self.table.name!r}")
        row = self._rows.pop(row_id)
        if self._primary is not None:
            self._primary.remove(self._primary.key_of(row), row_id)
        for index in self._secondary.values():
            index.remove(index.key_of(row), row_id)
        for index in self._prefix.values():
            index.remove(index.key_of(row), row_id)
        return row

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def find(self, predicate: dict[str, Any]) -> list[int]:
        """Return the row ids matching conjunctive equality predicates.

        Uses the primary-key index when the predicate covers it, a secondary
        index when one matches a subset of the predicate columns, a lazily
        built primary-key *prefix* index when the predicate covers a proper
        prefix of the primary key, and falls back to a sequential scan
        otherwise.
        """
        if not predicate:
            return list(self._rows.keys())
        candidates, exact = self._candidate_ids(predicate)
        if exact:
            # The index key covers every predicate column, so the candidates
            # already satisfy the predicate — no per-row verification needed.
            return candidates
        rows = self._rows
        matching = []
        for row_id in candidates:
            row = rows.get(row_id)
            if row is None:
                continue
            if all(row.get(column) == value for column, value in predicate.items()):
                matching.append(row_id)
        return matching

    def _candidate_ids(self, predicate: dict[str, Any]) -> tuple[list[int], bool]:
        """Candidate row ids plus whether they need no further verification."""
        predicate_columns = predicate.keys()
        primary_key = self._pk_columns
        if self._primary is not None and self._pk_set <= predicate_columns:
            key = tuple(predicate[c] for c in primary_key)
            return self._primary.lookup(key), len(predicate) == len(primary_key)
        for index, column_set in self._secondary_sets:
            if column_set <= predicate_columns:
                key = tuple(predicate[c] for c in index.columns)
                return index.lookup(key), len(predicate) == len(index.columns)
        if primary_key:
            length = 0
            for column in primary_key:
                if column not in predicate_columns:
                    break
                length += 1
            if length > 0:
                index = self._prefix_index(length)
                key = tuple(predicate[c] for c in primary_key[:length])
                return index.lookup(key), len(predicate) == length
        return list(self._rows.keys()), False

    def _prefix_index(self, length: int) -> HashIndex:
        """Get (or lazily build) the index over the first ``length`` PK columns.

        The build scans rows in storage order so lookups return ids in the
        same order the sequential-scan fallback used to produce.
        """
        index = self._prefix.get(length)
        if index is None:
            index = HashIndex(self._pk_columns[:length])
            for row_id, row in self._rows.items():
                index.insert(index.key_of(row), row_id)
            self._prefix[length] = index
        return index

    def _find_readonly(self, predicate: dict[str, Any]) -> list[int]:
        """Like :meth:`find` but may return a live index bucket.

        Only safe for callers that do not mutate the heap while holding the
        result (SELECT / aggregate paths); :meth:`find` itself always copies
        because the write paths delete/update rows while iterating.
        """
        if not predicate:
            return list(self._rows.keys())
        predicate_columns = predicate.keys()
        primary_key = self._pk_columns
        if self._primary is not None and self._pk_set <= predicate_columns:
            if len(predicate) == len(primary_key):
                key = tuple(predicate[c] for c in primary_key)
                return self._primary.lookup_readonly(key)
        else:
            for index, column_set in self._secondary_sets:
                if column_set <= predicate_columns and len(predicate) == len(index.columns):
                    key = tuple(predicate[c] for c in index.columns)
                    return index.lookup_readonly(key)
        return self.find(predicate)

    def select(
        self,
        predicate: dict[str, Any],
        *,
        output_columns: tuple[str, ...] = (),
        order_by: tuple[str, bool] | None = None,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Run a SELECT against this heap and return projected row copies."""
        row_ids = self._find_readonly(predicate)
        rows = self._rows
        found = [rows[row_id] for row_id in row_ids]
        if order_by is not None:
            column, descending = order_by
            found = sorted(found, key=lambda r: r[column], reverse=descending)
        if limit is not None:
            found = found[:limit]
        if output_columns:
            return [{c: row[c] for c in output_columns} for row in found]
        return [dict(row) for row in found]

    def aggregate(self, predicate: dict[str, Any], column: str, func: Callable[[list[Any]], Any]) -> Any:
        """Apply ``func`` to the values of ``column`` across matching rows."""
        values = [self._rows[row_id][column] for row_id in self.find(predicate)]
        return func(values)
