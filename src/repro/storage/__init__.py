"""Storage subsystem: in-memory row heaps, indexes, undo logging.

This package is the main-memory storage substrate of the reproduction.  Data
is real (dict rows, hash/ordered indexes, per-partition heaps) and the undo
log performs real rollbacks, which lets the test suite verify the semantics
that the paper's OP3 optimization relies on.
"""

from .heap import RowHeap
from .indexes import HashIndex, OrderedIndex
from .partition_store import Database, PartitionStore
from .undo_log import UndoAction, UndoLog, UndoRecord

__all__ = [
    "RowHeap",
    "HashIndex",
    "OrderedIndex",
    "PartitionStore",
    "Database",
    "UndoLog",
    "UndoRecord",
    "UndoAction",
]
