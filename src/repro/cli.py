"""Command-line interface for the reproduction.

The CLI wraps the high-level :mod:`repro.pipeline` flows so the library can
be exercised without writing Python:

.. code-block:: console

    $ python -m repro list-benchmarks
    $ python -m repro train tpcc --partitions 8 --trace 2000 --output /tmp/tpcc
    $ python -m repro inspect /tmp/tpcc
    $ python -m repro simulate tpcc --strategy houdini --partitions 8
    $ python -m repro experiment figure03 --scale small

Every command prints a human-readable report to stdout and exits non-zero on
errors, so it composes with shell scripts and CI jobs.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from . import pipeline
from .artifacts import ArtifactBundle
from .benchmarks import available_benchmarks
from .errors import ReproError
from .experiments import (
    ExperimentScale,
    run_figure03,
    run_figure11,
    run_figure12,
    run_figure13,
    run_model_figures,
    run_summary,
    run_table03,
    run_table04,
)

#: Strategy names accepted by ``repro simulate``.
STRATEGIES = (
    "assume-distributed",
    "assume-single-partition",
    "oracle",
    "houdini",
    "houdini-global",
    "houdini-partitioned",
)

#: Experiment registry: id -> runner returning an object with ``format()``.
EXPERIMENTS: dict[str, Callable] = {
    "figure03": run_figure03,
    "table03": run_table03,
    "figure11": run_figure11,
    "table04": run_table04,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "models": run_model_figures,
    "summary": run_summary,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On Predictive Modeling for Optimizing Transaction "
            "Execution in Parallel OLTP Systems' (Pavlo et al., VLDB 2011)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-benchmarks", help="list the OLTP benchmarks available for training"
    )

    train = subparsers.add_parser(
        "train", help="record a trace and build Markov models + parameter mappings"
    )
    train.add_argument("benchmark", choices=available_benchmarks())
    train.add_argument("--partitions", type=int, default=8)
    train.add_argument("--trace", type=int, default=2000, help="transactions to record")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--output", default=None, help="directory to write the artifact bundle to"
    )

    inspect = subparsers.add_parser(
        "inspect", help="describe a previously saved artifact bundle"
    )
    inspect.add_argument("artifacts", help="directory written by 'repro train --output'")

    simulate = subparsers.add_parser(
        "simulate", help="run the closed-loop cluster simulator for one configuration"
    )
    simulate.add_argument("benchmark", choices=available_benchmarks())
    simulate.add_argument("--strategy", choices=STRATEGIES, default="houdini")
    simulate.add_argument("--partitions", type=int, default=8)
    simulate.add_argument("--trace", type=int, default=2000)
    simulate.add_argument("--transactions", type=int, default=2000)
    simulate.add_argument("--threshold", type=float, default=None,
                          help="confidence-coefficient threshold (Houdini strategies)")
    simulate.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--scale", choices=("small", "medium", "large", "paper"), default="small"
    )

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    for name in available_benchmarks():
        print(name)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    trained = pipeline.train(
        args.benchmark,
        args.partitions,
        trace_transactions=args.trace,
        seed=args.seed,
    )
    bundle = ArtifactBundle.from_trained(trained)
    print(bundle.describe())
    for name in sorted(trained.models):
        model = trained.models[name]
        print(f"  {name}: {model.vertex_count()} states, {model.edge_count()} edges")
    if args.output:
        target = bundle.save(args.output)
        print(f"artifacts written to {target}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    bundle = ArtifactBundle.load(args.artifacts)
    print(bundle.describe())
    for name in sorted(bundle.models):
        model = bundle.models[name]
        print(f"  {name}: {model.vertex_count()} states, {model.edge_count()} edges")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trained = pipeline.train(
        args.benchmark,
        args.partitions,
        trace_transactions=args.trace,
        seed=args.seed,
    )
    houdini = None
    if args.threshold is not None and args.strategy.startswith("houdini"):
        from .houdini import HoudiniConfig

        houdini = pipeline.make_houdini(
            trained, config=HoudiniConfig(confidence_threshold=args.threshold)
        )
    strategy = pipeline.make_strategy(args.strategy, trained, houdini=houdini)
    result = pipeline.simulate(trained, strategy, transactions=args.transactions)
    for key, value in result.summary_row().items():
        print(f"{key}: {value}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = {
        "small": ExperimentScale.small,
        "medium": ExperimentScale.medium,
        "large": ExperimentScale.large,
        "paper": ExperimentScale.paper,
    }[args.scale]()
    runner = EXPERIMENTS[args.id]
    result = runner(scale)
    print(result.format())
    return 0


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "list-benchmarks": _cmd_list_benchmarks,
    "train": _cmd_train,
    "inspect": _cmd_inspect,
    "simulate": _cmd_simulate,
    "experiment": _cmd_experiment,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
