"""Command-line interface for the reproduction.

The CLI wraps the high-level :mod:`repro.pipeline` flows so the library can
be exercised without writing Python:

.. code-block:: console

    $ python -m repro list-benchmarks
    $ python -m repro train tpcc --partitions 8 --trace 2000 --output /tmp/tpcc
    $ python -m repro inspect /tmp/tpcc
    $ python -m repro simulate tpcc --strategy houdini --partitions 8 --json
    $ python -m repro record tatp --transactions 300 --rate 500 --output /tmp/t.jsonl
    $ python -m repro simulate tatp --workload /tmp/t.jsonl --json
    $ python -m repro serve tatp --partitions 4
    $ python -m repro experiment figure03 --scale small
    $ python -m repro knee tatp --users 1000000
    $ python -m repro analyze --strict

``simulate`` runs one configuration through a
:class:`~repro.session.ClusterSession` and prints its summary (or, with
``--json``, the full stable :meth:`SimulationResult.to_dict` document); by
default it drives the closed loop, while ``--workload trace.jsonl`` replays
a recorded trace (``record`` writes one, stamped with open-loop arrival
times) through a :class:`~repro.workload.sources.TraceReplaySource`.
``serve`` opens a long-lived session and reads commands from stdin — a
REPL over the session API (``run N``, ``policy NAME``, ``admission k=v``,
``caching on|off``, ``threshold X``, ``workload ...``, ``inflight``,
``metrics``, ``drain``, ``quit``) — so live-reconfiguration and workload-
switch scenarios can be scripted from the shell.

Every command prints a human-readable report to stdout and exits non-zero on
errors, so it composes with shell scripts and CI jobs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Sequence

from . import pipeline
from .artifacts import ArtifactBundle
from .benchmarks import available_benchmarks
from .errors import ReproError
from .experiments import (
    ExperimentScale,
    run_figure03,
    run_figure11,
    run_figure12,
    run_figure13,
    run_model_figures,
    run_overload_knee,
    run_summary,
    run_table03,
    run_table04,
)
from .session import STRATEGY_NAMES, Cluster, ClusterSpec

#: Strategy names accepted by ``repro simulate`` / ``repro serve``.
STRATEGIES = STRATEGY_NAMES

#: Experiment registry: id -> runner returning an object with ``format()``.
EXPERIMENTS: dict[str, Callable] = {
    "figure03": run_figure03,
    "table03": run_table03,
    "figure11": run_figure11,
    "table04": run_table04,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "models": run_model_figures,
    "summary": run_summary,
    "knee": run_overload_knee,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On Predictive Modeling for Optimizing Transaction "
            "Execution in Parallel OLTP Systems' (Pavlo et al., VLDB 2011)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-benchmarks", help="list the OLTP benchmarks available for training"
    )

    train = subparsers.add_parser(
        "train", help="record a trace and build Markov models + parameter mappings"
    )
    train.add_argument("benchmark", choices=available_benchmarks())
    train.add_argument("--partitions", type=int, default=8)
    train.add_argument("--trace", type=int, default=2000, help="transactions to record")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--output", default=None, help="directory to write the artifact bundle to"
    )

    inspect = subparsers.add_parser(
        "inspect", help="describe a previously saved artifact bundle"
    )
    inspect.add_argument("artifacts", help="directory written by 'repro train --output'")

    simulate = subparsers.add_parser(
        "simulate", help="run the cluster simulator for one configuration"
    )
    simulate.add_argument("benchmark", choices=available_benchmarks())
    simulate.add_argument("--strategy", choices=STRATEGIES, default="houdini")
    simulate.add_argument("--partitions", type=int, default=8)
    simulate.add_argument("--trace", type=int, default=2000)
    simulate.add_argument("--transactions", type=int, default=2000)
    simulate.add_argument("--threshold", type=float, default=None,
                          help="confidence-coefficient threshold (Houdini strategies)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--workload", default=None, metavar="TRACE_JSONL",
        help="replay a recorded workload trace instead of the closed loop",
    )
    simulate.add_argument(
        "--speedup", type=float, default=1.0,
        help="replay time rescale for --workload (2.0 = twice as fast)",
    )
    simulate.add_argument(
        "--backend", choices=("inline", "sharded"), default="inline",
        help="execution backend: 'sharded' runs partition workers over OS "
        "processes (same simulated results, higher wall-clock throughput)",
    )
    simulate.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for --backend sharded",
    )
    simulate.add_argument(
        "--json", action="store_true",
        help="print the full SimulationResult as a stable JSON document",
    )

    record = subparsers.add_parser(
        "record",
        help="record a timestamped workload trace (replayable via simulate --workload)",
    )
    record.add_argument("benchmark", choices=available_benchmarks())
    record.add_argument("--partitions", type=int, default=8)
    record.add_argument("--transactions", type=int, default=1000,
                        help="transactions to record")
    record.add_argument("--rate", type=float, default=1000.0,
                        help="arrival rate (txn/s) stamped onto the trace")
    record.add_argument("--arrival", choices=("poisson", "uniform", "bursty"),
                        default="poisson")
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--output", required=True,
                        help="JSON-lines file to write the trace to")

    serve = subparsers.add_parser(
        "serve",
        help="open a long-lived cluster session and read commands from stdin",
    )
    serve.add_argument("benchmark", choices=available_benchmarks())
    serve.add_argument("--strategy", choices=STRATEGIES, default="houdini")
    serve.add_argument("--partitions", type=int, default=8)
    serve.add_argument("--trace", type=int, default=2000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--backend", choices=("inline", "sharded"), default="inline",
                       help="execution backend (see 'simulate --backend')")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes for --backend sharded")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--scale", choices=("small", "medium", "large", "paper"), default="small"
    )

    knee = subparsers.add_parser(
        "knee",
        help="binary-search the open-loop arrival rate to the latency knee "
        "(cohort clients, streaming metrics)",
    )
    knee.add_argument("benchmark", nargs="?", default="tatp",
                      choices=available_benchmarks())
    knee.add_argument(
        "--scale", choices=("small", "medium", "large", "paper"), default="small"
    )
    knee.add_argument(
        "--users", type=int, default=None,
        help="simulated client population (default: 100k small, 1M otherwise)",
    )
    knee.add_argument(
        "--probe-seconds", type=float, default=2.0,
        help="simulated seconds per rate probe",
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="run the AST-based invariant analyzer (determinism, version-"
        "bump, cache-invalidation, cross-process, serialization rules)",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories to scan (default: the installed repro package)",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries",
    )
    analyze.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    analyze.add_argument(
        "--rule", action="append", default=None, metavar="ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    analyze.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of grandfathered findings "
        "(default: src/repro/analysis/baseline.json)",
    )
    analyze.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to grandfather the current findings",
    )

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_list_benchmarks(_args: argparse.Namespace) -> int:
    for name in available_benchmarks():
        print(name)
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    trained = pipeline.train(
        args.benchmark,
        args.partitions,
        trace_transactions=args.trace,
        seed=args.seed,
    )
    bundle = ArtifactBundle.from_trained(trained)
    print(bundle.describe())
    for name in sorted(trained.models):
        model = trained.models[name]
        print(f"  {name}: {model.vertex_count()} states, {model.edge_count()} edges")
    if args.output:
        target = bundle.save(args.output)
        print(f"artifacts written to {target}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    bundle = ArtifactBundle.load(args.artifacts)
    print(bundle.describe())
    for name in sorted(bundle.models):
        model = bundle.models[name]
        print(f"  {name}: {model.vertex_count()} states, {model.edge_count()} edges")
    return 0


def _build_spec(args: argparse.Namespace) -> ClusterSpec:
    houdini_config = None
    if getattr(args, "threshold", None) is not None and args.strategy.startswith("houdini"):
        from .houdini import HoudiniConfig

        houdini_config = HoudiniConfig(confidence_threshold=args.threshold)
    workload = None
    if getattr(args, "workload", None) is not None:
        from .workload import TraceReplaySource

        workload = TraceReplaySource(
            path=args.workload, speedup=getattr(args, "speedup", 1.0)
        )
    return ClusterSpec(
        benchmark=args.benchmark,
        num_partitions=args.partitions,
        trace_transactions=args.trace,
        seed=args.seed,
        strategy=args.strategy,
        houdini=houdini_config,
        workload=workload,
        execution_backend=getattr(args, "backend", "inline"),
        num_workers=getattr(args, "workers", 2),
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    session = Cluster.open(_build_spec(args))
    session.run_for(txns=args.transactions)
    result = session.close()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        for key, value in result.summary_row().items():
            print(f"{key}: {value}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .session import build_benchmark
    from .workload import TraceRecorder, arrival_times

    instance = build_benchmark(args.benchmark, args.partitions, seed=args.seed)
    recorder = TraceRecorder(
        instance.catalog,
        instance.database,
        base_partition_chooser=instance.generator.home_partition,
    )
    trace = recorder.record(
        instance.generator.generate(args.transactions),
        arrival_times_ms=arrival_times(
            args.arrival, args.rate, args.transactions, seed=args.seed
        ),
    )
    trace.save(args.output)
    span_ms = trace[-1].at_ms if len(trace) else 0.0
    print(
        f"recorded {len(trace)} {args.benchmark} transactions "
        f"({args.arrival} arrivals at {args.rate:g} txn/s, "
        f"{span_ms / 1000.0:.2f}s span) to {args.output}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """REPL over a long-lived :class:`~repro.session.ClusterSession`.

    Reads one command per stdin line; unknown commands print usage and keep
    the session alive, so the loop is safe to drive from scripts and CI.
    """
    spec = _build_spec(args)
    print(f"opening {spec.benchmark}/{spec.strategy} with {spec.num_partitions} "
          f"partitions (trace {spec.trace_transactions} txns)...")
    session = Cluster.open(spec)
    print("session open; commands: run N | runfor SECONDS | policy NAME|none"
          " | admission k=v[,k=v]|off | caching on|off | threshold X"
          " | workload closed|open RATE [poisson|uniform|bursty]|trace PATH [SPEEDUP]"
          " | selftune on [k=v,...]|off|status | drift"
          " | tenancy set LABEL k=v[,k=v]|drop LABEL|shared N|shed on|off|status|off"
          " | slo | inflight | metrics [--json] | spec | drain | quit")
    interactive = sys.stdin.isatty()
    while True:
        if interactive:
            print("> ", end="", flush=True)
        line = sys.stdin.readline()
        if not line:
            break
        parts = line.strip().split()
        if not parts:
            continue
        command, rest = parts[0].lower(), parts[1:]
        try:
            if command in ("quit", "exit"):
                break
            elif command == "run":
                count = int(rest[0]) if rest else 100
                result = session.run_for(txns=count)
                print(f"ran {count} txns; t={session.now_ms:.1f}ms "
                      f"throughput={result.throughput_txn_per_sec:.1f} txn/s")
            elif command == "policy":
                name = rest[0] if rest else "none"
                session.reconfigure(policy=None if name == "none" else name)
                print(f"policy -> {session.simulator.scheduler.policy.name}")
            elif command == "admission":
                if rest and rest[0] == "off":
                    session.reconfigure(admission=None)
                    print("admission -> off")
                else:
                    fields = {}
                    # Accept "k=v,k=v" with or without spaces after commas.
                    for pair in " ".join(rest).replace(",", " ").split():
                        key, _, value = pair.partition("=")
                        fields[key] = float(value) if "." in value else int(value)
                    session.reconfigure(admission=fields)
                    print(f"admission -> {fields}")
            elif command == "caching":
                token = rest[0].lower() if rest else ""
                if token not in ("on", "off"):
                    print("error: caching takes 'on' or 'off'")
                    continue
                session.reconfigure(estimate_caching=token == "on")
                print(f"estimate caching -> {token}")
            elif command == "threshold":
                session.reconfigure(confidence_threshold=float(rest[0]))
                print(f"confidence threshold -> {float(rest[0])}")
            elif command == "runfor":
                seconds = float(rest[0]) if rest else 1.0
                result = session.run_for(sim_seconds=seconds)
                print(f"ran {seconds:g}s of simulated time; t={session.now_ms:.1f}ms "
                      f"committed={result.committed} in_flight={len(session.in_flight())}")
            elif command == "workload":
                from .workload import ClosedLoopSource, OpenLoopSource, TraceReplaySource

                shape = rest[0].lower() if rest else ""
                if shape == "closed":
                    session.reconfigure(workload=ClosedLoopSource(
                        spec.clients_per_partition, spec.client_think_time_ms))
                elif shape == "open":
                    rate = float(rest[1])
                    arrival = rest[2] if len(rest) > 2 else "poisson"
                    session.reconfigure(workload=OpenLoopSource(rate, arrival))
                elif shape == "trace":
                    speedup = float(rest[2]) if len(rest) > 2 else 1.0
                    session.reconfigure(
                        workload=TraceReplaySource(path=rest[1], speedup=speedup))
                else:
                    print("error: workload takes 'closed', 'open RATE [KIND]' "
                          "or 'trace PATH [SPEEDUP]'")
                    continue
                print(f"workload -> {session.workload.to_dict()['kind']}")
            elif command == "selftune":
                token = rest[0].lower() if rest else "status"
                if token == "off":
                    session.reconfigure(selftune=None)
                    print("selftune -> off")
                elif token == "on":
                    fields = {}
                    for pair in " ".join(rest[1:]).replace(",", " ").split():
                        key, _, value = pair.partition("=")
                        if value in ("true", "false"):
                            fields[key] = value == "true"
                        else:
                            fields[key] = float(value) if "." in value else int(value)
                    session.reconfigure(selftune=fields)
                    print(f"selftune -> on {fields or '(defaults)'}")
                elif token == "status":
                    if session.selftune is None:
                        print("selftune: off")
                    else:
                        stats = session.selftune.stats
                        print(f"selftune: on drifts={stats.drifts_detected} "
                              f"retrains={stats.retrains_completed}/"
                              f"{stats.retrains_started} swaps={stats.swaps}")
                else:
                    print("error: selftune takes 'on [k=v,...]', 'off' or 'status'")
            elif command == "drift":
                if session.selftune is None:
                    print("selftune: off (enable with 'selftune on')")
                else:
                    snapshot = session.selftune.snapshot()
                    print(f"drifts={snapshot['drifts_detected']} "
                          f"retrains={snapshot['retrains_completed']}/"
                          f"{snapshot['retrains_started']} swaps={snapshot['swaps']}")
                    for name, entry in snapshot["procedures"].items():
                        verdict = entry["last_verdict"]
                        if verdict is None:
                            print(f"  {name}: observed={entry['observations']} "
                                  f"(no check yet)")
                            continue
                        flag = "DRIFTED" if verdict["drifted"] else "ok"
                        pending = " retraining" if entry["retrain_pending"] else ""
                        print(f"  {name}: {flag} divergence={verdict['divergence']:.3f} "
                              f"accuracy={verdict['accuracy']:.3f} "
                              f"swaps={entry['swaps']}{pending}")
            elif command == "tenancy":
                from .tenancy import TenancyConfig

                token = rest[0].lower() if rest else "status"
                manager = session.simulator.tenancy
                base = (
                    manager.config.to_dict()
                    if manager is not None else TenancyConfig().to_dict()
                )
                if token == "off":
                    session.reconfigure(tenancy=None)
                    print("tenancy -> off")
                elif token == "status":
                    if manager is None:
                        print("tenancy: off (enable with 'tenancy set LABEL k=v')")
                    else:
                        print(json.dumps(
                            manager.snapshot(session.simulator.scheduler), indent=2
                        ))
                elif token == "set" and len(rest) >= 2:
                    label = rest[1]
                    alias = {"slo": "slo_latency_ms", "quantile": "slo_quantile"}
                    policy = dict(base["tenants"].get(label, {}))
                    for pair in " ".join(rest[2:]).replace(",", " ").split():
                        key, _, value = pair.partition("=")
                        key = alias.get(key, key)
                        if value == "none":
                            policy[key] = None
                        elif key == "quota":
                            policy[key] = int(value)
                        else:
                            policy[key] = float(value)
                    base["tenants"][label] = policy
                    session.reconfigure(tenancy=base)
                    print(f"tenancy[{label}] -> {policy}")
                elif token == "drop" and len(rest) >= 2:
                    if base["tenants"].pop(rest[1], None) is None:
                        print(f"error: unknown tenant {rest[1]!r}")
                        continue
                    session.reconfigure(tenancy=base)
                    print(f"tenancy[{rest[1]}] dropped")
                elif token == "shared" and len(rest) >= 2:
                    base["shared_quota"] = int(rest[1])
                    session.reconfigure(tenancy=base)
                    print(f"tenancy shared_quota -> {base['shared_quota']}")
                elif token == "shed" and len(rest) >= 2:
                    base["shed"] = rest[1].lower() == "on"
                    if len(rest) > 2:
                        base["shed_headroom"] = float(rest[2])
                    session.reconfigure(tenancy=base)
                    print(f"tenancy shed -> {'on' if base['shed'] else 'off'} "
                          f"(headroom {base['shed_headroom']:g})")
                else:
                    print("error: tenancy takes 'set LABEL k=v[,k=v]' "
                          "(weight/quota/slo/quantile), 'drop LABEL', "
                          "'shared N', 'shed on|off [HEADROOM]', 'status' or 'off'")
            elif command == "slo":
                manager = session.simulator.tenancy
                if manager is None:
                    print("tenancy: off (enable with 'tenancy set LABEL slo=MS')")
                else:
                    snapshot = manager.snapshot(session.simulator.scheduler)
                    if not snapshot["slo"]:
                        print("no SLO-bearing tenants (set one with "
                              "'tenancy set LABEL slo=MS')")
                    for label, entry in snapshot["slo"].items():
                        shed = snapshot["arrivals"].get(label, {})
                        print(f"  {label}: {'MET' if entry['met'] else 'MISSED'} "
                              f"p{entry['quantile'] * 100:g}<="
                              f"{entry['target_ms']:g}ms "
                              f"compliance={entry['compliance']:.3f} "
                              f"burn={entry['burn_rate']:.2f} "
                              f"completed={entry['completed']} "
                              f"shed_rate={shed.get('shed_rate', 0.0):.3f}")
            elif command == "inflight":
                entries = session.in_flight()
                print(f"{len(entries)} transaction(s) in flight")
                for entry in entries[:20]:
                    tenant = f" tenant={entry.tenant}" if entry.tenant else ""
                    print(f"  [{entry.state}] {entry.procedure}{tenant} "
                          f"txn={entry.txn_id} attempt={entry.attempt} "
                          f"partitions={list(entry.partitions)} "
                          f"remaining={entry.predicted_remaining_ms:.3f}ms")
                if len(entries) > 20:
                    print(f"  ... and {len(entries) - 20} more")
            elif command == "metrics":
                snapshot = session.snapshot_metrics()
                if rest and rest[0] == "--json":
                    print(json.dumps(snapshot.to_dict()))
                else:
                    for key, value in snapshot.summary_row().items():
                        print(f"{key}: {value}")
                    for name, entry in snapshot.maintenance.items():
                        print(f"maintenance[{name}]: "
                              f"transitions={entry['transitions_observed']} "
                              f"checks={entry['accuracy_checks']} "
                              f"recomputations={entry['recomputations']} "
                              f"accuracy={entry['last_accuracy']:.3f}")
            elif command == "spec":
                print(json.dumps(session.spec.to_dict(), default=str, indent=2))
            elif command == "drain":
                result = session.drain()
                print(f"drained; {result.total_transactions} txns total")
            else:
                print(f"unknown command {command!r}; commands: run, runfor, policy, "
                      f"admission, caching, threshold, workload, selftune, drift, "
                      f"tenancy, slo, inflight, metrics, spec, drain, quit")
        except (ReproError, ValueError, IndexError) as error:
            print(f"error: {error}")
    final = session.close()
    print(f"session closed after {final.total_transactions} transactions "
          f"({final.throughput_txn_per_sec:.1f} txn/s)")
    return 0


_SCALES = {
    "small": ExperimentScale.small,
    "medium": ExperimentScale.medium,
    "large": ExperimentScale.large,
    "paper": ExperimentScale.paper,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = _SCALES[args.scale]()
    runner = EXPERIMENTS[args.id]
    result = runner(scale)
    print(result.format())
    return 0


def _cmd_knee(args: argparse.Namespace) -> int:
    result = run_overload_knee(
        _SCALES[args.scale](),
        args.benchmark,
        users=args.users,
        probe_seconds=args.probe_seconds,
    )
    print(result.format())
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import (
        AnalysisError,
        load_baseline,
        run_analysis,
        rules_by_id,
        save_baseline,
    )

    package_root = Path(__file__).resolve().parent
    baseline_path = (
        Path(args.baseline) if args.baseline
        else package_root / "analysis" / "baseline.json"
    )
    try:
        rules = rules_by_id(args.rule)
        baseline = load_baseline(baseline_path)
        paths = [Path(p) for p in args.paths] or [package_root]
        report = run_analysis(paths, rules, baseline=baseline)
    except AnalysisError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return 2
    if args.update_baseline:
        save_baseline(baseline_path, report.findings + report.baselined)
        print(
            f"baseline updated: {baseline_path} now grandfathers "
            f"{len(report.findings) + len(report.baselined)} finding(s)"
        )
        return 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        for entry in report.stale_baseline:
            print(
                f"stale baseline entry: {entry.path}: [{entry.rule}] "
                f"{entry.symbol}: {entry.message}"
            )
        summary = (
            f"{report.files_scanned} file(s), {len(report.rules_run)} rule(s): "
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{len(report.baselined)} baselined, "
            f"{len(report.stale_baseline)} stale baseline entr(ies)"
        )
        print(summary)
    return 0 if report.clean(strict=args.strict) else 1


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "list-benchmarks": _cmd_list_benchmarks,
    "train": _cmd_train,
    "inspect": _cmd_inspect,
    "simulate": _cmd_simulate,
    "record": _cmd_record,
    "serve": _cmd_serve,
    "experiment": _cmd_experiment,
    "knee": _cmd_knee,
    "analyze": _cmd_analyze,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
