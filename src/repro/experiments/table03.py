"""Table 3 — off-line accuracy of global vs partitioned Markov models.

For each benchmark, models are trained on the first half of the sample
workload trace and evaluated on the second half (the paper uses the first
50,000 of 100,000 transactions for training).  Accuracy is reported per
optimization (OP1-OP4) and in total, for both the single "global" model per
procedure and the Section-5 "partitioned" models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..evaluation import AccuracyEvaluator, AccuracyReport
from ..houdini import Houdini, HoudiniConfig
from ..markov import build_models_from_trace
from ..types import ProcedureRequest
from .common import BENCHMARKS, ExperimentScale, format_table


@dataclass
class Table3Result:
    """Accuracy rows per benchmark per model configuration."""

    scale: ExperimentScale
    reports: dict[str, dict[str, AccuracyReport]] = field(default_factory=dict)

    def cell(self, benchmark: str, configuration: str, metric: str) -> float:
        report = self.reports[benchmark][configuration]
        return getattr(report, metric.lower())

    def format(self) -> str:
        headers = ["Metric", "Models"] + [b.upper() for b in self.reports]
        rows = []
        for metric in ("OP1", "OP2", "OP3", "OP4", "Total"):
            for configuration in ("global", "partitioned"):
                row = [metric, configuration]
                for benchmark in self.reports:
                    report = self.reports[benchmark][configuration]
                    row.append(f"{getattr(report, metric.lower() if metric != 'Total' else 'total'):.1f}%")
                rows.append(row)
        return (
            "Table 3: accuracy of Markov-model optimization estimates\n"
            + format_table(headers, rows)
        )


def run_table03(scale: ExperimentScale | None = None) -> Table3Result:
    """Regenerate Table 3."""
    scale = scale or ExperimentScale.from_env()
    result = Table3Result(scale=scale)
    for benchmark in BENCHMARKS:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        instance = artifacts.benchmark
        training, testing = artifacts.trace.halves()
        testing = type(testing)(testing.records[: scale.accuracy_test_transactions])
        base_chooser = lambda record: instance.generator.home_partition(  # noqa: E731
            ProcedureRequest(record.procedure, record.parameters)
        )
        global_models = build_models_from_trace(
            instance.catalog, training, base_partition_chooser=base_chooser
        )
        config = HoudiniConfig(
            disabled_procedures=instance.bundle.houdini_disabled_procedures
        )
        # Replace the artifacts' models with the training-half models so the
        # partitioned provider is derived from the same data.
        artifacts.models = global_models
        artifacts.trace = training
        partitioned_provider = pipeline.make_partitioned_provider(
            artifacts,
            feature_selection="feedforward" if scale.feedforward_selection else "heuristic",
            houdini_config=config,
        )
        result.reports[benchmark] = {}
        for label, provider in (
            ("global", pipeline.GlobalModelProvider(global_models)),
            ("partitioned", partitioned_provider),
        ):
            houdini = Houdini(
                instance.catalog, provider, artifacts.mappings, config, learning=False
            )
            evaluator = AccuracyEvaluator(houdini, label=f"{benchmark}:{label}")
            result.reports[benchmark][label] = evaluator.evaluate(testing)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table03().format())


if __name__ == "__main__":  # pragma: no cover
    main()
