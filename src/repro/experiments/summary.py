"""Headline numbers of the paper's abstract / conclusion.

The paper summarizes its evaluation with three claims:

* the models select the proper optimizations for ~93% of transactions,
* throughput improves by ~41% on average over the non-Houdini baseline,
* the framework's overhead is ~5% (5.8%) of total transaction time.

``run_summary`` recomputes the reproduction's equivalents from the Table 3,
Figure 12 and Figure 11 experiments so that EXPERIMENTS.md can report
paper-vs-measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from .common import BENCHMARKS, ExperimentScale
from .figure11 import Figure11Result, run_figure11
from .figure12 import Figure12Result, run_figure12
from .table03 import Table3Result, run_table03


@dataclass
class SummaryResult:
    """The three headline numbers, plus the raw results they came from."""

    accuracy_pct: float
    throughput_improvement_pct: float
    estimation_overhead_pct: float
    table03: Table3Result
    figure12: Figure12Result
    figure11: Figure11Result

    def format(self) -> str:
        return (
            "Headline reproduction summary\n"
            "-----------------------------\n"
            f"Correct optimization selection: {self.accuracy_pct:.1f}% "
            f"(paper: ~93%)\n"
            f"Average throughput improvement over baseline: "
            f"{self.throughput_improvement_pct:.1f}% (paper: ~41%)\n"
            f"Average estimation overhead: {self.estimation_overhead_pct:.1f}% "
            f"of transaction time (paper: ~5.8%)"
        )


def run_summary(scale: ExperimentScale | None = None) -> SummaryResult:
    """Recompute the abstract's three headline numbers."""
    scale = scale or ExperimentScale.from_env()
    table03 = run_table03(scale)
    figure12 = run_figure12(scale)
    figure11 = run_figure11(scale)

    accuracies = [
        table03.reports[benchmark]["partitioned"].total
        for benchmark in table03.reports
    ]
    accuracy = sum(accuracies) / len(accuracies) if accuracies else 0.0

    improvements = [
        figure12.improvement_over_baseline(benchmark) for benchmark in BENCHMARKS
        if benchmark in figure12.throughput
    ]
    improvement = sum(improvements) / len(improvements) if improvements else 0.0

    return SummaryResult(
        accuracy_pct=accuracy,
        throughput_improvement_pct=improvement,
        estimation_overhead_pct=figure11.average_estimation_share,
        table03=table03,
        figure12=figure12,
        figure11=figure11,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_summary().format())


if __name__ == "__main__":  # pragma: no cover
    main()
