"""Figure 11 — relative time per transaction spent in each processing stage.

Runs every benchmark under the Houdini strategy (partitioned models, as in
the paper) on the accuracy-experiment cluster size and reports, per stored
procedure, the percentage of transaction time spent (1) estimating
optimizations, (2) executing, (3) planning, (4) coordinating execution and
(5) on other setup work.  The paper's headline from this figure is that the
estimation overhead averages ~5.8% of total transaction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from .common import BENCHMARKS, ExperimentScale, format_table, run_session

CATEGORIES = ("estimation", "execution", "planning", "coordination", "other")


@dataclass
class Figure11Result:
    """Per-procedure time breakdown percentages."""

    scale: ExperimentScale
    #: benchmark -> procedure -> category -> percentage
    breakdowns: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: benchmark -> overall estimation share (percent)
    estimation_share: dict[str, float] = field(default_factory=dict)

    @property
    def average_estimation_share(self) -> float:
        if not self.estimation_share:
            return 0.0
        return sum(self.estimation_share.values()) / len(self.estimation_share)

    def format(self) -> str:
        headers = ["Benchmark", "Procedure"] + [c.capitalize() for c in CATEGORIES]
        rows = []
        for benchmark, procedures in self.breakdowns.items():
            for procedure in sorted(procedures):
                shares = procedures[procedure]
                rows.append(
                    [benchmark, procedure]
                    + [f"{shares.get(category, 0.0):.1f}%" for category in CATEGORIES]
                )
        footer = (
            f"\nAverage estimation share: {self.average_estimation_share:.1f}% "
            f"(paper reports ~5.8%)"
        )
        return (
            "Figure 11: share of transaction time per processing stage\n"
            + format_table(headers, rows)
            + footer
        )


def run_figure11(scale: ExperimentScale | None = None) -> Figure11Result:
    """Regenerate Figure 11."""
    scale = scale or ExperimentScale.from_env()
    result = Figure11Result(scale=scale)
    for benchmark in BENCHMARKS:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini-partitioned", artifacts, seed=scale.seed)
        simulation = run_session(
            artifacts, strategy, transactions=scale.simulated_transactions
        )
        result.breakdowns[benchmark] = {
            procedure: breakdown.percentages()
            for procedure, breakdown in simulation.breakdowns.items()
        }
        result.estimation_share[benchmark] = simulation.overall_estimation_share()
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure11().format())


if __name__ == "__main__":  # pragma: no cover
    main()
