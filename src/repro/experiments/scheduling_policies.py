"""Prediction-aware scheduling in the event-driven runtime (paper §8).

The paper's future-work section proposes annotating queued transactions with
their predicted execution properties and scheduling them intelligently.
This experiment runs the simulator — the same event-driven runtime the
throughput figures use — under each registered queue policy, and once more
with admission control, on the SmallBank mix (whose 40% two-customer
transactions give the scheduler real multi-partition decisions to make).

Two traffic shapes are exercised:

* the paper's **closed loop** (think-time clients; offered load equals
  service rate, so queues stay shallow), and
* an **open-loop overload** (:class:`~repro.workload.sources.OpenLoopSource`
  arrivals at ~2x the closed-loop service rate), where queues actually grow
  and the policies differ — including in how badly they starve long
  transactions, which the per-class queue-wait metric
  (``scheduler_stats.queue_wait_by_class``) makes visible as the
  "max wait" column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..scheduling import AdmissionLimits
from ..scheduling.policies import available_policies
from ..session import Cluster, ClusterSpec
from ..workload import OpenLoopSource
from .common import ExperimentScale, format_table, run_session


@dataclass
class SchedulingPoliciesResult:
    """Throughput and queue behaviour per scheduling configuration."""

    scale: ExperimentScale
    benchmark: str = "smallbank"
    #: configuration name -> summary metrics.
    rows: dict[str, dict] = field(default_factory=dict)

    def format(self) -> str:
        headers = [
            "configuration", "txn/s", "avg latency (ms)", "max wait (ms)",
            "reordered", "deferred", "rejected",
        ]
        table_rows = []
        for name, metrics in self.rows.items():
            table_rows.append([
                name,
                round(metrics["throughput"], 1),
                round(metrics["avg_latency_ms"], 3),
                round(metrics["max_queue_wait_ms"], 3),
                metrics["reordered"],
                metrics["deferred"],
                metrics["rejected"],
            ])
        return (
            f"Scheduling policies under the event-driven runtime ({self.benchmark})\n"
            + format_table(headers, table_rows)
        )


def _row(simulation) -> dict:
    return {
        "throughput": simulation.throughput_txn_per_sec,
        "avg_latency_ms": simulation.average_latency_ms,
        "max_queue_wait_ms": simulation.scheduler_stats.max_queue_wait_ms
        if simulation.scheduler_stats else 0.0,
        "reordered": simulation.scheduler_stats.reordered
        if simulation.scheduler_stats else 0,
        "deferred": simulation.admission_stats.deferred
        if simulation.admission_stats else 0,
        "rejected": simulation.rejected,
    }


def run_scheduling_policies(
    scale: ExperimentScale | None = None, benchmark: str = "smallbank"
) -> SchedulingPoliciesResult:
    """Run every queue policy (plus one admission configuration) once."""
    scale = scale or ExperimentScale.from_env()
    result = SchedulingPoliciesResult(scale=scale, benchmark=benchmark)
    configurations: list[tuple[str, str | None, AdmissionLimits | None]] = [
        (name, name, None) for name in available_policies()
    ]
    configurations.append(
        (
            "fcfs+admission",
            None,
            AdmissionLimits(max_in_flight=2 * scale.accuracy_partitions, max_deferrals=256),
        )
    )
    closed_rate = None
    for label, policy, limits in configurations:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini", artifacts)
        simulation = run_session(
            artifacts,
            strategy,
            transactions=scale.simulated_transactions,
            policy=policy,
            admission_limits=limits,
        )
        result.rows[label] = _row(simulation)
        if closed_rate is None:
            closed_rate = max(1.0, simulation.throughput_txn_per_sec)
    # Open-loop overload: arrivals at ~2x the closed-loop service rate, so
    # the queue actually grows and policy choice (and starvation) matters.
    for label, policy, limits in configurations:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini", artifacts)
        spec = ClusterSpec(
            benchmark=benchmark,
            num_partitions=scale.accuracy_partitions,
            policy=policy,
            admission=limits,
            workload=OpenLoopSource(2.0 * closed_rate, "poisson", seed=scale.seed),
        )
        session = Cluster.open(spec, artifacts=artifacts, strategy=strategy)
        session.run_for(txns=scale.simulated_transactions)
        result.rows[f"open-loop 2x {label}"] = _row(session.close())
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_scheduling_policies().format())


if __name__ == "__main__":  # pragma: no cover
    main()
