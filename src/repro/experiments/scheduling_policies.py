"""Prediction-aware scheduling in the event-driven runtime (paper §8).

The paper's future-work section proposes annotating queued transactions with
their predicted execution properties and scheduling them intelligently.
This experiment runs the simulator — the same event-driven runtime the
throughput figures use — under each registered queue policy, and once more
with admission control, on the SmallBank mix (whose 40% two-customer
transactions give the scheduler real multi-partition decisions to make).

Two traffic shapes are exercised:

* the paper's **closed loop** (think-time clients; offered load equals
  service rate, so queues stay shallow), and
* an **open-loop overload** (:class:`~repro.workload.sources.OpenLoopSource`
  arrivals at ~2x the closed-loop service rate), where queues actually grow
  and the policies differ — including in how badly they starve long
  transactions, which the per-class queue-wait metric
  (``scheduler_stats.queue_wait_by_class``) makes visible as the
  "max wait" column.

The same 2x overload is then rerun as a **two-tenant** stream (a
premium tenant at 0.5x with a tight SLO plus a bulk tenant carrying the
remaining 1.5x with a loose one), once through the shared scheduler and
once under a :class:`~repro.tenancy.TenancyConfig` (4:1 weights,
predicted-work shedding).  The per-tenant table shows the mechanism the
tenancy subsystem adds: the shared scheduler lets the bulk tenant's queue
swallow the premium tenant (both p95s blow through the tight SLO), while
weighted fair queuing plus shedding keeps the premium tenant inside its
SLO without shedding any of its traffic — the bulk tenant sheds instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .. import pipeline
from ..scheduling import AdmissionLimits
from ..scheduling.policies import available_policies
from ..session import Cluster, ClusterSpec
from ..tenancy import TenancyConfig, TenantPolicy
from ..workload import OpenLoopSource, TenantSource
from .common import ExperimentScale, format_table, run_session


@dataclass
class SchedulingPoliciesResult:
    """Throughput and queue behaviour per scheduling configuration."""

    scale: ExperimentScale
    benchmark: str = "smallbank"
    #: configuration name -> summary metrics.
    rows: dict[str, dict] = field(default_factory=dict)
    #: "configuration/tenant" -> per-tenant SLO metrics of the two-tenant
    #: 2x-overload comparison (shared scheduler vs tenancy subsystem).
    tenant_rows: dict[str, dict] = field(default_factory=dict)

    def format(self) -> str:
        headers = [
            "configuration", "txn/s", "avg latency (ms)", "max wait (ms)",
            "reordered", "deferred", "rejected",
        ]
        table_rows = []
        for name, metrics in self.rows.items():
            table_rows.append([
                name,
                round(metrics["throughput"], 1),
                round(metrics["avg_latency_ms"], 3),
                round(metrics["max_queue_wait_ms"], 3),
                metrics["reordered"],
                metrics["deferred"],
                metrics["rejected"],
            ])
        text = (
            f"Scheduling policies under the event-driven runtime ({self.benchmark})\n"
            + format_table(headers, table_rows)
        )
        if self.tenant_rows:
            tenant_headers = [
                "configuration", "tenant", "txn/s", "p95 (ms)", "slo (ms)",
                "compliance", "met", "shed rate",
            ]
            tenant_table = []
            for name, metrics in self.tenant_rows.items():
                tenant_table.append([
                    name,
                    metrics["tenant"],
                    round(metrics["throughput"], 1),
                    round(metrics["p95_latency_ms"], 1),
                    round(metrics["slo_ms"], 1),
                    round(metrics["compliance"], 3),
                    "yes" if metrics["met"] else "NO",
                    round(metrics["shed_rate"], 3),
                ])
            text += (
                "\n\nTwo tenants at 2x overload: shared scheduler vs "
                "tenancy subsystem\n"
                + format_table(tenant_headers, tenant_table)
            )
        return text


def _p95(latencies_ms: list[float]) -> float:
    if not latencies_ms:
        return 0.0
    ordered = sorted(latencies_ms)
    return ordered[max(0, min(len(ordered) - 1, math.ceil(0.95 * len(ordered)) - 1))]


def _tenant_slo_rows(simulation, label: str, slos: dict[str, float], out: dict) -> None:
    """Per-tenant SLO rows for one run; works with or without tenancy."""
    snapshot = simulation.tenancy or {}
    slo_snapshot = snapshot.get("slo", {})
    arrivals = snapshot.get("arrivals", {})
    for tenant in sorted(simulation.tenants):
        breakdown = simulation.tenants[tenant]
        slo_ms = slos[tenant]
        if tenant in slo_snapshot:
            entry = slo_snapshot[tenant]
            compliance, met = entry["compliance"], entry["met"]
        else:  # shared baseline: judge raw latencies against the same SLO
            latencies = breakdown.latencies_ms
            within = sum(1 for value in latencies if value <= slo_ms)
            compliance = within / len(latencies) if latencies else 1.0
            met = compliance >= 0.95
        out[f"{label}/{tenant}"] = {
            "tenant": tenant,
            "throughput": breakdown.throughput_txn_per_sec,
            "p95_latency_ms": _p95(breakdown.latencies_ms),
            "slo_ms": slo_ms,
            "compliance": compliance,
            "met": met,
            "shed_rate": arrivals.get(tenant, {}).get("shed_rate", 0.0),
        }


def _row(simulation) -> dict:
    return {
        "throughput": simulation.throughput_txn_per_sec,
        "avg_latency_ms": simulation.average_latency_ms,
        "max_queue_wait_ms": simulation.scheduler_stats.max_queue_wait_ms
        if simulation.scheduler_stats else 0.0,
        "reordered": simulation.scheduler_stats.reordered
        if simulation.scheduler_stats else 0,
        "deferred": simulation.admission_stats.deferred
        if simulation.admission_stats else 0,
        "rejected": simulation.rejected,
    }


def run_scheduling_policies(
    scale: ExperimentScale | None = None, benchmark: str = "smallbank"
) -> SchedulingPoliciesResult:
    """Run every queue policy (plus one admission configuration) once."""
    scale = scale or ExperimentScale.from_env()
    result = SchedulingPoliciesResult(scale=scale, benchmark=benchmark)
    configurations: list[tuple[str, str | None, AdmissionLimits | None]] = [
        (name, name, None) for name in available_policies()
    ]
    configurations.append(
        (
            "fcfs+admission",
            None,
            AdmissionLimits(max_in_flight=2 * scale.accuracy_partitions, max_deferrals=256),
        )
    )
    closed_rate = None
    for label, policy, limits in configurations:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini", artifacts)
        simulation = run_session(
            artifacts,
            strategy,
            transactions=scale.simulated_transactions,
            policy=policy,
            admission_limits=limits,
        )
        result.rows[label] = _row(simulation)
        if closed_rate is None:
            closed_rate = max(1.0, simulation.throughput_txn_per_sec)
    # Open-loop overload: arrivals at ~2x the closed-loop service rate, so
    # the queue actually grows and policy choice (and starvation) matters.
    for label, policy, limits in configurations:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini", artifacts)
        spec = ClusterSpec(
            benchmark=benchmark,
            num_partitions=scale.accuracy_partitions,
            policy=policy,
            admission=limits,
            workload=OpenLoopSource(2.0 * closed_rate, "poisson", seed=scale.seed),
        )
        session = Cluster.open(spec, artifacts=artifacts, strategy=strategy)
        session.run_for(txns=scale.simulated_transactions)
        result.rows[f"open-loop 2x {label}"] = _row(session.close())
    # Two tenants sharing the same 2x overload: "gold" offers 0.5x with a
    # tight SLO, "free" the remaining 1.5x with a loose one.  Once through
    # the shared FCFS scheduler, once under the tenancy subsystem (4:1
    # weights, predicted-work shedding).  SLOs are set relative to the
    # measured closed-loop latency so the comparison is scale-independent:
    # tight enough that the shared queue blows through them, loose enough
    # that an isolated gold stream sits comfortably inside.
    base_latency = max(
        1.0, result.rows[next(iter(result.rows))]["avg_latency_ms"]
    )
    slos = {"gold": 3.0 * base_latency, "free": 5.0 * base_latency}
    tenancy = TenancyConfig(
        tenants={
            "gold": TenantPolicy(weight=4.0, slo_latency_ms=slos["gold"]),
            "free": TenantPolicy(weight=1.0, slo_latency_ms=slos["free"]),
        },
        shed=True,
    )
    for label, config in (("2x shared", None), ("2x tenancy", tenancy)):
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini", artifacts)
        spec = ClusterSpec(
            benchmark=benchmark,
            num_partitions=scale.accuracy_partitions,
            workload=TenantSource({
                "gold": OpenLoopSource(0.5 * closed_rate, "poisson", seed=scale.seed),
                "free": OpenLoopSource(1.5 * closed_rate, "poisson", seed=scale.seed),
            }),
            tenancy=config,
        )
        session = Cluster.open(spec, artifacts=artifacts, strategy=strategy)
        session.run_for(txns=scale.simulated_transactions)
        _tenant_slo_rows(session.close(), label, slos, result.tenant_rows)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_scheduling_policies().format())


if __name__ == "__main__":  # pragma: no cover
    main()
