"""Figure 13 — sensitivity to the confidence-coefficient threshold.

Each benchmark is executed under the Houdini strategy on a fixed-size cluster
while the confidence threshold used to prune optimization estimates (§4.3)
sweeps from 0 to 1.  Expected shape (paper Fig. 13):

* at threshold 0 every partition is considered "needed", so every transaction
  runs as a distributed transaction and throughput collapses;
* TATP plateaus as soon as the threshold exceeds ``1/num_partitions``;
* TPC-C plateaus around 0.3 and declines slightly near 1.0 because undo
  logging stops being disabled;
* AuctionMark steps up as the threshold crosses the branch probabilities of
  its conditional procedures (~0.33 and ~0.66).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..houdini import HoudiniConfig
from .common import BENCHMARKS, ExperimentScale, format_table, run_session


@dataclass
class Figure13Result:
    """Throughput per benchmark per confidence threshold."""

    scale: ExperimentScale
    #: benchmark -> threshold -> throughput (txn/s)
    throughput: dict[str, dict[float, float]] = field(default_factory=dict)

    def series(self, benchmark: str) -> list[tuple[float, float]]:
        return sorted(self.throughput.get(benchmark, {}).items())

    def format(self) -> str:
        thresholds = sorted({t for series in self.throughput.values() for t in series})
        headers = ["Threshold"] + [b.upper() for b in self.throughput]
        rows = []
        for threshold in thresholds:
            row = [f"{threshold:.2f}"]
            for benchmark in self.throughput:
                row.append(round(self.throughput[benchmark].get(threshold, 0.0), 1))
            rows.append(row)
        return (
            "Figure 13: throughput vs confidence-coefficient threshold\n"
            + format_table(headers, rows)
        )


def run_figure13(
    scale: ExperimentScale | None = None,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> Figure13Result:
    """Regenerate Figure 13."""
    scale = scale or ExperimentScale.from_env()
    result = Figure13Result(scale=scale)
    for benchmark in benchmarks:
        result.throughput[benchmark] = {}
        for threshold in scale.thresholds:
            artifacts = pipeline.train(
                benchmark,
                scale.accuracy_partitions,
                trace_transactions=scale.trace_transactions,
                seed=scale.seed,
            )
            config = HoudiniConfig(
                confidence_threshold=threshold,
                disabled_procedures=artifacts.benchmark.bundle.houdini_disabled_procedures,
            )
            houdini = pipeline.make_houdini(artifacts, config=config)
            strategy = pipeline.make_strategy("houdini", artifacts, houdini=houdini)
            simulation = run_session(
                artifacts, strategy, transactions=scale.simulated_transactions
            )
            result.throughput[benchmark][threshold] = simulation.throughput_txn_per_sec
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure13().format())


if __name__ == "__main__":  # pragma: no cover
    main()
