"""Overload knee finder: binary-search the open-loop rate to the latency knee.

The paper evaluates throughput under a *closed* loop, where offered load can
never exceed service rate.  Real front-ends are open-loop: a population of
clients submits at its own pace, and past a critical arrival rate — the
*knee* — queues grow without bound and tail latency departs from the flat
region.  This experiment locates that knee for a benchmark by driving the
simulator with a :class:`~repro.workload.sources.ClientCohortSource` — one
cohort standing in for the whole client population, so a million users cost
O(1) workload state — and probing arrival rates in three phases:

1. **Baseline** — a probe well below the service rate (estimated from one
   closed-loop run) establishes the uncongested p95 latency.
2. **Doubling** — the rate doubles from half the service estimate until a
   probe goes unstable (p95 above ``knee_factor`` x baseline, or committed
   throughput falling below ``sustain_fraction`` of the offered rate).
3. **Bisection** — a fixed number of halvings between the last stable and
   first unstable rates pins the knee.

Every probe is a fresh session over the same trained artifacts (so probes
are independent and deterministic) running with ``metrics_mode="streaming"``
— the O(1)-memory sketches of :mod:`repro.sim.sketch` — and is *abandoned*
rather than drained: draining an overloaded probe would execute the entire
backlog, which is precisely the work the knee is meant to avoid.  Peak RSS
is recorded so the scale-mode benchmark can assert bounded memory at
>= 1,000,000 simulated users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..session import Cluster, ClusterSpec
from ..workload import ClientCohortSource, Cohort
from .common import ExperimentScale, format_table

#: A probe is unstable once its p95 exceeds this multiple of the baseline.
KNEE_FACTOR = 4.0
#: ... or once committed throughput falls below this fraction of the rate.
SUSTAIN_FRACTION = 0.8
#: Bisection iterations between the last stable and first unstable rates.
BISECTION_STEPS = 5
#: Safety cap on the doubling phase.
MAX_DOUBLINGS = 8

#: Simulated client population per scale preset (>= 1M beyond small).
USERS_BY_SCALE = {"small": 100_000}
DEFAULT_USERS = 1_000_000


@dataclass
class OverloadKneeResult:
    """The located knee plus every probe that contributed to it."""

    scale: ExperimentScale
    benchmark: str
    users: int
    #: Closed-loop service-rate estimate (txn/s) the search anchored on.
    service_rate: float = 0.0
    #: Offered rate (txn/s) and p95 (ms) of the uncongested baseline probe.
    base_rate: float = 0.0
    base_p95_ms: float = 0.0
    #: The knee: highest probed rate that stayed stable.
    knee_rate: float = 0.0
    p95_at_knee_ms: float = 0.0
    #: Every probe, in execution order.
    probes: list[dict] = field(default_factory=list)
    #: Peak resident set size (MiB) observed over the whole search.
    peak_rss_mib: float = 0.0

    def format(self) -> str:
        headers = ["offered txn/s", "committed txn/s", "p95 (ms)", "phase", "stable"]
        rows = [
            [
                round(p["rate"], 1),
                round(p["throughput"], 1),
                round(p["p95_ms"], 3),
                p["phase"],
                "yes" if p["stable"] else "no",
            ]
            for p in self.probes
        ]
        return (
            f"Overload knee for {self.benchmark} "
            f"({self.users:,} simulated users, one cohort)\n"
            f"closed-loop service estimate: {self.service_rate:.1f} txn/s, "
            f"baseline p95 {self.base_p95_ms:.3f} ms at {self.base_rate:.1f} txn/s\n"
            f"knee: {self.knee_rate:.1f} txn/s "
            f"(p95 {self.p95_at_knee_ms:.3f} ms, "
            f"{self.knee_rate / max(self.service_rate, 1e-9):.2f}x service estimate); "
            f"peak RSS {self.peak_rss_mib:.1f} MiB\n"
            + format_table(headers, rows)
        )


def _peak_rss_mib() -> float:
    """Peak RSS of this process in MiB (0.0 where resource is unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def default_users(scale: ExperimentScale) -> int:
    """Client-population size for a scale preset (>= 1M beyond small)."""
    return USERS_BY_SCALE.get(scale.name, DEFAULT_USERS)


def run_overload_knee(
    scale: ExperimentScale | None = None,
    benchmark: str = "tatp",
    *,
    users: int | None = None,
    probe_seconds: float = 2.0,
) -> OverloadKneeResult:
    """Locate the open-loop latency knee for ``benchmark``.

    Trains once, then probes arrival rates with fresh single-cohort
    streaming-metrics sessions as described in the module docstring.
    """
    scale = scale or ExperimentScale.from_env()
    if users is None:
        users = default_users(scale)
    result = OverloadKneeResult(scale=scale, benchmark=benchmark, users=users)

    artifacts = pipeline.train(
        benchmark,
        scale.accuracy_partitions,
        trace_transactions=scale.trace_transactions,
        seed=scale.seed,
    )

    def probe(rate: float, phase: str) -> dict:
        """One independent open-loop probe at ``rate`` txn/s (abandoned, not
        drained — an overloaded backlog must not be executed to completion)."""
        strategy = pipeline.make_strategy("houdini", artifacts)
        cohort = Cohort("clients", users, rate_per_user_per_sec=rate / users)
        spec = ClusterSpec(
            benchmark=benchmark,
            num_partitions=scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
            metrics_mode="streaming",
            workload=ClientCohortSource([cohort], seed=scale.seed, label_tenants=False),
        )
        session = Cluster.open(spec, artifacts=artifacts, strategy=strategy)
        snapshot = session.run_for(sim_seconds=probe_seconds)
        throughput = snapshot.committed / probe_seconds
        p95 = snapshot.latency_quantile(0.95)
        stable = True
        if result.base_p95_ms:
            stable = (
                p95 <= KNEE_FACTOR * result.base_p95_ms
                and throughput >= SUSTAIN_FRACTION * rate
            )
        entry = {
            "rate": rate,
            "throughput": throughput,
            "p95_ms": p95,
            "committed": snapshot.committed,
            "backlog": len(session.in_flight()),
            "phase": phase,
            "stable": stable,
        }
        result.probes.append(entry)
        return entry

    # Phase 0: closed-loop run -> service-rate estimate to anchor the search.
    strategy = pipeline.make_strategy("houdini", artifacts)
    closed = pipeline.simulate(
        artifacts, strategy, transactions=scale.simulated_transactions
    )
    result.service_rate = max(1.0, closed.throughput_txn_per_sec)

    # Phase 1: uncongested baseline.
    result.base_rate = 0.25 * result.service_rate
    base = probe(result.base_rate, "baseline")
    result.base_p95_ms = max(base["p95_ms"], 1e-6)
    base["stable"] = True

    # Phase 2: double until unstable.
    lo, lo_p95 = result.base_rate, result.base_p95_ms
    rate = 0.5 * result.service_rate
    hi = None
    for _ in range(MAX_DOUBLINGS):
        entry = probe(rate, "doubling")
        if entry["stable"]:
            lo, lo_p95 = rate, entry["p95_ms"]
            rate *= 2.0
        else:
            hi = rate
            break
    if hi is None:  # never went unstable: report the last stable rate
        result.knee_rate, result.p95_at_knee_ms = lo, lo_p95
        result.peak_rss_mib = _peak_rss_mib()
        return result

    # Phase 3: fixed-iteration bisection between last stable and unstable.
    for _ in range(BISECTION_STEPS):
        mid = 0.5 * (lo + hi)
        entry = probe(mid, "bisection")
        if entry["stable"]:
            lo, lo_p95 = mid, entry["p95_ms"]
        else:
            hi = mid
    result.knee_rate, result.p95_at_knee_ms = lo, lo_p95
    result.peak_rss_mib = _peak_rss_mib()
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_overload_knee().format())


if __name__ == "__main__":  # pragma: no cover
    main()
