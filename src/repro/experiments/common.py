"""Shared experiment configuration and small formatting helpers.

Every experiment accepts an :class:`ExperimentScale` that controls how much
work it does.  The paper's configuration (100,000-transaction traces, five
cluster sizes up to 64 partitions, five-minute measured runs on a physical
cluster) is available as :meth:`ExperimentScale.paper`, but the default used
by the pytest benchmark harness is a scaled-down configuration that preserves
the workload mixes and therefore the qualitative results while finishing in
minutes on a laptop.  ``REPRO_SCALE=small|medium|large`` selects a preset,
and individual fields can be overridden via keyword arguments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from ..errors import SessionError


@dataclass(frozen=True)
class ExperimentScale:
    """How much work each experiment performs.

    Validation is strict: out-of-range values raise
    :class:`~repro.errors.SessionError` at construction, and
    :meth:`from_env` rejects unknown ``REPRO_SCALE`` values instead of
    silently falling back to the default."""

    name: str = "small"
    #: Transactions recorded in the sample workload trace (paper: 100,000).
    trace_transactions: int = 1500
    #: Transactions executed per simulator run (paper: 5-minute runs).
    simulated_transactions: int = 800
    #: Cluster sizes (number of partitions) for the scaling experiments
    #: (paper: 4, 8, 16, 32, 64).
    partition_counts: tuple[int, ...] = (4, 8, 16)
    #: Cluster size used by the fixed-size experiments (paper: 16).
    accuracy_partitions: int = 8
    #: Confidence-threshold sweep for the Fig. 13 experiment.
    thresholds: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    #: Transactions evaluated per configuration in the accuracy experiment.
    accuracy_test_transactions: int = 600
    #: Whether partitioned models use the full feed-forward search.
    feedforward_selection: bool = False
    #: Base RNG seed.
    seed: int = 7

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        for name in (
            "trace_transactions",
            "simulated_transactions",
            "accuracy_partitions",
            "accuracy_test_transactions",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise SessionError(
                    f"ExperimentScale.{name} must be an integer >= 1, got {value!r}"
                )
        if not self.partition_counts or any(
            not isinstance(p, int) or p < 1 for p in self.partition_counts
        ):
            raise SessionError(
                "ExperimentScale.partition_counts must be a non-empty tuple of "
                f"integers >= 1, got {self.partition_counts!r}"
            )
        if any(not 0.0 <= t <= 1.0 for t in self.thresholds):
            raise SessionError(
                "ExperimentScale.thresholds must all lie within [0, 1], "
                f"got {self.thresholds!r}"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def small() -> "ExperimentScale":
        return ExperimentScale()

    @staticmethod
    def medium() -> "ExperimentScale":
        return ExperimentScale(
            name="medium",
            trace_transactions=4000,
            simulated_transactions=2000,
            partition_counts=(4, 8, 16, 32),
            accuracy_partitions=16,
            accuracy_test_transactions=1500,
        )

    @staticmethod
    def large() -> "ExperimentScale":
        return ExperimentScale(
            name="large",
            trace_transactions=20000,
            simulated_transactions=6000,
            partition_counts=(4, 8, 16, 32, 64),
            accuracy_partitions=16,
            accuracy_test_transactions=5000,
            feedforward_selection=True,
        )

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale(
            name="paper",
            trace_transactions=100000,
            simulated_transactions=50000,
            partition_counts=(4, 8, 16, 32, 64),
            accuracy_partitions=16,
            accuracy_test_transactions=50000,
            thresholds=tuple(round(0.05 * i, 2) for i in range(21)),
            feedforward_selection=True,
        )

    @staticmethod
    def from_env(default: "ExperimentScale | None" = None) -> "ExperimentScale":
        """Pick a preset via the ``REPRO_SCALE`` environment variable.

        Unset (or empty) falls back to ``default`` (or the small preset);
        an unrecognized value raises :class:`SessionError` naming the valid
        presets — a typo must not silently run the wrong scale.
        """
        presets = {
            "small": ExperimentScale.small,
            "medium": ExperimentScale.medium,
            "large": ExperimentScale.large,
            "paper": ExperimentScale.paper,
        }
        raw = os.environ.get("REPRO_SCALE", "")
        name = raw.strip().lower()
        if not name:
            return default or ExperimentScale.small()
        if name not in presets:
            raise SessionError(
                f"unknown REPRO_SCALE value {raw!r}; valid presets: "
                f"{', '.join(sorted(presets))} (unset it to use the default)"
            )
        return presets[name]()

    def override(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


#: Benchmarks evaluated by the paper, in its presentation order.
BENCHMARKS = ("tatp", "tpcc", "auctionmark")


def run_session(
    artifacts,
    strategy,
    *,
    transactions: int,
    policy=None,
    admission_limits=None,
    clients_per_partition: int = 4,
):
    """Drive one closed-loop run through the session API.

    Every experiment routes its simulator runs through here; the single
    implementation is the :func:`repro.pipeline.simulate` shim, which opens
    a :class:`~repro.session.ClusterSession` over the trained artifacts and
    the prebuilt strategy, drives it for ``transactions`` closed-loop
    submissions, and closes it.  Results are byte-identical to the
    historical one-shot ``ClusterSimulator.run()``.
    """
    from .. import pipeline

    return pipeline.simulate(
        artifacts,
        strategy,
        transactions=transactions,
        policy=policy,
        admission_limits=admission_limits,
        clients_per_partition=clients_per_partition,
    )


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
