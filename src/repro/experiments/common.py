"""Shared experiment configuration and small formatting helpers.

Every experiment accepts an :class:`ExperimentScale` that controls how much
work it does.  The paper's configuration (100,000-transaction traces, five
cluster sizes up to 64 partitions, five-minute measured runs on a physical
cluster) is available as :meth:`ExperimentScale.paper`, but the default used
by the pytest benchmark harness is a scaled-down configuration that preserves
the workload mixes and therefore the qualitative results while finishing in
minutes on a laptop.  ``REPRO_SCALE=small|medium|large`` selects a preset,
and individual fields can be overridden via keyword arguments.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ExperimentScale:
    """How much work each experiment performs."""

    name: str = "small"
    #: Transactions recorded in the sample workload trace (paper: 100,000).
    trace_transactions: int = 1500
    #: Transactions executed per simulator run (paper: 5-minute runs).
    simulated_transactions: int = 800
    #: Cluster sizes (number of partitions) for the scaling experiments
    #: (paper: 4, 8, 16, 32, 64).
    partition_counts: tuple[int, ...] = (4, 8, 16)
    #: Cluster size used by the fixed-size experiments (paper: 16).
    accuracy_partitions: int = 8
    #: Confidence-threshold sweep for the Fig. 13 experiment.
    thresholds: tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    #: Transactions evaluated per configuration in the accuracy experiment.
    accuracy_test_transactions: int = 600
    #: Whether partitioned models use the full feed-forward search.
    feedforward_selection: bool = False
    #: Base RNG seed.
    seed: int = 7

    # ------------------------------------------------------------------
    @staticmethod
    def small() -> "ExperimentScale":
        return ExperimentScale()

    @staticmethod
    def medium() -> "ExperimentScale":
        return ExperimentScale(
            name="medium",
            trace_transactions=4000,
            simulated_transactions=2000,
            partition_counts=(4, 8, 16, 32),
            accuracy_partitions=16,
            accuracy_test_transactions=1500,
        )

    @staticmethod
    def large() -> "ExperimentScale":
        return ExperimentScale(
            name="large",
            trace_transactions=20000,
            simulated_transactions=6000,
            partition_counts=(4, 8, 16, 32, 64),
            accuracy_partitions=16,
            accuracy_test_transactions=5000,
            feedforward_selection=True,
        )

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale(
            name="paper",
            trace_transactions=100000,
            simulated_transactions=50000,
            partition_counts=(4, 8, 16, 32, 64),
            accuracy_partitions=16,
            accuracy_test_transactions=50000,
            thresholds=tuple(round(0.05 * i, 2) for i in range(21)),
            feedforward_selection=True,
        )

    @staticmethod
    def from_env(default: "ExperimentScale | None" = None) -> "ExperimentScale":
        """Pick a preset via the ``REPRO_SCALE`` environment variable."""
        presets = {
            "small": ExperimentScale.small,
            "medium": ExperimentScale.medium,
            "large": ExperimentScale.large,
            "paper": ExperimentScale.paper,
        }
        name = os.environ.get("REPRO_SCALE", "").lower()
        if name in presets:
            return presets[name]()
        return default or ExperimentScale.small()

    def override(self, **kwargs) -> "ExperimentScale":
        return replace(self, **kwargs)


#: Benchmarks evaluated by the paper, in its presentation order.
BENCHMARKS = ("tatp", "tpcc", "auctionmark")


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
