"""Table 4 — per-procedure optimization success rates and estimation times.

Runs each benchmark under the Houdini strategy and reports, per stored
procedure, the percentage of transactions for which each optimization was
successfully enabled at run time, plus the average time spent computing the
initial estimates and updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..houdini.stats import ProcedureStats
from .common import BENCHMARKS, ExperimentScale, format_table, run_session


@dataclass
class Table4Result:
    """Per-procedure optimization statistics."""

    scale: ExperimentScale
    #: benchmark -> procedure -> stats
    procedures: dict[str, dict[str, ProcedureStats]] = field(default_factory=dict)
    throughput: dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["Benchmark", "Procedure", "OP1", "OP2", "OP3", "OP4", "Estimate (ms)"]
        rows = []
        for benchmark, stats_by_procedure in self.procedures.items():
            for procedure in sorted(stats_by_procedure):
                stats = stats_by_procedure[procedure]
                rows.append([
                    benchmark,
                    procedure,
                    f"{stats.op1_rate:.1f}%",
                    f"{stats.op2_rate:.1f}%",
                    f"{stats.op3_rate:.1f}%",
                    f"{stats.op4_rate:.1f}%",
                    f"{stats.average_estimation_ms:.3f}",
                ])
        return (
            "Table 4: per-procedure optimizations enabled by Houdini\n"
            + format_table(headers, rows)
        )


def run_table04(scale: ExperimentScale | None = None) -> Table4Result:
    """Regenerate Table 4."""
    scale = scale or ExperimentScale.from_env()
    result = Table4Result(scale=scale)
    for benchmark in BENCHMARKS:
        artifacts = pipeline.train(
            benchmark,
            scale.accuracy_partitions,
            trace_transactions=scale.trace_transactions,
            seed=scale.seed,
        )
        strategy = pipeline.make_strategy("houdini-partitioned", artifacts, seed=scale.seed)
        simulation = run_session(
            artifacts, strategy, transactions=scale.simulated_transactions
        )
        result.throughput[benchmark] = simulation.throughput_txn_per_sec
        result.procedures[benchmark] = dict(strategy.stats.procedures)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_table04().format())


if __name__ == "__main__":  # pragma: no cover
    main()
