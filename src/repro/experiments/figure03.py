"""Figure 3 — the motivating experiment.

TPC-C NewOrder transactions only, three execution scenarios, increasing
cluster sizes:

1. *assume distributed* — every request locks every partition;
2. *assume single-partition* — every request runs optimistically on a random
   partition with DB2-style redirects on misprediction;
3. *proper selection* — the client supplies the exact partitions and abort
   behaviour (the oracle strategy), so single-partition transactions run
   without concurrency control and distributed ones lock the minimum set.

Expected shape (paper Fig. 3): scenario 1 is flat regardless of cluster size,
scenario 3 scales almost linearly, scenario 2 sits in between and falls
further behind as the probability of guessing the right partition shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..benchmarks.tpcc import NewOrderOnlyGenerator
from .common import ExperimentScale, format_table, run_session

#: Strategy labels in the order the paper's legend lists them.
STRATEGIES = ("oracle", "assume-single-partition", "assume-distributed")
LABELS = {
    "oracle": "Proper Selection",
    "assume-single-partition": "Assume Single-Partition",
    "assume-distributed": "Assume Distributed",
}


@dataclass
class Figure3Result:
    """Throughput (txn/s) per strategy per cluster size."""

    scale: ExperimentScale
    throughput: dict[int, dict[str, float]] = field(default_factory=dict)

    def series(self, strategy: str) -> list[tuple[int, float]]:
        return [
            (partitions, values[strategy])
            for partitions, values in sorted(self.throughput.items())
            if strategy in values
        ]

    def format(self) -> str:
        headers = ["# Partitions"] + [LABELS[s] for s in STRATEGIES]
        rows = []
        for partitions in sorted(self.throughput):
            row = [partitions]
            for strategy in STRATEGIES:
                row.append(round(self.throughput[partitions].get(strategy, 0.0), 1))
            rows.append(row)
        return "Figure 3: NewOrder throughput (txn/s) by execution scenario\n" + \
            format_table(headers, rows)


def run_figure03(scale: ExperimentScale | None = None) -> Figure3Result:
    """Regenerate Figure 3."""
    scale = scale or ExperimentScale.from_env()
    result = Figure3Result(scale=scale)
    for partitions in scale.partition_counts:
        result.throughput[partitions] = {}
        for strategy_name in STRATEGIES:
            artifacts = pipeline.train(
                "tpcc", partitions,
                trace_transactions=scale.trace_transactions,
                seed=scale.seed,
            )
            instance = artifacts.benchmark
            instance.generator = NewOrderOnlyGenerator(
                instance.catalog, instance.config, instance.generator.rng
            )
            strategy = pipeline.make_strategy(strategy_name, artifacts, seed=scale.seed)
            simulation = run_session(
                artifacts, strategy, transactions=scale.simulated_transactions
            )
            result.throughput[partitions][strategy_name] = simulation.throughput_txn_per_sec
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure03().format())


if __name__ == "__main__":  # pragma: no cover
    main()
