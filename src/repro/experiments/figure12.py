"""Figure 12 — transaction throughput of the full benchmarks.

For each benchmark (TATP, TPC-C, AuctionMark) and each cluster size, three
execution modes are compared:

* Houdini with partitioned Markov models,
* Houdini with global Markov models,
* the non-Houdini baseline (DB2-style redirects, "assume single-partition").

Expected shape (paper Fig. 12): the Houdini configurations scale better as
partitions are added, the partitioned models beat the global models (whose
size — and estimation cost — grows with the cluster), and the redirect
baseline falls behind because mispredicted transactions must be restarted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from .common import BENCHMARKS, ExperimentScale, format_table, run_session

MODES = ("houdini-partitioned", "houdini-global", "assume-single-partition")
LABELS = {
    "houdini-partitioned": "Houdini - Partitioned",
    "houdini-global": "Houdini - Global",
    "assume-single-partition": "Assume Single-Partition",
}


@dataclass
class Figure12Result:
    """Throughput per benchmark per cluster size per execution mode."""

    scale: ExperimentScale
    #: benchmark -> partitions -> mode -> throughput (txn/s)
    throughput: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)

    def series(self, benchmark: str, mode: str) -> list[tuple[int, float]]:
        by_partitions = self.throughput.get(benchmark, {})
        return [
            (partitions, values[mode])
            for partitions, values in sorted(by_partitions.items())
            if mode in values
        ]

    def improvement_over_baseline(self, benchmark: str) -> float:
        """Average % throughput gain of Houdini-partitioned over the baseline."""
        gains = []
        for values in self.throughput.get(benchmark, {}).values():
            baseline = values.get("assume-single-partition", 0.0)
            houdini = values.get("houdini-partitioned", 0.0)
            if baseline > 0:
                gains.append(100.0 * (houdini - baseline) / baseline)
        return sum(gains) / len(gains) if gains else 0.0

    def format(self) -> str:
        sections = []
        for benchmark, by_partitions in self.throughput.items():
            headers = ["# Partitions"] + [LABELS[m] for m in MODES]
            rows = []
            for partitions in sorted(by_partitions):
                row = [partitions]
                for mode in MODES:
                    row.append(round(by_partitions[partitions].get(mode, 0.0), 1))
                rows.append(row)
            sections.append(
                f"Figure 12 ({benchmark}): throughput (txn/s)\n" + format_table(headers, rows)
                + f"\nAverage improvement over baseline: "
                  f"{self.improvement_over_baseline(benchmark):.1f}%"
            )
        return "\n\n".join(sections)


def run_figure12(
    scale: ExperimentScale | None = None,
    benchmarks: tuple[str, ...] = BENCHMARKS,
) -> Figure12Result:
    """Regenerate Figure 12 (a, b and c)."""
    scale = scale or ExperimentScale.from_env()
    result = Figure12Result(scale=scale)
    for benchmark in benchmarks:
        result.throughput[benchmark] = {}
        for partitions in scale.partition_counts:
            result.throughput[benchmark][partitions] = {}
            for mode in MODES:
                artifacts = pipeline.train(
                    benchmark,
                    partitions,
                    trace_transactions=scale.trace_transactions,
                    seed=scale.seed,
                )
                strategy = pipeline.make_strategy(mode, artifacts, seed=scale.seed)
                simulation = run_session(
                    artifacts, strategy, transactions=scale.simulated_transactions
                )
                result.throughput[benchmark][partitions][mode] = (
                    simulation.throughput_txn_per_sec
                )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_figure12().format())


if __name__ == "__main__":  # pragma: no cover
    main()
