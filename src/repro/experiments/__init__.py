"""Experiment harness: one module per table/figure of the paper's evaluation."""

from .common import BENCHMARKS, ExperimentScale, format_table
from .figure03 import Figure3Result, run_figure03
from .figure11 import Figure11Result, run_figure11
from .figure12 import Figure12Result, run_figure12
from .figure13 import Figure13Result, run_figure13
from .model_figures import ModelFigureResult, run_model_figures
from .overload_knee import OverloadKneeResult, run_overload_knee
from .scheduling_policies import SchedulingPoliciesResult, run_scheduling_policies
from .summary import SummaryResult, run_summary
from .table03 import Table3Result, run_table03
from .table04 import Table4Result, run_table04

__all__ = [
    "ExperimentScale",
    "BENCHMARKS",
    "format_table",
    "run_figure03",
    "Figure3Result",
    "run_table03",
    "Table3Result",
    "run_figure11",
    "Figure11Result",
    "run_table04",
    "Table4Result",
    "run_figure12",
    "Figure12Result",
    "run_figure13",
    "Figure13Result",
    "run_model_figures",
    "ModelFigureResult",
    "run_overload_knee",
    "OverloadKneeResult",
    "run_scheduling_policies",
    "SchedulingPoliciesResult",
    "run_summary",
    "SummaryResult",
]
