"""Figures 4, 5, 9 and 10 — the model structure figures.

These are not measurements but renderings of the artifacts themselves:

* Fig. 4/5 — the global NewOrder Markov model for a two-partition database
  and the probability table of its GetWarehouse state;
* Fig. 9 — the partitioned NewOrder models and the decision tree above them;
* Fig. 10 — example models for one procedure of each benchmark.

``run_model_figures`` builds the artifacts and returns them along with DOT
renderings so the example scripts (and tests) can inspect or save them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import pipeline
from ..markov import MarkovModel, to_dot
from ..markov.vertex import VertexKind
from .common import ExperimentScale


@dataclass
class ModelFigureResult:
    """Artifacts for the model-structure figures."""

    scale: ExperimentScale
    #: Fig. 4: the global NewOrder model on a 2-partition database.
    neworder_model: MarkovModel | None = None
    neworder_dot: str = ""
    #: Fig. 5: the probability table of a GetWarehouse begin-successor state.
    getwarehouse_table: dict = field(default_factory=dict)
    #: Fig. 9: description of the partitioned NewOrder models + decision tree.
    partitioned_description: str = ""
    decision_tree_description: str = ""
    #: Fig. 10: one representative model per benchmark (DOT).
    benchmark_models: dict[str, str] = field(default_factory=dict)

    def format(self) -> str:
        """Human-readable summary (used by the CLI and the bench harness)."""
        lines = ["Model-structure figures (Fig. 4, 5, 9, 10)"]
        if self.neworder_model is not None:
            lines.append(
                f"Fig. 4  NewOrder global model: "
                f"{self.neworder_model.vertex_count()} vertices, "
                f"{self.neworder_model.edge_count()} edges"
            )
        if self.getwarehouse_table:
            lines.append(f"Fig. 5  GetWarehouse probability table: {self.getwarehouse_table}")
        if self.partitioned_description:
            lines.append("Fig. 9  " + self.partitioned_description)
        if self.decision_tree_description:
            lines.append("        " + self.decision_tree_description)
        for benchmark, dot in sorted(self.benchmark_models.items()):
            lines.append(f"Fig. 10 {benchmark}: DOT model of {len(dot)} characters")
        return "\n".join(lines)


def run_model_figures(scale: ExperimentScale | None = None) -> ModelFigureResult:
    """Build the Markov-model artifacts shown in the paper's figures."""
    scale = scale or ExperimentScale.from_env()
    result = ModelFigureResult(scale=scale)

    # Fig. 4/5: NewOrder on two partitions.
    artifacts = pipeline.train(
        "tpcc", 2, trace_transactions=min(scale.trace_transactions, 2000), seed=scale.seed
    )
    model = artifacts.models.get("neworder")
    result.neworder_model = model
    if model is not None:
        result.neworder_dot = to_dot(model, min_edge_probability=0.01)
        for target, probability in model.successors(model.begin):
            if target.kind is VertexKind.QUERY and target.name == "GetWarehouse":
                table = model.probability_table(target)
                result.getwarehouse_table = {
                    "single_partition": table.single_partition,
                    "abort": table.abort,
                    "partitions": {
                        p: {
                            "read": table.read_probability(p),
                            "write": table.write_probability(p),
                            "finish": table.finish_probability(p),
                        }
                        for p in range(table.num_partitions)
                    },
                    "edge_probability": probability,
                }
                break

    # Fig. 9: partitioned NewOrder models + decision tree.
    provider = pipeline.make_partitioned_provider(artifacts, feature_selection="heuristic")
    bundle = provider.bundle_for("neworder")
    if bundle is not None:
        result.partitioned_description = bundle.describe()
        if bundle.decision_tree is not None:
            result.decision_tree_description = bundle.decision_tree.describe()

    # Fig. 10: one representative model per benchmark.
    representatives = {
        "tatp": "InsertCallForwarding",
        "tpcc": "payment",
        "auctionmark": "GetUserInfo",
    }
    for benchmark, procedure in representatives.items():
        bench_artifacts = pipeline.train(
            benchmark, 4, trace_transactions=min(scale.trace_transactions, 2000),
            seed=scale.seed,
        )
        bench_model = bench_artifacts.models.get(procedure)
        if bench_model is not None:
            result.benchmark_models[benchmark] = to_dot(
                bench_model, min_edge_probability=0.02
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_model_figures()
    if result.neworder_model is not None:
        print(f"NewOrder model: {result.neworder_model.vertex_count()} vertices")
    print(result.partitioned_description)
    print(result.decision_tree_description)


if __name__ == "__main__":  # pragma: no cover
    main()
