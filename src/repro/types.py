"""Shared light-weight types used across the ``repro`` package.

The paper's system (H-Store + Houdini) deals in a handful of simple
identifiers: partitions, nodes/sites, transactions and clients.  We keep them
as plain ``int`` aliases for speed (millions of them are created in the
simulator) and provide small frozen dataclasses for the few composite values
that travel across subsystem boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

PartitionId = int
NodeId = int
TransactionId = int
ClientId = int

#: Parameter values accepted by stored procedures and statements.
ParameterValue = Any


class IsolationDecision(Enum):
    """How the coordinator decided to run a transaction."""

    SINGLE_PARTITION = "single_partition"
    MULTI_PARTITION = "multi_partition"


class QueryType(Enum):
    """Coarse classification of a statement used by probability tables."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is QueryType.WRITE


@dataclass(frozen=True)
class PartitionSet:
    """An immutable, hashable, ordered set of partition identifiers.

    Markov-model vertices are keyed on the partitions a query accesses and
    the partitions the transaction accessed previously, so these sets must be
    hashable and cheap to compare.  The canonical representation is a sorted
    tuple.
    """

    partitions: tuple[PartitionId, ...] = ()

    @staticmethod
    def of(values: Sequence[PartitionId] | frozenset[PartitionId]) -> "PartitionSet":
        return PartitionSet(tuple(sorted(set(values))))

    def union(self, other: "PartitionSet") -> "PartitionSet":
        return PartitionSet.of(set(self.partitions) | set(other.partitions))

    def contains(self, partition_id: PartitionId) -> bool:
        return partition_id in self.partitions

    def issuperset(self, other: "PartitionSet") -> bool:
        return set(self.partitions) >= set(other.partitions)

    def as_frozenset(self) -> frozenset[PartitionId]:
        return frozenset(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def __bool__(self) -> bool:
        return bool(self.partitions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(p) for p in self.partitions)
        return "{" + inner + "}"


EMPTY_PARTITION_SET = PartitionSet()


@dataclass(frozen=True)
class ProcedureRequest:
    """A client request: a stored-procedure name plus its input parameters.

    This is the unit of work that arrives at the transaction coordinator
    (Fig. 1 of the paper) and the unit that Houdini builds an initial path
    estimate for.
    """

    procedure: str
    parameters: tuple[ParameterValue, ...]
    client_id: ClientId = 0
    arrival_node: NodeId = 0

    @staticmethod
    def of(procedure: str, parameters: Sequence[ParameterValue], **kwargs: Any) -> "ProcedureRequest":
        return ProcedureRequest(procedure=procedure, parameters=tuple(parameters), **kwargs)


@dataclass
class QueryInvocation:
    """One executed query inside a transaction.

    The ``counter`` records how many times this statement had already been
    executed by the same transaction before this invocation — part of the
    Markov-model vertex identity (Section 3.1).
    """

    statement: str
    parameters: tuple[ParameterValue, ...]
    partitions: PartitionSet
    counter: int
    query_type: QueryType = QueryType.READ


@dataclass
class TransactionSummary:
    """Outcome of one executed transaction, used for metrics and traces."""

    txn_id: TransactionId
    procedure: str
    parameters: tuple[ParameterValue, ...]
    base_partition: PartitionId
    touched_partitions: PartitionSet
    committed: bool
    restarts: int = 0
    queries: list[QueryInvocation] = field(default_factory=list)
    latency_ms: float = 0.0

    @property
    def single_partitioned(self) -> bool:
        return len(self.touched_partitions) <= 1
