"""Shared light-weight types used across the ``repro`` package.

The paper's system (H-Store + Houdini) deals in a handful of simple
identifiers: partitions, nodes/sites, transactions and clients.  We keep them
as plain ``int`` aliases for speed (millions of them are created in the
simulator) and provide small frozen dataclasses for the few composite values
that travel across subsystem boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, NamedTuple, Sequence

PartitionId = int
NodeId = int
TransactionId = int
ClientId = int

#: Parameter values accepted by stored procedures and statements.
ParameterValue = Any


class IsolationDecision(Enum):
    """How the coordinator decided to run a transaction."""

    SINGLE_PARTITION = "single_partition"
    MULTI_PARTITION = "multi_partition"


class QueryType(Enum):
    """Coarse classification of a statement used by probability tables."""

    READ = "read"
    WRITE = "write"

    @property
    def is_write(self) -> bool:
        return self is QueryType.WRITE


class PartitionSet:
    """An immutable, hashable, ordered set of partition identifiers.

    Markov-model vertices are keyed on the partitions a query accesses and
    the partitions the transaction accessed previously, so these sets must be
    hashable and cheap to compare.  The canonical representation is a sorted
    tuple.

    These sets are hashed and unioned in the inner loop of Houdini's path
    estimation, so the implementation trades a little generality for speed:
    the hash is computed once at construction, the empty set and small
    singleton sets are interned (making equality checks and dict probes
    pointer comparisons in the common case), and :meth:`union` returns an
    existing operand whenever the result would equal it.
    """

    __slots__ = ("partitions", "_hash", "_frozen")

    partitions: tuple[PartitionId, ...]

    def __init__(self, partitions: tuple[PartitionId, ...] = ()) -> None:
        object.__setattr__(self, "partitions", tuple(partitions))
        object.__setattr__(self, "_hash", hash(self.partitions))
        object.__setattr__(self, "_frozen", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"PartitionSet is immutable (cannot set {name!r})")

    def __reduce__(self):
        # The default slots-based pickling would go through the blocked
        # __setattr__; reconstruct through the constructor instead (also
        # keeps pickled/deep-copied instances out of the intern tables,
        # which is fine — equality is by value).
        return (PartitionSet, (self.partitions,))

    # ------------------------------------------------------------------
    @staticmethod
    def of(values: Sequence[PartitionId] | frozenset[PartitionId]) -> "PartitionSet":
        if type(values) in (set, frozenset):
            return _interned(tuple(sorted(values)))
        return _interned(tuple(sorted(set(values))))

    def union(self, other: "PartitionSet") -> "PartitionSet":
        mine, theirs = self.partitions, other.partitions
        if not theirs or mine == theirs:
            return self
        if not mine:
            return other
        if len(theirs) == 1 and theirs[0] in mine:
            return self
        merged = set(mine)
        merged.update(theirs)
        if len(merged) == len(mine):
            return self
        if len(merged) == len(theirs):
            return other
        return _interned(tuple(sorted(merged)))

    def contains(self, partition_id: PartitionId) -> bool:
        return partition_id in self.partitions

    def issuperset(self, other: "PartitionSet") -> bool:
        return set(self.partitions) >= set(other.partitions)

    def as_frozenset(self) -> frozenset[PartitionId]:
        frozen = self._frozen
        if frozen is None:
            frozen = frozenset(self.partitions)
            object.__setattr__(self, "_frozen", frozen)
        return frozen

    def __eq__(self, other: Any) -> bool:
        if self is other:
            return True
        if isinstance(other, PartitionSet):
            return self.partitions == other.partitions
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self):
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def __bool__(self) -> bool:
        return bool(self.partitions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PartitionSet(partitions={self.partitions!r})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(p) for p in self.partitions)
        return "{" + inner + "}"


EMPTY_PARTITION_SET = PartitionSet()

#: Interned singleton sets, keyed by partition id.  Partition counts are
#: small (the paper's clusters run tens of partitions), so interning every
#: id below this limit covers all of them without unbounded growth.
_INTERN_SINGLETON_LIMIT = 1024
_SINGLETON_SETS: dict[PartitionId, PartitionSet] = {}


def _interned(partitions: tuple[PartitionId, ...]) -> PartitionSet:
    """Return a canonical instance for empty / small singleton tuples."""
    if not partitions:
        return EMPTY_PARTITION_SET
    if len(partitions) == 1:
        pid = partitions[0]
        if isinstance(pid, int) and 0 <= pid < _INTERN_SINGLETON_LIMIT:
            cached = _SINGLETON_SETS.get(pid)
            if cached is None:
                cached = PartitionSet(partitions)
                _SINGLETON_SETS[pid] = cached
            return cached
    return PartitionSet(partitions)


class ProcedureRequest(NamedTuple):
    """A client request: a stored-procedure name plus its input parameters.

    This is the unit of work that arrives at the transaction coordinator
    (Fig. 1 of the paper) and the unit that Houdini builds an initial path
    estimate for.  A named tuple rather than a dataclass: the closed-loop
    simulator constructs one per submission on its hot path.
    """

    procedure: str
    parameters: tuple[ParameterValue, ...]
    client_id: ClientId = 0
    arrival_node: NodeId = 0

    @staticmethod
    def of(procedure: str, parameters: Sequence[ParameterValue], **kwargs: Any) -> "ProcedureRequest":
        return ProcedureRequest(procedure, tuple(parameters), **kwargs)


@dataclass(slots=True)
class QueryInvocation:
    """One executed query inside a transaction.

    The ``counter`` records how many times this statement had already been
    executed by the same transaction before this invocation — part of the
    Markov-model vertex identity (Section 3.1).
    """

    statement: str
    parameters: tuple[ParameterValue, ...]
    partitions: PartitionSet
    counter: int
    query_type: QueryType = QueryType.READ


@dataclass
class TransactionSummary:
    """Outcome of one executed transaction, used for metrics and traces."""

    txn_id: TransactionId
    procedure: str
    parameters: tuple[ParameterValue, ...]
    base_partition: PartitionId
    touched_partitions: PartitionSet
    committed: bool
    restarts: int = 0
    queries: list[QueryInvocation] = field(default_factory=list)
    latency_ms: float = 0.0

    @property
    def single_partitioned(self) -> bool:
        return len(self.touched_partitions) <= 1
