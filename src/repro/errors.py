"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause.  The
sub-classes mirror the major subsystems of the paper's architecture: catalog
definition errors, storage/engine errors, transaction-control errors and
prediction-framework (Houdini) errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CatalogError(ReproError):
    """Raised for invalid schema, statement or procedure definitions."""


class UnknownTableError(CatalogError):
    """Raised when a statement or query references a table not in the schema."""

    def __init__(self, table_name: str) -> None:
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownColumnError(CatalogError):
    """Raised when a statement references a column that its table lacks."""

    def __init__(self, table_name: str, column_name: str) -> None:
        super().__init__(f"unknown column {column_name!r} in table {table_name!r}")
        self.table_name = table_name
        self.column_name = column_name


class UnknownStatementError(CatalogError):
    """Raised when a procedure invokes a statement it never declared."""

    def __init__(self, procedure_name: str, statement_name: str) -> None:
        super().__init__(
            f"procedure {procedure_name!r} has no statement named {statement_name!r}"
        )
        self.procedure_name = procedure_name
        self.statement_name = statement_name


class UnknownProcedureError(CatalogError):
    """Raised when a request names a stored procedure the catalog lacks."""

    def __init__(self, procedure_name: str) -> None:
        super().__init__(f"unknown stored procedure: {procedure_name!r}")
        self.procedure_name = procedure_name


class StorageError(ReproError):
    """Raised for storage-layer failures (constraint violations, bad rows)."""


class DuplicateKeyError(StorageError):
    """Raised when an insert would violate a primary-key constraint."""

    def __init__(self, table_name: str, key: object) -> None:
        super().__init__(f"duplicate primary key {key!r} in table {table_name!r}")
        self.table_name = table_name
        self.key = key


class ExecutionError(ReproError):
    """Raised for run-time execution failures inside a partition engine."""


class TransactionError(ReproError):
    """Base class for transaction-control errors."""


class TransactionAbort(TransactionError):
    """Raised (and caught by the coordinator) when a transaction aborts.

    ``user_initiated`` distinguishes application-level rollbacks (e.g. the
    TPC-C NewOrder "bad item" abort) from system-initiated aborts such as
    mispredicted partition accesses.
    """

    def __init__(self, reason: str = "", user_initiated: bool = True) -> None:
        super().__init__(reason or "transaction aborted")
        self.reason = reason
        self.user_initiated = user_initiated


class UserAbort(TransactionAbort):
    """Application-requested rollback from inside stored-procedure code."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason=reason or "user abort", user_initiated=True)


class MispredictionAbort(TransactionAbort):
    """The transaction touched a partition that was not locked for it.

    In the paper this forces the DBMS to abort the transaction and restart it
    (either as a redirected single-partition transaction or as a distributed
    transaction that locks additional partitions).
    """

    def __init__(self, partition_id: int, reason: str = "") -> None:
        super().__init__(
            reason=reason or f"accessed unpredicted partition {partition_id}",
            user_initiated=False,
        )
        self.partition_id = partition_id


class UnrecoverableError(TransactionError):
    """A transaction aborted after undo logging had been disabled (OP3).

    The paper treats this as catastrophic ("the node must halt"); the
    simulator raises this error so that tests can assert it never happens for
    Houdini's predictions.
    """


class ModelError(ReproError):
    """Raised for malformed Markov models or invalid model operations."""


class EstimationError(ReproError):
    """Raised when Houdini cannot produce an estimate for a request."""


class WorkloadError(ReproError):
    """Raised for malformed workload traces or generator misconfiguration."""


class SimulationError(ReproError):
    """Raised for invalid simulator configuration or impossible schedules."""


class SessionError(ReproError, ValueError):
    """Raised for invalid cluster specifications or misuse of a session
    (unknown spec fields, out-of-range values, driving a closed session).

    Also a :class:`ValueError`: the historical ``pipeline`` entry points
    raised ``ValueError`` for bad configuration (e.g. an unknown strategy
    name), and their shims must stay catchable by existing callers.
    """
