"""Parameter mappings (paper §4.1).

A parameter mapping captures which stored-procedure input parameters feed
which query input parameters.  Houdini uses it to compute, *before the
transaction runs*, the partitions a candidate query would access — which is
what turns the Markov model from a descriptive artifact into a predictive
one.

The mapping is derived from a workload trace by dynamic analysis: every query
parameter value observed in a transaction is compared against the
transaction's procedure parameters, per-position match ratios are computed,
and ratios from repeated query invocations / array elements are folded
together with a geometric mean exactly as the paper describes.  Pairs whose
final coefficient falls below a threshold (0.9 by default) are discarded as
coincidental matches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..errors import EstimationError

#: Default pruning threshold; the paper found coefficients > 0.9 reliable.
DEFAULT_COEFFICIENT_THRESHOLD = 0.9


@dataclass(frozen=True)
class MappingEntry:
    """One link: a query parameter comes from a procedure parameter.

    ``array_aligned`` means the procedure parameter is an array and the
    query's n-th invocation reads the array's n-th element (the
    ``i_ids[n] -> CheckStock#n`` pattern of Fig. 7/8).
    """

    statement: str
    query_param_index: int
    procedure_param_index: int
    array_aligned: bool
    coefficient: float


@dataclass
class ParameterMapping:
    """All accepted mapping entries for one stored procedure."""

    procedure: str
    entries: list[MappingEntry] = field(default_factory=list)
    threshold: float = DEFAULT_COEFFICIENT_THRESHOLD

    def __post_init__(self) -> None:
        self._by_slot: dict[tuple[str, int], MappingEntry] = {}
        for entry in sorted(self.entries, key=lambda e: -e.coefficient):
            self._by_slot.setdefault((entry.statement, entry.query_param_index), entry)

    # ------------------------------------------------------------------
    def add(self, entry: MappingEntry) -> None:
        self.entries.append(entry)
        current = self._by_slot.get((entry.statement, entry.query_param_index))
        if current is None or entry.coefficient > current.coefficient:
            self._by_slot[(entry.statement, entry.query_param_index)] = entry

    def entry_for(self, statement: str, query_param_index: int) -> MappingEntry | None:
        """Best mapping entry for one query-parameter slot, if any."""
        return self._by_slot.get((statement, query_param_index))

    def is_mapped(self, statement: str, query_param_index: int) -> bool:
        return (statement, query_param_index) in self._by_slot

    def statements(self) -> tuple[str, ...]:
        return tuple(sorted({entry.statement for entry in self.entries}))

    # ------------------------------------------------------------------
    def resolve(
        self,
        statement: str,
        query_param_index: int,
        invocation_counter: int,
        procedure_parameters: Sequence[Any],
    ) -> Any | None:
        """Predict the value of one query parameter from procedure inputs.

        Returns ``None`` when the slot is unmapped or the mapped array is too
        short for this invocation counter — the "cannot determine all the
        query parameters" condition of §4.2.
        """
        entry = self.entry_for(statement, query_param_index)
        if entry is None:
            return None
        if entry.procedure_param_index >= len(procedure_parameters):
            raise EstimationError(
                f"mapping for {self.procedure!r} references parameter "
                f"{entry.procedure_param_index} but only "
                f"{len(procedure_parameters)} were supplied"
            )
        value = procedure_parameters[entry.procedure_param_index]
        if entry.array_aligned:
            if not isinstance(value, (list, tuple)):
                return None
            if invocation_counter >= len(value):
                return None
            return value[invocation_counter]
        return value

    def resolve_all(
        self,
        statement: str,
        parameter_count: int,
        invocation_counter: int,
        procedure_parameters: Sequence[Any],
    ) -> list[Any | None]:
        """Resolve every parameter slot of a statement (``None`` when unknown)."""
        return [
            self.resolve(statement, index, invocation_counter, procedure_parameters)
            for index in range(parameter_count)
        ]

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable rendering similar to the paper's Fig. 7."""
        lines = [f"Parameter mapping for {self.procedure!r} (threshold {self.threshold}):"]
        for entry in sorted(
            self.entries, key=lambda e: (e.statement, e.query_param_index)
        ):
            suffix = "[n]" if entry.array_aligned else ""
            lines.append(
                f"  {entry.statement}(param {entry.query_param_index}) <- "
                f"procedure parameter {entry.procedure_param_index}{suffix} "
                f"(coefficient {entry.coefficient:.3f})"
            )
        return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean used to aggregate per-position coefficients (§4.1)."""
    if not values:
        return 0.0
    if any(value <= 0.0 for value in values):
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


@dataclass
class ParameterMappingSet(Mapping[str, ParameterMapping]):
    """Mappings for every procedure of an application."""

    mappings: dict[str, ParameterMapping] = field(default_factory=dict)

    def __getitem__(self, procedure: str) -> ParameterMapping:
        return self.mappings[procedure]

    def __iter__(self):
        return iter(self.mappings)

    def __len__(self) -> int:
        return len(self.mappings)

    def add(self, mapping: ParameterMapping) -> None:
        self.mappings[mapping.procedure] = mapping

    def get(self, procedure: str, default=None):
        return self.mappings.get(procedure, default)
