"""JSON (de)serialization of parameter mappings.

Parameter mappings (paper §4.1) are the second off-line artifact Houdini
needs at run time (Fig. 6).  Like the Markov models they are derived from a
workload trace, so deployments want to train them once and ship them to
every node; this module provides the durable representation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..errors import EstimationError
from .parameter_mapping import MappingEntry, ParameterMapping, ParameterMappingSet

#: Format version written into every document.
FORMAT_VERSION = 1


def mapping_to_dict(mapping: ParameterMapping) -> dict[str, Any]:
    """Encode one procedure's parameter mapping."""
    return {
        "procedure": mapping.procedure,
        "threshold": mapping.threshold,
        "entries": [
            {
                "statement": entry.statement,
                "query_param_index": entry.query_param_index,
                "procedure_param_index": entry.procedure_param_index,
                "array_aligned": entry.array_aligned,
                "coefficient": entry.coefficient,
            }
            for entry in sorted(
                mapping.entries,
                key=lambda e: (e.statement, e.query_param_index, e.procedure_param_index),
            )
        ],
    }


def mapping_from_dict(data: Mapping[str, Any]) -> ParameterMapping:
    """Decode one procedure's mapping from :func:`mapping_to_dict` output."""
    try:
        entries = [
            MappingEntry(
                statement=entry["statement"],
                query_param_index=int(entry["query_param_index"]),
                procedure_param_index=int(entry["procedure_param_index"]),
                array_aligned=bool(entry["array_aligned"]),
                coefficient=float(entry["coefficient"]),
            )
            for entry in data.get("entries", [])
        ]
        return ParameterMapping(
            procedure=data["procedure"],
            entries=entries,
            threshold=float(data.get("threshold", 0.9)),
        )
    except KeyError as exc:
        raise EstimationError(f"malformed parameter-mapping document: missing {exc}") from exc


def mapping_set_to_dict(mappings: ParameterMappingSet) -> dict[str, Any]:
    """Encode a whole application's mappings."""
    return {
        "format_version": FORMAT_VERSION,
        "mappings": {
            name: mapping_to_dict(mapping) for name, mapping in sorted(mappings.mappings.items())
        },
    }


def mapping_set_from_dict(data: Mapping[str, Any]) -> ParameterMappingSet:
    """Decode a bundle produced by :func:`mapping_set_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise EstimationError(
            f"unsupported parameter-mapping format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    result = ParameterMappingSet()
    for entry in data.get("mappings", {}).values():
        result.add(mapping_from_dict(entry))
    return result


def save_mappings(mappings: ParameterMappingSet, path: str | Path) -> Path:
    """Write a mapping bundle to ``path`` as JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(mapping_set_to_dict(mappings), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return target


def load_mappings(path: str | Path) -> ParameterMappingSet:
    """Load a mapping bundle previously written by :func:`save_mappings`."""
    text = Path(path).read_text(encoding="utf-8")
    return mapping_set_from_dict(json.loads(text))
