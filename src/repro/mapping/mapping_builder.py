"""Derives parameter mappings from workload traces by dynamic analysis.

For every (query parameter slot, procedure parameter) pair the builder counts
how often the two carried the same value across the trace, computes the match
ratio per invocation counter / array position, and folds those per-position
ratios into a single coefficient with a geometric mean (paper §4.1).  Pairs
below the pruning threshold are dropped as coincidences.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

from ..catalog.procedure import StoredProcedure
from ..catalog.schema import Catalog
from ..workload.trace import TransactionTraceRecord, WorkloadTrace
from .parameter_mapping import (
    DEFAULT_COEFFICIENT_THRESHOLD,
    MappingEntry,
    ParameterMapping,
    ParameterMappingSet,
    geometric_mean,
)


@dataclass
class _PairCounter:
    """Match counts per alignment position for one candidate pair."""

    matches: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    comparisons: dict[int, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, position: int, matched: bool) -> None:
        self.comparisons[position] += 1
        if matched:
            self.matches[position] += 1

    def coefficient(self) -> float:
        ratios = []
        for position, total in self.comparisons.items():
            if total <= 0:
                continue
            ratios.append(self.matches[position] / total)
        return geometric_mean(ratios)

    def total_comparisons(self) -> int:
        return sum(self.comparisons.values())


class ParameterMappingBuilder:
    """Builds :class:`ParameterMapping` objects from traces."""

    def __init__(
        self,
        catalog: Catalog,
        *,
        threshold: float = DEFAULT_COEFFICIENT_THRESHOLD,
        min_comparisons: int = 3,
    ) -> None:
        self.catalog = catalog
        self.threshold = threshold
        #: Pairs observed fewer times than this are ignored: a single lucky
        #: match should not create a mapping.
        self.min_comparisons = min_comparisons

    # ------------------------------------------------------------------
    def build_all(self, trace: WorkloadTrace) -> ParameterMappingSet:
        """Build mappings for every procedure appearing in ``trace``."""
        mapping_set = ParameterMappingSet()
        for procedure_name in trace.procedures:
            mapping_set.add(self.build(trace, procedure_name))
        return mapping_set

    def build(self, trace: WorkloadTrace, procedure_name: str) -> ParameterMapping:
        """Build the mapping for one procedure from its trace records."""
        procedure = self.catalog.procedure(procedure_name)
        scalar_pairs: dict[tuple[str, int, int], _PairCounter] = defaultdict(_PairCounter)
        array_pairs: dict[tuple[str, int, int], _PairCounter] = defaultdict(_PairCounter)
        for record in trace:
            if record.procedure != procedure_name:
                continue
            self._scan_record(procedure, record, scalar_pairs, array_pairs)
        mapping = ParameterMapping(procedure_name, threshold=self.threshold)
        self._emit_entries(mapping, scalar_pairs, array_aligned=False)
        self._emit_entries(mapping, array_pairs, array_aligned=True)
        return mapping

    # ------------------------------------------------------------------
    def _scan_record(
        self,
        procedure: StoredProcedure,
        record: TransactionTraceRecord,
        scalar_pairs,
        array_pairs,
    ) -> None:
        counters: dict[str, int] = defaultdict(int)
        for query in record.queries:
            counter = counters[query.statement]
            counters[query.statement] += 1
            for query_index, query_value in enumerate(query.parameters):
                if isinstance(query_value, (list, tuple)):
                    continue
                for proc_index, proc_value in enumerate(record.parameters):
                    key = (query.statement, query_index, proc_index)
                    if isinstance(proc_value, (list, tuple)):
                        # Array procedure parameter: compare this invocation's
                        # value against the element aligned with its counter.
                        if counter < len(proc_value):
                            array_pairs[key].record(
                                counter, _values_equal(proc_value[counter], query_value)
                            )
                    else:
                        scalar_pairs[key].record(
                            counter, _values_equal(proc_value, query_value)
                        )

    def _emit_entries(self, mapping: ParameterMapping, pairs, *, array_aligned: bool) -> None:
        for (statement, query_index, proc_index), counter in pairs.items():
            if counter.total_comparisons() < self.min_comparisons:
                continue
            coefficient = counter.coefficient()
            if coefficient < self.threshold:
                continue
            mapping.add(MappingEntry(
                statement=statement,
                query_param_index=query_index,
                procedure_param_index=proc_index,
                array_aligned=array_aligned,
                coefficient=coefficient,
            ))


def _values_equal(left: Any, right: Any) -> bool:
    """Value equality that never treats booleans and integers as equal."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right


def build_parameter_mappings(
    catalog: Catalog,
    trace: WorkloadTrace,
    *,
    threshold: float = DEFAULT_COEFFICIENT_THRESHOLD,
) -> ParameterMappingSet:
    """Convenience wrapper mirroring :func:`build_models_from_trace`."""
    return ParameterMappingBuilder(catalog, threshold=threshold).build_all(trace)
