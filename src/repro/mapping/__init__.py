"""Parameter mappings between procedure inputs and query inputs (paper §4.1)."""

from .mapping_builder import ParameterMappingBuilder, build_parameter_mappings
from .serialization import (
    load_mappings,
    mapping_from_dict,
    mapping_set_from_dict,
    mapping_set_to_dict,
    mapping_to_dict,
    save_mappings,
)
from .parameter_mapping import (
    DEFAULT_COEFFICIENT_THRESHOLD,
    MappingEntry,
    ParameterMapping,
    ParameterMappingSet,
    geometric_mean,
)

__all__ = [
    "ParameterMapping",
    "mapping_to_dict",
    "mapping_from_dict",
    "mapping_set_to_dict",
    "mapping_set_from_dict",
    "save_mappings",
    "load_mappings",
    "ParameterMappingSet",
    "MappingEntry",
    "ParameterMappingBuilder",
    "build_parameter_mappings",
    "geometric_mean",
    "DEFAULT_COEFFICIENT_THRESHOLD",
]
