"""OLTP benchmarks: the paper's TATP, TPC-C and AuctionMark, plus SmallBank.

Each benchmark exposes a :class:`~repro.benchmarks.base.BenchmarkBundle`;
:func:`get_benchmark` looks one up by name and
:func:`available_benchmarks` lists them all.  SmallBank is not part of the
paper's evaluation; it is included for its 40% two-customer mix, which
stresses multi-partition scheduling much harder than the paper's workloads.
"""

from __future__ import annotations

from ..errors import WorkloadError
from .base import BenchmarkBundle, BenchmarkInstance
from . import auctionmark, smallbank, tatp, tpcc

_REGISTRY: dict[str, BenchmarkBundle] = {
    tatp.BUNDLE.name: tatp.BUNDLE,
    tpcc.BUNDLE.name: tpcc.BUNDLE,
    auctionmark.BUNDLE.name: auctionmark.BUNDLE,
    smallbank.BUNDLE.name: smallbank.BUNDLE,
}


def available_benchmarks() -> tuple[str, ...]:
    """Names of the registered benchmarks."""
    return tuple(_REGISTRY)


def get_benchmark(name: str) -> BenchmarkBundle:
    """Look up a benchmark bundle by name (``tatp``, ``tpcc``, ``auctionmark``,
    ``smallbank``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


__all__ = [
    "BenchmarkBundle",
    "BenchmarkInstance",
    "get_benchmark",
    "available_benchmarks",
    "tatp",
    "tpcc",
    "auctionmark",
    "smallbank",
]
