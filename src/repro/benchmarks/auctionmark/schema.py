"""AuctionMark schema (simplified).

AuctionMark models an Internet auction site.  The reproduction keeps the
properties the paper's evaluation depends on:

* items, bids, comments and purchases are partitioned by the *seller's* user
  id, while user accounts are partitioned by their own id — so procedures
  that involve both a buyer and a seller (NewBid, NewPurchase) touch two
  partitions;
* feedback is partitioned by the user who *wrote* it, so looking up the
  feedback *about* a user is a broadcast (the GetUserInfo branch visible in
  Fig. 10c);
* PostAuction takes arbitrary-length arrays of items/sellers/buyers, and
  CheckWinningBids executes a very large number of queries (>175), the two
  procedures the paper singles out as problematic for Houdini.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...catalog.column import floating, integer, string
from ...catalog.schema import Schema
from ...catalog.table import SecondaryIndex, Table

#: Item auction status codes.
ITEM_STATUS_OPEN = 0
ITEM_STATUS_ENDED = 1
ITEM_STATUS_PURCHASED = 2


@dataclass
class AuctionMarkConfig:
    """Scaling knobs for the AuctionMark reproduction."""

    num_partitions: int = 4
    users_per_partition: int = 25
    items_per_user: int = 4
    bids_per_item: int = 2
    feedback_per_user: int = 2
    watches_per_user: int = 2
    #: Maximum array length for PostAuction requests.
    post_auction_max_items: int = 8
    #: Number of ended items CheckWinningBids examines (drives its >175
    #: query count in the paper; scaled down by default).
    check_winning_bids_items: int = 60

    @property
    def num_users(self) -> int:
        return self.num_partitions * self.users_per_partition


def make_schema() -> Schema:
    schema = Schema()
    schema.add_table(Table(
        name="USERACCT",
        columns=[
            integer("U_ID"),
            string("U_NAME"),
            floating("U_BALANCE"),
            integer("U_COMMENTS"),
            integer("U_ITEM_COUNT"),
            integer("U_RATING"),
        ],
        primary_key=["U_ID"],
        partition_column="U_ID",
    ))
    schema.add_table(Table(
        name="ITEM",
        columns=[
            integer("I_U_ID"),
            integer("I_ID"),
            string("I_NAME"),
            floating("I_CURRENT_PRICE"),
            integer("I_NUM_BIDS"),
            integer("I_STATUS"),
            integer("I_END_DATE"),
            integer("I_BUYER_ID", nullable=True),
            string("I_DESCRIPTION"),
        ],
        primary_key=["I_U_ID", "I_ID"],
        partition_column="I_U_ID",
        secondary_indexes=[SecondaryIndex("IDX_ITEM_STATUS", ("I_U_ID", "I_STATUS"))],
    ))
    schema.add_table(Table(
        name="BID",
        columns=[
            integer("B_U_ID"),
            integer("B_I_ID"),
            integer("B_ID"),
            integer("B_BUYER_ID"),
            floating("B_AMOUNT"),
        ],
        primary_key=["B_U_ID", "B_I_ID", "B_ID"],
        partition_column="B_U_ID",
        secondary_indexes=[SecondaryIndex("IDX_BID_BUYER", ("B_BUYER_ID",))],
    ))
    schema.add_table(Table(
        name="ITEM_COMMENT",
        columns=[
            integer("IC_U_ID"),
            integer("IC_I_ID"),
            integer("IC_ID"),
            integer("IC_BUYER_ID"),
            string("IC_TEXT"),
        ],
        primary_key=["IC_U_ID", "IC_I_ID", "IC_ID"],
        partition_column="IC_U_ID",
    ))
    schema.add_table(Table(
        name="FEEDBACK",
        columns=[
            integer("F_FROM_ID"),
            integer("F_TO_ID"),
            integer("F_ID"),
            integer("F_RATING"),
            string("F_TEXT"),
        ],
        primary_key=["F_FROM_ID", "F_TO_ID", "F_ID"],
        partition_column="F_FROM_ID",
        secondary_indexes=[SecondaryIndex("IDX_FEEDBACK_TO", ("F_TO_ID",))],
    ))
    schema.add_table(Table(
        name="USER_WATCH",
        columns=[
            integer("UW_U_ID"),
            integer("UW_SELLER_ID"),
            integer("UW_I_ID"),
        ],
        primary_key=["UW_U_ID", "UW_SELLER_ID", "UW_I_ID"],
        partition_column="UW_U_ID",
    ))
    schema.add_table(Table(
        name="PURCHASE",
        columns=[
            integer("P_U_ID"),
            integer("P_I_ID"),
            integer("P_ID"),
            integer("P_BUYER_ID"),
            floating("P_AMOUNT"),
        ],
        primary_key=["P_U_ID", "P_I_ID", "P_ID"],
        partition_column="P_U_ID",
    ))
    return schema
