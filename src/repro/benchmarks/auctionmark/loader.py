"""AuctionMark data loader."""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...storage.partition_store import Database
from ...workload.rng import WorkloadRandom
from .schema import ITEM_STATUS_OPEN, AuctionMarkConfig


def load(catalog: Catalog, database: Database, config: AuctionMarkConfig, rng: WorkloadRandom) -> None:
    """Populate users, items, bids, comments, feedback, watches."""
    estimator = catalog.estimator
    num_users = config.num_users
    for u_id in range(num_users):
        database.load_row("USERACCT", {
            "U_ID": u_id,
            "U_NAME": f"user-{u_id}",
            "U_BALANCE": round(rng.floating(0.0, 1000.0), 2),
            "U_COMMENTS": 0,
            "U_ITEM_COUNT": config.items_per_user,
            "U_RATING": rng.integer(0, 5),
        }, estimator)
        for i_id in range(config.items_per_user):
            database.load_row("ITEM", {
                "I_U_ID": u_id,
                "I_ID": i_id,
                "I_NAME": f"item-{u_id}-{i_id}",
                "I_CURRENT_PRICE": round(rng.floating(1.0, 200.0), 2),
                "I_NUM_BIDS": config.bids_per_item,
                "I_STATUS": ITEM_STATUS_OPEN,
                "I_END_DATE": rng.integer(10, 1000),
                "I_BUYER_ID": None,
                "I_DESCRIPTION": "initial",
            }, estimator)
            for b_id in range(config.bids_per_item):
                database.load_row("BID", {
                    "B_U_ID": u_id,
                    "B_I_ID": i_id,
                    "B_ID": b_id,
                    "B_BUYER_ID": rng.integer(0, num_users - 1),
                    "B_AMOUNT": round(rng.floating(1.0, 150.0), 2),
                }, estimator)
        for f_id in range(config.feedback_per_user):
            database.load_row("FEEDBACK", {
                "F_FROM_ID": u_id,
                "F_TO_ID": rng.integer(0, num_users - 1),
                "F_ID": f_id,
                "F_RATING": rng.integer(-1, 1),
                "F_TEXT": rng.alphanumeric(8),
            }, estimator)
        for _ in range(config.watches_per_user):
            seller_id = rng.integer(0, num_users - 1)
            item_id = rng.integer(0, config.items_per_user - 1)
            try:
                database.load_row("USER_WATCH", {
                    "UW_U_ID": u_id,
                    "UW_SELLER_ID": seller_id,
                    "UW_I_ID": item_id,
                }, estimator)
            except Exception:
                # Duplicate watch entries are simply skipped.
                continue
