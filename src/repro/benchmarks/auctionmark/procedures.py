"""AuctionMark stored procedures (simplified to the paper-relevant shape).

Ten procedures (paper §6.1): most involve a buyer and a seller whose data
live on different partitions, two contain conditional branches that select
different query sets based on input parameters (GetUserInfo, NewPurchase),
PostAuction takes arbitrary-length arrays, and CheckWinningBids executes far
more queries than Houdini's practical limit (so the paper disables prediction
for it).
"""

from __future__ import annotations

from typing import Any

from ...catalog.procedure import ExecutionContext, ProcedureParameter, StoredProcedure
from ...catalog.statement import Operation, Statement, delta, param
from .schema import ITEM_STATUS_ENDED, ITEM_STATUS_OPEN, ITEM_STATUS_PURCHASED


class GetItem(StoredProcedure):
    """Read one item by (seller, item) id — single-partitioned, read-only."""

    name = "GetItem"
    read_only = True
    parameters = (ProcedureParameter("seller_id"), ProcedureParameter("item_id"))
    statements = {
        "GetItem": Statement(
            name="GetItem", table="ITEM", operation=Operation.SELECT,
            where={"I_U_ID": param(0), "I_ID": param(1)},
        ),
        "GetSeller": Statement(
            name="GetSeller", table="USERACCT", operation=Operation.SELECT,
            where={"U_ID": param(0)}, output_columns=("U_NAME", "U_RATING"),
        ),
    }

    def run(self, ctx: ExecutionContext, seller_id, item_id) -> Any:
        items = ctx.execute("GetItem", [seller_id, item_id])
        ctx.execute("GetSeller", [seller_id])
        return items[0] if items else None


class GetUserInfo(StoredProcedure):
    """Read a user profile with optional feedback / item sub-queries.

    The conditional branches (driven by the boolean-ish input flags) are what
    Fig. 10c shows: GetUser is always executed, then either the broadcast
    GetBuyerFeedback, the local GetSellerItems, or the broadcast
    GetBuyerItems may follow.
    """

    name = "GetUserInfo"
    read_only = True
    parameters = (
        ProcedureParameter("u_id"),
        ProcedureParameter("get_feedback"),
        ProcedureParameter("get_seller_items"),
        ProcedureParameter("get_buyer_items"),
    )
    statements = {
        "GetUser": Statement(
            name="GetUser", table="USERACCT", operation=Operation.SELECT,
            where={"U_ID": param(0)},
        ),
        "GetBuyerFeedback": Statement(
            name="GetBuyerFeedback", table="FEEDBACK", operation=Operation.SELECT,
            where={"F_TO_ID": param(0)}, output_columns=("F_RATING", "F_TEXT"),
        ),
        "GetSellerItems": Statement(
            name="GetSellerItems", table="ITEM", operation=Operation.SELECT,
            where={"I_U_ID": param(0)}, output_columns=("I_ID", "I_CURRENT_PRICE"),
        ),
        "GetBuyerItems": Statement(
            name="GetBuyerItems", table="BID", operation=Operation.SELECT,
            where={"B_BUYER_ID": param(0)}, output_columns=("B_I_ID", "B_AMOUNT"),
        ),
    }

    def run(self, ctx: ExecutionContext, u_id, get_feedback, get_seller_items, get_buyer_items) -> Any:
        user = ctx.execute("GetUser", [u_id])
        result: dict[str, Any] = {"user": user[0] if user else None}
        if get_feedback:
            result["feedback"] = ctx.execute("GetBuyerFeedback", [u_id])
        if get_seller_items:
            result["seller_items"] = ctx.execute("GetSellerItems", [u_id])
        if get_buyer_items:
            result["buyer_items"] = ctx.execute("GetBuyerItems", [u_id])
        return result


class GetWatchedItems(StoredProcedure):
    """Read a user's watch list — single-partitioned, read-only."""

    name = "GetWatchedItems"
    read_only = True
    parameters = (ProcedureParameter("u_id"),)
    statements = {
        "GetWatchedItems": Statement(
            name="GetWatchedItems", table="USER_WATCH", operation=Operation.SELECT,
            where={"UW_U_ID": param(0)},
        ),
    }

    def run(self, ctx: ExecutionContext, u_id) -> Any:
        return ctx.execute("GetWatchedItems", [u_id])


class NewBid(StoredProcedure):
    """Place a bid: reads the buyer, updates the seller's item and bid list.

    Touches the seller's partition and the buyer's partition, so it is
    distributed whenever the two users live on different partitions — the
    "one for the buyer and one for the seller" OP2 case the paper highlights.
    """

    name = "NewBid"
    parameters = (
        ProcedureParameter("seller_id"),
        ProcedureParameter("item_id"),
        ProcedureParameter("buyer_id"),
        ProcedureParameter("bid_id"),
        ProcedureParameter("bid_amount"),
    )
    statements = {
        "GetItem": Statement(
            name="GetItem", table="ITEM", operation=Operation.SELECT,
            where={"I_U_ID": param(0), "I_ID": param(1)},
            output_columns=("I_CURRENT_PRICE", "I_NUM_BIDS", "I_STATUS"),
        ),
        "GetBuyer": Statement(
            name="GetBuyer", table="USERACCT", operation=Operation.SELECT,
            where={"U_ID": param(0)}, output_columns=("U_BALANCE",),
        ),
        "InsertBid": Statement(
            name="InsertBid", table="BID", operation=Operation.INSERT,
            insert_values={
                "B_U_ID": param(0), "B_I_ID": param(1), "B_ID": param(2),
                "B_BUYER_ID": param(3), "B_AMOUNT": param(4),
            },
        ),
        "UpdateItemBid": Statement(
            name="UpdateItemBid", table="ITEM", operation=Operation.UPDATE,
            where={"I_U_ID": param(0), "I_ID": param(1)},
            set_values={"I_CURRENT_PRICE": param(2), "I_NUM_BIDS": delta(3)},
        ),
    }

    def run(self, ctx: ExecutionContext, seller_id, item_id, buyer_id, bid_id, bid_amount) -> Any:
        items = ctx.execute("GetItem", [seller_id, item_id])
        if not items or items[0]["I_STATUS"] != ITEM_STATUS_OPEN:
            ctx.abort("item is not open for bidding")
        ctx.execute("GetBuyer", [buyer_id])
        current_price = items[0]["I_CURRENT_PRICE"]
        if bid_amount <= current_price:
            return {"accepted": False}
        ctx.execute("InsertBid", [seller_id, item_id, bid_id, buyer_id, bid_amount])
        ctx.execute("UpdateItemBid", [seller_id, item_id, bid_amount, 1])
        return {"accepted": True}


class NewComment(StoredProcedure):
    """Add a comment on an item — the shortest procedure in the workload."""

    name = "NewComment"
    parameters = (
        ProcedureParameter("seller_id"),
        ProcedureParameter("item_id"),
        ProcedureParameter("comment_id"),
        ProcedureParameter("buyer_id"),
        ProcedureParameter("text"),
    )
    statements = {
        "InsertComment": Statement(
            name="InsertComment", table="ITEM_COMMENT", operation=Operation.INSERT,
            insert_values={
                "IC_U_ID": param(0), "IC_I_ID": param(1), "IC_ID": param(2),
                "IC_BUYER_ID": param(3), "IC_TEXT": param(4),
            },
        ),
        "UpdateUserComments": Statement(
            name="UpdateUserComments", table="USERACCT", operation=Operation.UPDATE,
            where={"U_ID": param(0)}, set_values={"U_COMMENTS": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, seller_id, item_id, comment_id, buyer_id, text) -> Any:
        ctx.execute("InsertComment", [seller_id, item_id, comment_id, buyer_id, text])
        ctx.execute("UpdateUserComments", [seller_id, 1])
        return True


class NewItem(StoredProcedure):
    """List a new item for auction — single-partitioned at the seller."""

    name = "NewItem"
    parameters = (
        ProcedureParameter("seller_id"),
        ProcedureParameter("item_id"),
        ProcedureParameter("name"),
        ProcedureParameter("initial_price"),
        ProcedureParameter("end_date"),
    )
    statements = {
        "InsertItem": Statement(
            name="InsertItem", table="ITEM", operation=Operation.INSERT,
            insert_values={
                "I_U_ID": param(0), "I_ID": param(1), "I_NAME": param(2),
                "I_CURRENT_PRICE": param(3), "I_NUM_BIDS": 0,
                "I_STATUS": ITEM_STATUS_OPEN, "I_END_DATE": param(4),
                "I_BUYER_ID": None, "I_DESCRIPTION": "",
            },
        ),
        "UpdateUserItemCount": Statement(
            name="UpdateUserItemCount", table="USERACCT", operation=Operation.UPDATE,
            where={"U_ID": param(0)}, set_values={"U_ITEM_COUNT": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, seller_id, item_id, name, initial_price, end_date) -> Any:
        ctx.execute("InsertItem", [seller_id, item_id, name, initial_price, end_date])
        ctx.execute("UpdateUserItemCount", [seller_id, 1])
        return True


class NewPurchase(StoredProcedure):
    """Buy an item: updates the seller's partition and the buyer's balance."""

    name = "NewPurchase"
    parameters = (
        ProcedureParameter("seller_id"),
        ProcedureParameter("item_id"),
        ProcedureParameter("purchase_id"),
        ProcedureParameter("buyer_id"),
        ProcedureParameter("amount"),
    )
    statements = {
        "GetItem": Statement(
            name="GetItem", table="ITEM", operation=Operation.SELECT,
            where={"I_U_ID": param(0), "I_ID": param(1)},
            output_columns=("I_STATUS", "I_CURRENT_PRICE"),
        ),
        "InsertPurchase": Statement(
            name="InsertPurchase", table="PURCHASE", operation=Operation.INSERT,
            insert_values={
                "P_U_ID": param(0), "P_I_ID": param(1), "P_ID": param(2),
                "P_BUYER_ID": param(3), "P_AMOUNT": param(4),
            },
        ),
        "UpdateItemStatus": Statement(
            name="UpdateItemStatus", table="ITEM", operation=Operation.UPDATE,
            where={"I_U_ID": param(0), "I_ID": param(1)},
            set_values={"I_STATUS": param(2), "I_BUYER_ID": param(3)},
        ),
        "UpdateBuyerBalance": Statement(
            name="UpdateBuyerBalance", table="USERACCT", operation=Operation.UPDATE,
            where={"U_ID": param(0)}, set_values={"U_BALANCE": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, seller_id, item_id, purchase_id, buyer_id, amount) -> Any:
        items = ctx.execute("GetItem", [seller_id, item_id])
        if not items:
            ctx.abort("unknown item")
        ctx.execute("InsertPurchase", [seller_id, item_id, purchase_id, buyer_id, amount])
        ctx.execute(
            "UpdateItemStatus", [seller_id, item_id, ITEM_STATUS_PURCHASED, buyer_id]
        )
        ctx.execute("UpdateBuyerBalance", [buyer_id, -amount])
        return True


class PostAuction(StoredProcedure):
    """Close a batch of ended auctions.

    The input arrays have arbitrary length, and each element may touch a
    different (seller, buyer) pair of partitions — the case the paper says
    "does not work well with our model partitioning technique" (45% OP2
    misprediction in Table 4).
    """

    name = "PostAuction"
    parameters = (
        ProcedureParameter("seller_ids", is_array=True),
        ProcedureParameter("item_ids", is_array=True),
        ProcedureParameter("buyer_ids", is_array=True),
    )
    statements = {
        "UpdateItemStatus": Statement(
            name="UpdateItemStatus", table="ITEM", operation=Operation.UPDATE,
            where={"I_U_ID": param(0), "I_ID": param(1)},
            set_values={"I_STATUS": param(2), "I_BUYER_ID": param(3)},
        ),
        "UpdateBuyerBalance": Statement(
            name="UpdateBuyerBalance", table="USERACCT", operation=Operation.UPDATE,
            where={"U_ID": param(0)}, set_values={"U_BALANCE": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, seller_ids, item_ids, buyer_ids) -> Any:
        closed = 0
        for index, seller_id in enumerate(seller_ids):
            item_id = item_ids[index]
            buyer_id = buyer_ids[index]
            if buyer_id is None or buyer_id < 0:
                ctx.execute(
                    "UpdateItemStatus", [seller_id, item_id, ITEM_STATUS_ENDED, None]
                )
            else:
                ctx.execute(
                    "UpdateItemStatus", [seller_id, item_id, ITEM_STATUS_PURCHASED, buyer_id]
                )
                ctx.execute("UpdateBuyerBalance", [buyer_id, 0.0])
            closed += 1
        return {"closed": closed}


class CheckWinningBids(StoredProcedure):
    """Periodic maintenance: find ended auctions and their winning bids.

    Executes a broadcast scan plus one query per examined item, which easily
    exceeds the ~175-200 query ceiling the paper reports for Houdini's path
    estimation; the evaluation therefore disables Houdini for this procedure
    (Section 6.4) and so does the reproduction's default configuration.
    """

    name = "CheckWinningBids"
    read_only = True
    parameters = (ProcedureParameter("end_date"), ProcedureParameter("max_items"))
    statements = {
        "GetOpenItems": Statement(
            name="GetOpenItems", table="ITEM", operation=Operation.SELECT,
            where={"I_STATUS": ITEM_STATUS_OPEN},
            output_columns=("I_U_ID", "I_ID", "I_END_DATE"),
        ),
        "GetItemBids": Statement(
            name="GetItemBids", table="BID", operation=Operation.SELECT,
            where={"B_U_ID": param(0), "B_I_ID": param(1)},
            output_columns=("B_BUYER_ID", "B_AMOUNT"),
        ),
    }

    def run(self, ctx: ExecutionContext, end_date, max_items) -> Any:
        open_items = ctx.execute("GetOpenItems", [])
        ended = [row for row in open_items if row["I_END_DATE"] <= end_date]
        ended.sort(key=lambda row: (row["I_U_ID"], row["I_ID"]))
        winners = []
        for row in ended[:max_items]:
            bids = ctx.execute("GetItemBids", [row["I_U_ID"], row["I_ID"]])
            if bids:
                best = max(bids, key=lambda bid: bid["B_AMOUNT"])
                winners.append((row["I_U_ID"], row["I_ID"], best["B_BUYER_ID"]))
        return {"winners": winners}


class UpdateItem(StoredProcedure):
    """Update an item's description — single-partitioned at the seller."""

    name = "UpdateItem"
    parameters = (
        ProcedureParameter("seller_id"),
        ProcedureParameter("item_id"),
        ProcedureParameter("description"),
    )
    statements = {
        "UpdateItemDescription": Statement(
            name="UpdateItemDescription", table="ITEM", operation=Operation.UPDATE,
            where={"I_U_ID": param(0), "I_ID": param(1)},
            set_values={"I_DESCRIPTION": param(2)},
        ),
    }

    def run(self, ctx: ExecutionContext, seller_id, item_id, description) -> Any:
        ctx.execute("UpdateItemDescription", [seller_id, item_id, description])
        return True


def make_procedures() -> list[StoredProcedure]:
    """All ten AuctionMark stored procedures."""
    return [
        CheckWinningBids(),
        GetItem(),
        GetUserInfo(),
        GetWatchedItems(),
        NewBid(),
        NewComment(),
        NewItem(),
        NewPurchase(),
        PostAuction(),
        UpdateItem(),
    ]
