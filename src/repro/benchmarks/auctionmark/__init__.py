"""AuctionMark benchmark: Internet auction workload (paper §6.1)."""

from __future__ import annotations

from ...catalog.partitioning import PartitionScheme
from ...catalog.schema import Catalog
from ..base import BenchmarkBundle
from .generator import AuctionMarkGenerator
from .loader import load
from .procedures import make_procedures
from .schema import (
    ITEM_STATUS_ENDED,
    ITEM_STATUS_OPEN,
    ITEM_STATUS_PURCHASED,
    AuctionMarkConfig,
    make_schema,
)


def make_catalog(num_partitions: int, partitions_per_node: int = 2) -> Catalog:
    scheme = PartitionScheme(num_partitions, partitions_per_node)
    return Catalog(make_schema(), scheme, make_procedures())


def make_config(num_partitions: int, **overrides) -> AuctionMarkConfig:
    return AuctionMarkConfig(num_partitions=num_partitions, **overrides)


def make_generator(catalog: Catalog, config: AuctionMarkConfig, rng) -> AuctionMarkGenerator:
    return AuctionMarkGenerator(catalog, config, rng)


BUNDLE = BenchmarkBundle(
    name="auctionmark",
    make_catalog=make_catalog,
    make_config=make_config,
    load=load,
    make_generator=make_generator,
    description="AuctionMark auction workload: 10 procedures, user-partitioned.",
    houdini_disabled_procedures=frozenset({"CheckWinningBids"}),
)

__all__ = [
    "BUNDLE",
    "AuctionMarkConfig",
    "make_schema",
    "make_catalog",
    "make_config",
    "make_generator",
    "make_procedures",
    "load",
    "AuctionMarkGenerator",
    "ITEM_STATUS_OPEN",
    "ITEM_STATUS_ENDED",
    "ITEM_STATUS_PURCHASED",
]
