"""AuctionMark request generator.

The mix approximates the paper's Table 4 procedure frequencies: the read
procedures dominate, NewBid is the most common write, PostAuction and
CheckWinningBids are rare periodic maintenance transactions.
"""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...types import PartitionId, ProcedureRequest
from ...workload.generator import WorkloadGenerator
from ...workload.rng import WorkloadRandom
from .schema import AuctionMarkConfig


class AuctionMarkGenerator(WorkloadGenerator):
    """Generates AuctionMark procedure requests."""

    benchmark = "auctionmark"

    DEFAULT_MIX = (
        ("GetItem", 0.25),
        ("GetUserInfo", 0.15),
        ("GetWatchedItems", 0.10),
        ("NewBid", 0.18),
        ("NewComment", 0.05),
        ("NewItem", 0.10),
        ("NewPurchase", 0.05),
        ("UpdateItem", 0.10),
        ("PostAuction", 0.015),
        ("CheckWinningBids", 0.005),
    )

    def __init__(
        self,
        catalog: Catalog,
        config: AuctionMarkConfig,
        rng: WorkloadRandom | None = None,
        mix=None,
    ) -> None:
        super().__init__(catalog, rng)
        self.config = config
        self._mix = tuple(mix) if mix is not None else self.DEFAULT_MIX
        self._next_bid_id = 1000
        self._next_comment_id = 1000
        self._next_purchase_id = 1000
        self._next_item_id = 1000

    # ------------------------------------------------------------------
    @property
    def mix(self):
        return self._mix

    def next_request(self) -> ProcedureRequest:
        procedure = self.rng.weighted_choice(self._mix)
        builder = getattr(self, f"_make_{procedure}")
        return builder()

    def home_partition(self, request: ProcedureRequest) -> PartitionId:
        """The seller's (or subject user's) partition."""
        first = request.parameters[0]
        if isinstance(first, (list, tuple)):
            first = first[0] if first else 0
        if isinstance(first, str) or isinstance(first, float):
            return 0
        return self.catalog.scheme.partition_for_value(first)

    # ------------------------------------------------------------------
    def _random_user(self) -> int:
        return self.rng.integer(0, self.config.num_users - 1)

    def _random_item(self) -> int:
        return self.rng.integer(0, self.config.items_per_user - 1)

    def _make_GetItem(self) -> ProcedureRequest:
        return ProcedureRequest.of("GetItem", (self._random_user(), self._random_item()))

    def _make_GetUserInfo(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "GetUserInfo",
            (
                self._random_user(),
                1 if self.rng.probability(0.33) else 0,
                1 if self.rng.probability(0.66) else 0,
                1 if self.rng.probability(0.25) else 0,
            ),
        )

    def _make_GetWatchedItems(self) -> ProcedureRequest:
        return ProcedureRequest.of("GetWatchedItems", (self._random_user(),))

    def _make_NewBid(self) -> ProcedureRequest:
        self._next_bid_id += 1
        return ProcedureRequest.of(
            "NewBid",
            (
                self._random_user(),
                self._random_item(),
                self._random_user(),
                self._next_bid_id,
                round(self.rng.floating(150.0, 500.0), 2),
            ),
        )

    def _make_NewComment(self) -> ProcedureRequest:
        self._next_comment_id += 1
        return ProcedureRequest.of(
            "NewComment",
            (
                self._random_user(),
                self._random_item(),
                self._next_comment_id,
                self._random_user(),
                self.rng.alphanumeric(10),
            ),
        )

    def _make_NewItem(self) -> ProcedureRequest:
        self._next_item_id += 1
        return ProcedureRequest.of(
            "NewItem",
            (
                self._random_user(),
                self._next_item_id,
                self.rng.alphanumeric(8),
                round(self.rng.floating(1.0, 100.0), 2),
                self.rng.integer(100, 2000),
            ),
        )

    def _make_NewPurchase(self) -> ProcedureRequest:
        self._next_purchase_id += 1
        return ProcedureRequest.of(
            "NewPurchase",
            (
                self._random_user(),
                self._random_item(),
                self._next_purchase_id,
                self._random_user(),
                round(self.rng.floating(10.0, 300.0), 2),
            ),
        )

    def _make_UpdateItem(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "UpdateItem",
            (self._random_user(), self._random_item(), self.rng.alphanumeric(12)),
        )

    def _make_PostAuction(self) -> ProcedureRequest:
        count = self.rng.integer(1, self.config.post_auction_max_items)
        seller_ids = tuple(self._random_user() for _ in range(count))
        item_ids = tuple(self._random_item() for _ in range(count))
        buyer_ids = tuple(
            self._random_user() if self.rng.probability(0.7) else -1 for _ in range(count)
        )
        return ProcedureRequest.of("PostAuction", (seller_ids, item_ids, buyer_ids))

    def _make_CheckWinningBids(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "CheckWinningBids",
            (self.rng.integer(100, 1000), self.config.check_winning_bids_items),
        )
