"""TPC-C benchmark: warehouse-centric order processing (paper §6.1).

The benchmark bundle exposes the schema factory, the five stored procedures,
the data loader and the request generator.  The key property the paper relies
on is that the two most-executed procedures (NewOrder, Payment) *sometimes*
touch multiple partitions, so predicting the partition footprint per request
matters.
"""

from __future__ import annotations

from ...catalog.partitioning import PartitionScheme
from ...catalog.schema import Catalog
from ..base import BenchmarkBundle
from .generator import INVALID_ITEM_ID, NewOrderOnlyGenerator, TpccGenerator
from .loader import load
from .procedures import Delivery, NewOrder, OrderStatus, Payment, StockLevel, make_procedures
from .schema import TpccConfig, make_schema


def make_catalog(num_partitions: int, partitions_per_node: int = 2) -> Catalog:
    """Catalog for a TPC-C cluster with ``num_partitions`` partitions."""
    scheme = PartitionScheme(num_partitions, partitions_per_node)
    return Catalog(make_schema(), scheme, make_procedures())


def make_config(num_partitions: int, **overrides) -> TpccConfig:
    return TpccConfig(num_partitions=num_partitions, **overrides)


def make_generator(catalog: Catalog, config: TpccConfig, rng) -> TpccGenerator:
    return TpccGenerator(catalog, config, rng)


BUNDLE = BenchmarkBundle(
    name="tpcc",
    make_catalog=make_catalog,
    make_config=make_config,
    load=load,
    make_generator=make_generator,
    description="TPC-C order processing: 5 procedures, warehouse-partitioned.",
)

__all__ = [
    "BUNDLE",
    "TpccConfig",
    "make_schema",
    "make_catalog",
    "make_config",
    "make_generator",
    "make_procedures",
    "load",
    "TpccGenerator",
    "NewOrderOnlyGenerator",
    "NewOrder",
    "Payment",
    "OrderStatus",
    "Delivery",
    "StockLevel",
    "INVALID_ITEM_ID",
]
