"""TPC-C schema.

The standard warehouse-centric order-processing schema, partitioned on the
warehouse id (``W_ID``) as the paper assumes ("if the database is partitioned
by warehouse ids, then most of these requests are executed as
single-partitioned transactions").  The ``ITEM`` table is replicated on every
partition, which is the standard H-Store configuration.

Row counts are intentionally configurable and default to values far below the
official specification so that tests and benchmark harnesses stay fast; the
access *patterns* — which drive the Markov models — are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...catalog.column import floating, integer, string
from ...catalog.schema import Schema
from ...catalog.table import SecondaryIndex, Table


@dataclass
class TpccConfig:
    """Scaling knobs for the TPC-C reproduction."""

    num_partitions: int = 4
    #: One warehouse per partition (the paper assigns 2 partitions per node
    #: and 2 warehouses per node).
    warehouses_per_partition: int = 1
    districts_per_warehouse: int = 4
    customers_per_district: int = 30
    items: int = 200
    initial_orders_per_district: int = 10
    #: Fraction of NewOrder order lines drawn from a remote warehouse.
    remote_item_probability: float = 0.01
    #: Fraction of Payment transactions paying through a remote warehouse.
    remote_payment_probability: float = 0.15
    #: Fraction of NewOrder transactions carrying an invalid item id (these
    #: abort, exercising the undo log / OP3 machinery).
    invalid_item_probability: float = 0.01

    @property
    def num_warehouses(self) -> int:
        return self.num_partitions * self.warehouses_per_partition


def make_schema() -> Schema:
    """Build the TPC-C schema used throughout the reproduction."""
    schema = Schema()
    schema.add_table(Table(
        name="WAREHOUSE",
        columns=[
            integer("W_ID"),
            string("W_NAME"),
            floating("W_TAX"),
            floating("W_YTD"),
        ],
        primary_key=["W_ID"],
        partition_column="W_ID",
    ))
    schema.add_table(Table(
        name="DISTRICT",
        columns=[
            integer("D_W_ID"),
            integer("D_ID"),
            string("D_NAME"),
            floating("D_TAX"),
            floating("D_YTD"),
            integer("D_NEXT_O_ID"),
        ],
        primary_key=["D_W_ID", "D_ID"],
        partition_column="D_W_ID",
    ))
    schema.add_table(Table(
        name="CUSTOMER",
        columns=[
            integer("C_W_ID"),
            integer("C_D_ID"),
            integer("C_ID"),
            string("C_LAST"),
            string("C_CREDIT"),
            floating("C_DISCOUNT"),
            floating("C_BALANCE"),
            floating("C_YTD_PAYMENT"),
            integer("C_PAYMENT_CNT"),
            integer("C_DELIVERY_CNT"),
            string("C_DATA"),
        ],
        primary_key=["C_W_ID", "C_D_ID", "C_ID"],
        partition_column="C_W_ID",
    ))
    schema.add_table(Table(
        name="HISTORY",
        columns=[
            integer("H_C_ID"),
            integer("H_C_D_ID"),
            integer("H_C_W_ID"),
            integer("H_D_ID"),
            integer("H_W_ID"),
            floating("H_AMOUNT"),
        ],
        primary_key=[],
        partition_column="H_W_ID",
    ))
    schema.add_table(Table(
        name="ORDERS",
        columns=[
            integer("O_W_ID"),
            integer("O_D_ID"),
            integer("O_ID"),
            integer("O_C_ID"),
            integer("O_CARRIER_ID", nullable=True),
            integer("O_OL_CNT"),
        ],
        primary_key=["O_W_ID", "O_D_ID", "O_ID"],
        partition_column="O_W_ID",
        secondary_indexes=[
            SecondaryIndex("IDX_ORDERS_CUSTOMER", ("O_W_ID", "O_D_ID", "O_C_ID")),
        ],
    ))
    schema.add_table(Table(
        name="NEW_ORDER",
        columns=[
            integer("NO_W_ID"),
            integer("NO_D_ID"),
            integer("NO_O_ID"),
        ],
        primary_key=["NO_W_ID", "NO_D_ID", "NO_O_ID"],
        partition_column="NO_W_ID",
        secondary_indexes=[
            SecondaryIndex("IDX_NEW_ORDER_DISTRICT", ("NO_W_ID", "NO_D_ID")),
        ],
    ))
    schema.add_table(Table(
        name="ORDER_LINE",
        columns=[
            integer("OL_W_ID"),
            integer("OL_D_ID"),
            integer("OL_O_ID"),
            integer("OL_NUMBER"),
            integer("OL_I_ID"),
            integer("OL_SUPPLY_W_ID"),
            integer("OL_QUANTITY"),
            floating("OL_AMOUNT"),
            integer("OL_DELIVERY_D", nullable=True),
        ],
        primary_key=["OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_NUMBER"],
        partition_column="OL_W_ID",
        secondary_indexes=[
            SecondaryIndex("IDX_ORDER_LINE_ORDER", ("OL_W_ID", "OL_D_ID", "OL_O_ID")),
        ],
    ))
    schema.add_table(Table(
        name="ITEM",
        columns=[
            integer("I_ID"),
            string("I_NAME"),
            floating("I_PRICE"),
        ],
        primary_key=["I_ID"],
        replicated=True,
    ))
    schema.add_table(Table(
        name="STOCK",
        columns=[
            integer("S_W_ID"),
            integer("S_I_ID"),
            integer("S_QUANTITY"),
            integer("S_YTD"),
            integer("S_ORDER_CNT"),
            integer("S_REMOTE_CNT"),
        ],
        primary_key=["S_W_ID", "S_I_ID"],
        partition_column="S_W_ID",
    ))
    return schema
