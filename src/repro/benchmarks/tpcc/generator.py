"""TPC-C request generator.

Implements the standard transaction mix with the parameter distributions the
paper's evaluation depends on:

* ~45% NewOrder, ~43% Payment, 4% each OrderStatus / Delivery / StockLevel;
* each NewOrder order line has a small probability (default 1%) of sourcing
  its item from a remote warehouse, so roughly 90% of NewOrder transactions
  stay single-partitioned (the Fig. 2/Fig. 3 motivating numbers);
* ~1% of NewOrder requests carry an invalid item id and abort;
* ~15% of Payment requests pay through a remote customer warehouse.
"""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...types import PartitionId, ProcedureRequest
from ...workload.generator import WorkloadGenerator
from ...workload.rng import WorkloadRandom
from .schema import TpccConfig

#: Sentinel item id guaranteed not to exist, used for the 1% "bad item" case.
INVALID_ITEM_ID = 10_000_000


class TpccGenerator(WorkloadGenerator):
    """Generates TPC-C procedure requests."""

    benchmark = "tpcc"

    DEFAULT_MIX = (
        ("neworder", 0.45),
        ("payment", 0.43),
        ("orderstatus", 0.04),
        ("delivery", 0.04),
        ("stocklevel", 0.04),
    )

    def __init__(
        self,
        catalog: Catalog,
        config: TpccConfig,
        rng: WorkloadRandom | None = None,
        mix=None,
    ) -> None:
        super().__init__(catalog, rng)
        self.config = config
        self._mix = tuple(mix) if mix is not None else self.DEFAULT_MIX

    # ------------------------------------------------------------------
    @property
    def mix(self):
        return self._mix

    def next_request(self) -> ProcedureRequest:
        procedure = self.rng.weighted_choice(self._mix)
        builder = getattr(self, f"_make_{procedure}")
        return builder()

    def home_partition(self, request: ProcedureRequest) -> PartitionId:
        """The home warehouse's partition (always the first parameter)."""
        return self.catalog.scheme.partition_for_value(request.parameters[0])

    # ------------------------------------------------------------------
    # Per-procedure builders
    # ------------------------------------------------------------------
    def _random_warehouse(self) -> int:
        return self.rng.integer(0, self.config.num_warehouses - 1)

    def _random_district(self) -> int:
        return self.rng.integer(0, self.config.districts_per_warehouse - 1)

    def _random_customer(self) -> int:
        return self.rng.integer(0, self.config.customers_per_district - 1)

    def _random_item(self) -> int:
        return self.rng.nurand(255, 0, self.config.items - 1)

    def _make_neworder(self) -> ProcedureRequest:
        w_id = self._random_warehouse()
        d_id = self._random_district()
        c_id = self._random_customer()
        line_count = self.rng.integer(5, 15)
        i_ids = []
        i_w_ids = []
        i_qtys = []
        for _ in range(line_count):
            i_ids.append(self._random_item())
            if (
                self.config.num_warehouses > 1
                and self.rng.probability(self.config.remote_item_probability)
            ):
                remote = w_id
                while remote == w_id:
                    remote = self._random_warehouse()
                i_w_ids.append(remote)
            else:
                i_w_ids.append(w_id)
            i_qtys.append(self.rng.integer(1, 10))
        if self.rng.probability(self.config.invalid_item_probability):
            i_ids[-1] = INVALID_ITEM_ID
        return ProcedureRequest.of(
            "neworder", (w_id, d_id, c_id, tuple(i_ids), tuple(i_w_ids), tuple(i_qtys))
        )

    def _make_payment(self) -> ProcedureRequest:
        w_id = self._random_warehouse()
        d_id = self._random_district()
        if (
            self.config.num_warehouses > 1
            and self.rng.probability(self.config.remote_payment_probability)
        ):
            c_w_id = w_id
            while c_w_id == w_id:
                c_w_id = self._random_warehouse()
            c_d_id = self._random_district()
        else:
            c_w_id = w_id
            c_d_id = d_id
        c_id = self._random_customer()
        amount = round(self.rng.floating(1.0, 5000.0), 2)
        return ProcedureRequest.of("payment", (w_id, d_id, c_w_id, c_d_id, c_id, amount))

    def _make_orderstatus(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "orderstatus",
            (self._random_warehouse(), self._random_district(), self._random_customer()),
        )

    def _make_delivery(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "delivery",
            (
                self._random_warehouse(),
                self.rng.integer(1, 10),
                self.config.districts_per_warehouse,
            ),
        )

    def _make_stocklevel(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "stocklevel",
            (self._random_warehouse(), self._random_district(), self.rng.integer(10, 20)),
        )


class NewOrderOnlyGenerator(TpccGenerator):
    """Generator used by the Fig. 3 motivating experiment (NewOrder only)."""

    def __init__(self, catalog: Catalog, config: TpccConfig, rng: WorkloadRandom | None = None) -> None:
        super().__init__(catalog, config, rng, mix=(("neworder", 1.0),))
