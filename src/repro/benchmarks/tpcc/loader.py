"""TPC-C data loader.

Populates warehouses, districts, customers, items, stock and a handful of
initial orders so that every stored procedure finds the rows it expects.
Warehouse ids are assigned so that warehouse ``w`` lives on partition
``w % num_partitions``, giving the clean one-warehouse-per-partition layout
the paper's experiments assume.
"""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...storage.partition_store import Database
from ...workload.rng import WorkloadRandom
from .schema import TpccConfig


def load(catalog: Catalog, database: Database, config: TpccConfig, rng: WorkloadRandom) -> None:
    """Populate ``database`` with a deterministic TPC-C data set."""
    estimator = catalog.estimator
    _load_items(catalog, database, config, rng, estimator)
    for w_id in range(config.num_warehouses):
        _load_warehouse(catalog, database, config, rng, estimator, w_id)


def _load_items(catalog, database, config, rng, estimator) -> None:
    for i_id in range(config.items):
        database.load_row("ITEM", {
            "I_ID": i_id,
            "I_NAME": f"item-{i_id}",
            "I_PRICE": round(rng.floating(1.0, 100.0), 2),
        }, estimator)


def _load_warehouse(catalog, database, config, rng, estimator, w_id: int) -> None:
    database.load_row("WAREHOUSE", {
        "W_ID": w_id,
        "W_NAME": f"warehouse-{w_id}",
        "W_TAX": round(rng.floating(0.0, 0.2), 4),
        "W_YTD": 300000.0,
    }, estimator)
    for i_id in range(config.items):
        database.load_row("STOCK", {
            "S_W_ID": w_id,
            "S_I_ID": i_id,
            "S_QUANTITY": rng.integer(10, 100),
            "S_YTD": 0,
            "S_ORDER_CNT": 0,
            "S_REMOTE_CNT": 0,
        }, estimator)
    for d_id in range(config.districts_per_warehouse):
        _load_district(catalog, database, config, rng, estimator, w_id, d_id)


def _load_district(catalog, database, config, rng, estimator, w_id: int, d_id: int) -> None:
    next_order_id = config.initial_orders_per_district
    database.load_row("DISTRICT", {
        "D_W_ID": w_id,
        "D_ID": d_id,
        "D_NAME": f"district-{w_id}-{d_id}",
        "D_TAX": round(rng.floating(0.0, 0.2), 4),
        "D_YTD": 30000.0,
        "D_NEXT_O_ID": next_order_id,
    }, estimator)
    for c_id in range(config.customers_per_district):
        database.load_row("CUSTOMER", {
            "C_W_ID": w_id,
            "C_D_ID": d_id,
            "C_ID": c_id,
            "C_LAST": f"customer-{c_id}",
            "C_CREDIT": "BC" if rng.probability(0.10) else "GC",
            "C_DISCOUNT": round(rng.floating(0.0, 0.5), 4),
            "C_BALANCE": -10.0,
            "C_YTD_PAYMENT": 10.0,
            "C_PAYMENT_CNT": 1,
            "C_DELIVERY_CNT": 0,
            "C_DATA": "initial",
        }, estimator)
    for o_id in range(config.initial_orders_per_district):
        _load_order(catalog, database, config, rng, estimator, w_id, d_id, o_id)


def _load_order(catalog, database, config, rng, estimator, w_id: int, d_id: int, o_id: int) -> None:
    customer_id = rng.integer(0, config.customers_per_district - 1)
    line_count = rng.integer(3, 8)
    # Half of the initial orders are still undelivered so Delivery has work.
    delivered = o_id < config.initial_orders_per_district // 2
    database.load_row("ORDERS", {
        "O_W_ID": w_id,
        "O_D_ID": d_id,
        "O_ID": o_id,
        "O_C_ID": customer_id,
        "O_CARRIER_ID": rng.integer(1, 10) if delivered else None,
        "O_OL_CNT": line_count,
    }, estimator)
    if not delivered:
        database.load_row("NEW_ORDER", {
            "NO_W_ID": w_id,
            "NO_D_ID": d_id,
            "NO_O_ID": o_id,
        }, estimator)
    for number in range(1, line_count + 1):
        database.load_row("ORDER_LINE", {
            "OL_W_ID": w_id,
            "OL_D_ID": d_id,
            "OL_O_ID": o_id,
            "OL_NUMBER": number,
            "OL_I_ID": rng.integer(0, config.items - 1),
            "OL_SUPPLY_W_ID": w_id,
            "OL_QUANTITY": rng.integer(1, 10),
            "OL_AMOUNT": round(rng.floating(1.0, 300.0), 2),
            "OL_DELIVERY_D": 1 if delivered else None,
        }, estimator)
