"""TPC-C stored procedures.

Five procedures, mirroring the paper's description (Section 6.1): the two
most-executed procedures (NewOrder, Payment) vary in whether they touch
multiple partitions, OrderStatus and StockLevel are read-only and
single-partitioned, and Delivery is a long single-partition transaction.

The control code follows the shape of Fig. 2: parameterized statements
declared up front, loops and conditionals in Python, user aborts for the
"invalid item" NewOrder case.
"""

from __future__ import annotations

from typing import Any

from ...catalog.procedure import ExecutionContext, ProcedureParameter, StoredProcedure
from ...catalog.statement import Operation, Statement, delta, param


class NewOrder(StoredProcedure):
    """Create a new order, checking and updating stock for every item.

    Parameters: ``(w_id, d_id, c_id, i_ids[], i_w_ids[], i_qtys[])`` — the
    same signature as Fig. 2 of the paper.  Roughly 90% of invocations source
    all items from the home warehouse and are single-partitioned; about 1%
    reference an invalid item and abort after having performed writes.
    """

    name = "neworder"
    parameters = (
        ProcedureParameter("w_id"),
        ProcedureParameter("d_id"),
        ProcedureParameter("c_id"),
        ProcedureParameter("i_ids", is_array=True),
        ProcedureParameter("i_w_ids", is_array=True),
        ProcedureParameter("i_qtys", is_array=True),
    )
    statements = {
        "GetWarehouse": Statement(
            name="GetWarehouse", table="WAREHOUSE", operation=Operation.SELECT,
            where={"W_ID": param(0)}, output_columns=("W_TAX",),
        ),
        "GetDistrict": Statement(
            name="GetDistrict", table="DISTRICT", operation=Operation.SELECT,
            where={"D_W_ID": param(0), "D_ID": param(1)},
            output_columns=("D_TAX", "D_NEXT_O_ID"),
        ),
        "UpdateDistrict": Statement(
            name="UpdateDistrict", table="DISTRICT", operation=Operation.UPDATE,
            where={"D_W_ID": param(0), "D_ID": param(1)},
            set_values={"D_NEXT_O_ID": delta(2)},
        ),
        "GetCustomer": Statement(
            name="GetCustomer", table="CUSTOMER", operation=Operation.SELECT,
            where={"C_W_ID": param(0), "C_D_ID": param(1), "C_ID": param(2)},
            output_columns=("C_DISCOUNT", "C_LAST", "C_CREDIT"),
        ),
        "GetItem": Statement(
            name="GetItem", table="ITEM", operation=Operation.SELECT,
            where={"I_ID": param(0)}, output_columns=("I_PRICE", "I_NAME"),
        ),
        "CheckStock": Statement(
            name="CheckStock", table="STOCK", operation=Operation.SELECT,
            where={"S_W_ID": param(1), "S_I_ID": param(0)},
            output_columns=("S_QUANTITY",),
        ),
        "UpdateStock": Statement(
            name="UpdateStock", table="STOCK", operation=Operation.UPDATE,
            where={"S_W_ID": param(1), "S_I_ID": param(0)},
            set_values={
                "S_QUANTITY": param(2),
                "S_YTD": delta(3),
                "S_ORDER_CNT": delta(4),
                "S_REMOTE_CNT": delta(5),
            },
        ),
        "InsertOrder": Statement(
            name="InsertOrder", table="ORDERS", operation=Operation.INSERT,
            insert_values={
                "O_W_ID": param(0), "O_D_ID": param(1), "O_ID": param(2),
                "O_C_ID": param(3), "O_CARRIER_ID": None, "O_OL_CNT": param(4),
            },
        ),
        "InsertNewOrder": Statement(
            name="InsertNewOrder", table="NEW_ORDER", operation=Operation.INSERT,
            insert_values={"NO_W_ID": param(0), "NO_D_ID": param(1), "NO_O_ID": param(2)},
        ),
        "InsertOrdLine": Statement(
            name="InsertOrdLine", table="ORDER_LINE", operation=Operation.INSERT,
            insert_values={
                "OL_W_ID": param(0), "OL_D_ID": param(1), "OL_O_ID": param(2),
                "OL_NUMBER": param(3), "OL_I_ID": param(4), "OL_SUPPLY_W_ID": param(5),
                "OL_QUANTITY": param(6), "OL_AMOUNT": param(7), "OL_DELIVERY_D": None,
            },
        ),
    }

    def run(self, ctx: ExecutionContext, w_id, d_id, c_id, i_ids, i_w_ids, i_qtys) -> Any:
        ctx.execute("GetWarehouse", [w_id])
        district = ctx.execute("GetDistrict", [w_id, d_id])
        order_id = district[0]["D_NEXT_O_ID"]
        ctx.execute("GetCustomer", [w_id, d_id, c_id])
        # Per the TPC-C specification the item data (and the "unused item id"
        # rollback) is resolved before the order is materialized; all user
        # aborts therefore happen before any write is performed.
        prices: list[float] = []
        for item_id in i_ids:
            items = ctx.execute("GetItem", [item_id])
            if not items:
                ctx.abort("invalid item id")
            prices.append(items[0]["I_PRICE"])
        ctx.execute("UpdateDistrict", [w_id, d_id, 1])
        total = 0.0
        for index, item_id in enumerate(i_ids):
            supply_w_id = i_w_ids[index]
            quantity = i_qtys[index]
            stock = ctx.execute("CheckStock", [item_id, supply_w_id])
            current_quantity = stock[0]["S_QUANTITY"]
            if current_quantity - quantity >= 10:
                new_quantity = current_quantity - quantity
            else:
                new_quantity = current_quantity - quantity + 91
            remote = 0 if supply_w_id == w_id else 1
            ctx.execute(
                "UpdateStock", [item_id, supply_w_id, new_quantity, quantity, 1, remote]
            )
            amount = quantity * prices[index]
            total += amount
            ctx.execute(
                "InsertOrdLine",
                [w_id, d_id, order_id, index + 1, item_id, supply_w_id, quantity, amount],
            )
        ctx.execute("InsertOrder", [w_id, d_id, order_id, c_id, len(i_ids)])
        ctx.execute("InsertNewOrder", [w_id, d_id, order_id])
        return {"order_id": order_id, "total": total}


class Payment(StoredProcedure):
    """Record a customer payment, updating warehouse/district/customer YTD.

    Parameters: ``(w_id, d_id, c_w_id, c_d_id, c_id, h_amount)``.  About 15%
    of invocations pay through a customer belonging to a *remote* warehouse,
    making the transaction distributed across two partitions (the behaviour
    the paper highlights for OP2).  Bad-credit customers (~10%) take a
    different update path, which produces the conditional branch visible in
    Fig. 10b's Markov model.
    """

    name = "payment"
    parameters = (
        ProcedureParameter("w_id"),
        ProcedureParameter("d_id"),
        ProcedureParameter("c_w_id"),
        ProcedureParameter("c_d_id"),
        ProcedureParameter("c_id"),
        ProcedureParameter("h_amount"),
    )
    statements = {
        "GetCustomer": Statement(
            name="GetCustomer", table="CUSTOMER", operation=Operation.SELECT,
            where={"C_W_ID": param(0), "C_D_ID": param(1), "C_ID": param(2)},
            output_columns=("C_BALANCE", "C_CREDIT", "C_DATA"),
        ),
        "GetWarehouse": Statement(
            name="GetWarehouse", table="WAREHOUSE", operation=Operation.SELECT,
            where={"W_ID": param(0)}, output_columns=("W_NAME", "W_YTD"),
        ),
        "UpdateWarehouseBalance": Statement(
            name="UpdateWarehouseBalance", table="WAREHOUSE", operation=Operation.UPDATE,
            where={"W_ID": param(0)}, set_values={"W_YTD": delta(1)},
        ),
        "GetDistrict": Statement(
            name="GetDistrict", table="DISTRICT", operation=Operation.SELECT,
            where={"D_W_ID": param(0), "D_ID": param(1)}, output_columns=("D_NAME", "D_YTD"),
        ),
        "UpdateDistrictBalance": Statement(
            name="UpdateDistrictBalance", table="DISTRICT", operation=Operation.UPDATE,
            where={"D_W_ID": param(0), "D_ID": param(1)}, set_values={"D_YTD": delta(2)},
        ),
        "UpdateGCCustomer": Statement(
            name="UpdateGCCustomer", table="CUSTOMER", operation=Operation.UPDATE,
            where={"C_W_ID": param(0), "C_D_ID": param(1), "C_ID": param(2)},
            set_values={
                "C_BALANCE": delta(3), "C_YTD_PAYMENT": delta(4), "C_PAYMENT_CNT": delta(5),
            },
        ),
        "UpdateBCCustomer": Statement(
            name="UpdateBCCustomer", table="CUSTOMER", operation=Operation.UPDATE,
            where={"C_W_ID": param(0), "C_D_ID": param(1), "C_ID": param(2)},
            set_values={
                "C_BALANCE": delta(3), "C_YTD_PAYMENT": delta(4), "C_PAYMENT_CNT": delta(5),
                "C_DATA": param(6),
            },
        ),
        "InsertHistory": Statement(
            name="InsertHistory", table="HISTORY", operation=Operation.INSERT,
            insert_values={
                "H_C_ID": param(0), "H_C_D_ID": param(1), "H_C_W_ID": param(2),
                "H_D_ID": param(3), "H_W_ID": param(4), "H_AMOUNT": param(5),
            },
        ),
    }

    def run(self, ctx: ExecutionContext, w_id, d_id, c_w_id, c_d_id, c_id, h_amount) -> Any:
        customer = ctx.execute("GetCustomer", [c_w_id, c_d_id, c_id])
        ctx.execute("GetWarehouse", [w_id])
        ctx.execute("UpdateWarehouseBalance", [w_id, h_amount])
        ctx.execute("GetDistrict", [w_id, d_id])
        ctx.execute("UpdateDistrictBalance", [w_id, d_id, h_amount])
        credit = customer[0]["C_CREDIT"]
        if credit == "BC":
            new_data = f"{c_id} {c_d_id} {c_w_id} {d_id} {w_id} {h_amount:.2f}"
            ctx.execute(
                "UpdateBCCustomer", [c_w_id, c_d_id, c_id, -h_amount, h_amount, 1, new_data]
            )
        else:
            ctx.execute("UpdateGCCustomer", [c_w_id, c_d_id, c_id, -h_amount, h_amount, 1])
        ctx.execute("InsertHistory", [c_id, c_d_id, c_w_id, d_id, w_id, h_amount])
        return {"balance": customer[0]["C_BALANCE"] - h_amount}


class OrderStatus(StoredProcedure):
    """Read a customer's most recent order and its order lines (read-only)."""

    name = "orderstatus"
    read_only = True
    parameters = (
        ProcedureParameter("w_id"),
        ProcedureParameter("d_id"),
        ProcedureParameter("c_id"),
    )
    statements = {
        "GetCustomer": Statement(
            name="GetCustomer", table="CUSTOMER", operation=Operation.SELECT,
            where={"C_W_ID": param(0), "C_D_ID": param(1), "C_ID": param(2)},
            output_columns=("C_BALANCE", "C_LAST"),
        ),
        "GetLastOrder": Statement(
            name="GetLastOrder", table="ORDERS", operation=Operation.SELECT,
            where={"O_W_ID": param(0), "O_D_ID": param(1), "O_C_ID": param(2)},
            order_by=("O_ID", True), limit=1,
        ),
        "GetOrderLines": Statement(
            name="GetOrderLines", table="ORDER_LINE", operation=Operation.SELECT,
            where={"OL_W_ID": param(0), "OL_D_ID": param(1), "OL_O_ID": param(2)},
            output_columns=("OL_I_ID", "OL_QUANTITY", "OL_AMOUNT"),
        ),
    }

    def run(self, ctx: ExecutionContext, w_id, d_id, c_id) -> Any:
        customer = ctx.execute("GetCustomer", [w_id, d_id, c_id])
        orders = ctx.execute("GetLastOrder", [w_id, d_id, c_id])
        lines: list[dict[str, Any]] = []
        if orders:
            lines = ctx.execute("GetOrderLines", [w_id, d_id, orders[0]["O_ID"]])
        return {"customer": customer[0]["C_LAST"], "lines": len(lines)}


class Delivery(StoredProcedure):
    """Deliver the oldest undelivered order in each district of a warehouse.

    A long, write-heavy, strictly single-partition transaction — the paper
    notes its estimates take ~4 ms against a ~40 ms execution, so Houdini's
    overhead is proportionally small.
    """

    name = "delivery"
    parameters = (
        ProcedureParameter("w_id"),
        ProcedureParameter("o_carrier_id"),
        ProcedureParameter("district_count"),
    )
    statements = {
        "GetNewOrder": Statement(
            name="GetNewOrder", table="NEW_ORDER", operation=Operation.SELECT,
            where={"NO_W_ID": param(0), "NO_D_ID": param(1)},
            order_by=("NO_O_ID", False), limit=1,
        ),
        "DeleteNewOrder": Statement(
            name="DeleteNewOrder", table="NEW_ORDER", operation=Operation.DELETE,
            where={"NO_W_ID": param(0), "NO_D_ID": param(1), "NO_O_ID": param(2)},
        ),
        "GetOrder": Statement(
            name="GetOrder", table="ORDERS", operation=Operation.SELECT,
            where={"O_W_ID": param(0), "O_D_ID": param(1), "O_ID": param(2)},
            output_columns=("O_C_ID", "O_OL_CNT"),
        ),
        "UpdateOrderCarrier": Statement(
            name="UpdateOrderCarrier", table="ORDERS", operation=Operation.UPDATE,
            where={"O_W_ID": param(0), "O_D_ID": param(1), "O_ID": param(2)},
            set_values={"O_CARRIER_ID": param(3)},
        ),
        "GetOrderLines": Statement(
            name="GetOrderLines", table="ORDER_LINE", operation=Operation.SELECT,
            where={"OL_W_ID": param(0), "OL_D_ID": param(1), "OL_O_ID": param(2)},
            output_columns=("OL_AMOUNT",),
        ),
        "UpdateOrderLines": Statement(
            name="UpdateOrderLines", table="ORDER_LINE", operation=Operation.UPDATE,
            where={"OL_W_ID": param(0), "OL_D_ID": param(1), "OL_O_ID": param(2)},
            set_values={"OL_DELIVERY_D": param(3)},
        ),
        "UpdateCustomerDelivery": Statement(
            name="UpdateCustomerDelivery", table="CUSTOMER", operation=Operation.UPDATE,
            where={"C_W_ID": param(0), "C_D_ID": param(1), "C_ID": param(2)},
            set_values={"C_BALANCE": delta(3), "C_DELIVERY_CNT": delta(4)},
        ),
    }

    def run(self, ctx: ExecutionContext, w_id, o_carrier_id, district_count) -> Any:
        delivered = 0
        for d_id in range(district_count):
            new_orders = ctx.execute("GetNewOrder", [w_id, d_id])
            if not new_orders:
                continue
            order_id = new_orders[0]["NO_O_ID"]
            ctx.execute("DeleteNewOrder", [w_id, d_id, order_id])
            order = ctx.execute("GetOrder", [w_id, d_id, order_id])
            ctx.execute("UpdateOrderCarrier", [w_id, d_id, order_id, o_carrier_id])
            lines = ctx.execute("GetOrderLines", [w_id, d_id, order_id])
            total = sum(line["OL_AMOUNT"] for line in lines)
            ctx.execute("UpdateOrderLines", [w_id, d_id, order_id, 1])
            ctx.execute(
                "UpdateCustomerDelivery", [w_id, d_id, order[0]["O_C_ID"], total, 1]
            )
            delivered += 1
        return {"delivered": delivered}


class StockLevel(StoredProcedure):
    """Count items below a stock threshold for a district (read-only)."""

    name = "stocklevel"
    read_only = True
    parameters = (
        ProcedureParameter("w_id"),
        ProcedureParameter("d_id"),
        ProcedureParameter("threshold"),
    )
    statements = {
        "GetDistrict": Statement(
            name="GetDistrict", table="DISTRICT", operation=Operation.SELECT,
            where={"D_W_ID": param(0), "D_ID": param(1)},
            output_columns=("D_NEXT_O_ID",),
        ),
        "GetRecentOrderLines": Statement(
            name="GetRecentOrderLines", table="ORDER_LINE", operation=Operation.SELECT,
            where={"OL_W_ID": param(0), "OL_D_ID": param(1)},
            output_columns=("OL_O_ID", "OL_I_ID"),
        ),
        "GetStockQuantity": Statement(
            name="GetStockQuantity", table="STOCK", operation=Operation.SELECT,
            where={"S_W_ID": param(0), "S_I_ID": param(1)},
            output_columns=("S_QUANTITY",),
        ),
    }

    def run(self, ctx: ExecutionContext, w_id, d_id, threshold) -> Any:
        district = ctx.execute("GetDistrict", [w_id, d_id])
        next_order_id = district[0]["D_NEXT_O_ID"]
        lines = ctx.execute("GetRecentOrderLines", [w_id, d_id])
        recent_items = {
            line["OL_I_ID"] for line in lines if line["OL_O_ID"] >= next_order_id - 20
        }
        low_stock = 0
        for item_id in sorted(recent_items)[:10]:
            stock = ctx.execute("GetStockQuantity", [w_id, item_id])
            if stock and stock[0]["S_QUANTITY"] < threshold:
                low_stock += 1
        return {"low_stock": low_stock}


def make_procedures() -> list[StoredProcedure]:
    """All five TPC-C stored procedures."""
    return [NewOrder(), Payment(), OrderStatus(), Delivery(), StockLevel()]
