"""Common benchmark plumbing.

Every benchmark (TATP, TPC-C, AuctionMark) exposes the same bundle of pieces
so that experiments can be written generically:

* a catalog factory (schema + stored procedures + partitioning scheme),
* a data loader that populates a :class:`~repro.storage.Database`,
* a workload generator,
* a home-partition function used by the trace recorder and oracle strategy.

:func:`repro.benchmarks.get_benchmark` returns the bundle by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..catalog.schema import Catalog
from ..storage.partition_store import Database
from ..workload.generator import WorkloadGenerator
from ..workload.rng import WorkloadRandom

#: Factory signatures used by the registry.
CatalogFactory = Callable[..., Catalog]
LoaderFn = Callable[[Catalog, Database, Any, WorkloadRandom], None]
GeneratorFactory = Callable[..., WorkloadGenerator]


@dataclass
class BenchmarkBundle:
    """Everything needed to run one benchmark end to end."""

    name: str
    make_catalog: CatalogFactory
    make_config: Callable[..., Any]
    load: LoaderFn
    make_generator: GeneratorFactory
    description: str = ""
    #: Procedures for which Houdini is disabled (paper §6.4 disables it for
    #: AuctionMark's CheckWinningBids because of its >175 queries).
    houdini_disabled_procedures: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    def build(
        self,
        num_partitions: int,
        *,
        partitions_per_node: int = 2,
        seed: int = 0,
        config_overrides: Mapping[str, Any] | None = None,
    ) -> "BenchmarkInstance":
        """Create a catalog, populate a database and build a generator."""
        config = self.make_config(num_partitions=num_partitions, **(config_overrides or {}))
        catalog = self.make_catalog(
            num_partitions=num_partitions,
            partitions_per_node=partitions_per_node,
        )
        database = Database(catalog.schema, num_partitions)
        loader_rng = WorkloadRandom(seed)
        self.load(catalog, database, config, loader_rng)
        generator = self.make_generator(catalog, config, WorkloadRandom(seed + 1))
        return BenchmarkInstance(
            bundle=self,
            catalog=catalog,
            database=database,
            generator=generator,
            config=config,
        )


@dataclass
class BenchmarkInstance:
    """A built benchmark: populated database plus request generator."""

    bundle: BenchmarkBundle
    catalog: Catalog
    database: Database
    generator: WorkloadGenerator
    config: Any = None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.bundle.name

    def home_partition(self, request) -> int:
        return self.generator.home_partition(request)
