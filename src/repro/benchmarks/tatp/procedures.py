"""TATP stored procedures.

Seven procedures (paper §6.1): four are always single-partitioned (the
subscriber id is an input parameter), and three — UpdateLocation,
InsertCallForwarding, DeleteCallForwarding — first execute a *broadcast*
query that looks up the subscriber id from the ``SUB_NBR`` string (a column
the tables are not partitioned on) and then operate on a single partition
determined by that lookup's result.  Houdini cannot predict that partition
from the input parameters, which is why the paper reports ~95% OP1 accuracy
for TATP rather than 100%.
"""

from __future__ import annotations

from typing import Any

from ...catalog.procedure import ExecutionContext, ProcedureParameter, StoredProcedure
from ...catalog.statement import Operation, Statement, param
from ...errors import UserAbort


class GetSubscriberData(StoredProcedure):
    """Read a subscriber row by id (always single-partitioned, read-only)."""

    name = "GetSubscriberData"
    read_only = True
    parameters = (ProcedureParameter("s_id"),)
    statements = {
        "GetSubscriber": Statement(
            name="GetSubscriber", table="SUBSCRIBER", operation=Operation.SELECT,
            where={"S_ID": param(0)},
        ),
    }

    def run(self, ctx: ExecutionContext, s_id) -> Any:
        rows = ctx.execute("GetSubscriber", [s_id])
        return rows[0] if rows else None


class GetAccessData(StoredProcedure):
    """Read one access-info row (always single-partitioned, read-only)."""

    name = "GetAccessData"
    read_only = True
    parameters = (ProcedureParameter("s_id"), ProcedureParameter("ai_type"))
    statements = {
        "GetAccessInfo": Statement(
            name="GetAccessInfo", table="ACCESS_INFO", operation=Operation.SELECT,
            where={"AI_S_ID": param(0), "AI_TYPE": param(1)},
            output_columns=("DATA1", "DATA3"),
        ),
    }

    def run(self, ctx: ExecutionContext, s_id, ai_type) -> Any:
        rows = ctx.execute("GetAccessInfo", [s_id, ai_type])
        return rows[0] if rows else None


class GetNewDestination(StoredProcedure):
    """Find active call-forwarding destinations (single-partitioned)."""

    name = "GetNewDestination"
    read_only = True
    parameters = (
        ProcedureParameter("s_id"),
        ProcedureParameter("sf_type"),
        ProcedureParameter("start_time"),
        ProcedureParameter("end_time"),
    )
    statements = {
        "GetSpecialFacility": Statement(
            name="GetSpecialFacility", table="SPECIAL_FACILITY", operation=Operation.SELECT,
            where={"SF_S_ID": param(0), "SF_TYPE": param(1)},
            output_columns=("IS_ACTIVE",),
        ),
        "GetCallForwarding": Statement(
            name="GetCallForwarding", table="CALL_FORWARDING", operation=Operation.SELECT,
            where={"CF_S_ID": param(0), "CF_SF_TYPE": param(1)},
            output_columns=("START_TIME", "END_TIME", "NUMBERX"),
        ),
    }

    def run(self, ctx: ExecutionContext, s_id, sf_type, start_time, end_time) -> Any:
        facilities = ctx.execute("GetSpecialFacility", [s_id, sf_type])
        if not facilities or not facilities[0]["IS_ACTIVE"]:
            return []
        forwardings = ctx.execute("GetCallForwarding", [s_id, sf_type])
        return [
            row["NUMBERX"]
            for row in forwardings
            if row["START_TIME"] <= start_time and row["END_TIME"] > end_time
        ]


class UpdateSubscriberData(StoredProcedure):
    """Update subscriber and special-facility rows (single-partitioned)."""

    name = "UpdateSubscriberData"
    parameters = (
        ProcedureParameter("s_id"),
        ProcedureParameter("bit_1"),
        ProcedureParameter("sf_type"),
        ProcedureParameter("data_a"),
    )
    statements = {
        "UpdateSubscriberBit": Statement(
            name="UpdateSubscriberBit", table="SUBSCRIBER", operation=Operation.UPDATE,
            where={"S_ID": param(0)}, set_values={"BIT_1": param(1)},
        ),
        "UpdateSpecialFacility": Statement(
            name="UpdateSpecialFacility", table="SPECIAL_FACILITY", operation=Operation.UPDATE,
            where={"SF_S_ID": param(0), "SF_TYPE": param(1)}, set_values={"DATA_A": param(2)},
        ),
    }

    def run(self, ctx: ExecutionContext, s_id, bit_1, sf_type, data_a) -> Any:
        ctx.execute("UpdateSubscriberBit", [s_id, bit_1])
        ctx.execute("UpdateSpecialFacility", [s_id, sf_type, data_a])
        return True


class UpdateLocation(StoredProcedure):
    """Update a subscriber's location, addressed by SUB_NBR.

    The first query is a broadcast (the tables are not partitioned on
    SUB_NBR); the second touches only the partition owning the subscriber
    found by that broadcast — a partition Houdini cannot know in advance.
    """

    name = "UpdateLocation"
    parameters = (ProcedureParameter("sub_nbr"), ProcedureParameter("vlr_location"))
    statements = {
        "GetSubscriberByNumber": Statement(
            name="GetSubscriberByNumber", table="SUBSCRIBER", operation=Operation.SELECT,
            where={"SUB_NBR": param(0)}, output_columns=("S_ID",),
        ),
        "UpdateSubscriberLocation": Statement(
            name="UpdateSubscriberLocation", table="SUBSCRIBER", operation=Operation.UPDATE,
            where={"S_ID": param(0)}, set_values={"VLR_LOCATION": param(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, sub_nbr, vlr_location) -> Any:
        rows = ctx.execute("GetSubscriberByNumber", [sub_nbr])
        if not rows:
            raise UserAbort("unknown subscriber number")
        s_id = rows[0]["S_ID"]
        ctx.execute("UpdateSubscriberLocation", [s_id, vlr_location])
        return s_id


class InsertCallForwarding(StoredProcedure):
    """Insert a call-forwarding record, addressed by SUB_NBR (Fig. 10a)."""

    name = "InsertCallForwarding"
    parameters = (
        ProcedureParameter("sub_nbr"),
        ProcedureParameter("sf_type"),
        ProcedureParameter("start_time"),
        ProcedureParameter("end_time"),
        ProcedureParameter("numberx"),
    )
    statements = {
        "GetSubscriberByNumber": Statement(
            name="GetSubscriberByNumber", table="SUBSCRIBER", operation=Operation.SELECT,
            where={"SUB_NBR": param(0)}, output_columns=("S_ID",),
        ),
        "GetSpecialFacilityType": Statement(
            name="GetSpecialFacilityType", table="SPECIAL_FACILITY", operation=Operation.SELECT,
            where={"SF_S_ID": param(0)}, output_columns=("SF_TYPE",),
        ),
        "CheckCallForwarding": Statement(
            name="CheckCallForwarding", table="CALL_FORWARDING", operation=Operation.SELECT,
            where={"CF_S_ID": param(0), "CF_SF_TYPE": param(1)},
            output_columns=("START_TIME",),
        ),
        "InsertCallForwarding": Statement(
            name="InsertCallForwarding", table="CALL_FORWARDING", operation=Operation.INSERT,
            insert_values={
                "CF_S_ID": param(0), "CF_SF_TYPE": param(1), "START_TIME": param(2),
                "END_TIME": param(3), "NUMBERX": param(4),
            },
        ),
    }

    def run(self, ctx: ExecutionContext, sub_nbr, sf_type, start_time, end_time, numberx) -> Any:
        rows = ctx.execute("GetSubscriberByNumber", [sub_nbr])
        if not rows:
            raise UserAbort("unknown subscriber number")
        s_id = rows[0]["S_ID"]
        facilities = ctx.execute("GetSpecialFacilityType", [s_id])
        types = {row["SF_TYPE"] for row in facilities}
        if sf_type not in types:
            raise UserAbort("no such special facility")
        existing = ctx.execute("CheckCallForwarding", [s_id, sf_type])
        if any(row["START_TIME"] == start_time for row in existing):
            # TATP specifies that inserting an already-present forwarding slot
            # fails; the transaction rolls back (a legitimate user abort).
            raise UserAbort("call forwarding record already exists")
        ctx.execute(
            "InsertCallForwarding", [s_id, sf_type, start_time, end_time, numberx]
        )
        return s_id


class DeleteCallForwarding(StoredProcedure):
    """Delete a call-forwarding record, addressed by SUB_NBR."""

    name = "DeleteCallForwarding"
    parameters = (
        ProcedureParameter("sub_nbr"),
        ProcedureParameter("sf_type"),
        ProcedureParameter("start_time"),
    )
    statements = {
        "GetSubscriberByNumber": Statement(
            name="GetSubscriberByNumber", table="SUBSCRIBER", operation=Operation.SELECT,
            where={"SUB_NBR": param(0)}, output_columns=("S_ID",),
        ),
        "DeleteCallForwarding": Statement(
            name="DeleteCallForwarding", table="CALL_FORWARDING", operation=Operation.DELETE,
            where={"CF_S_ID": param(0), "CF_SF_TYPE": param(1), "START_TIME": param(2)},
        ),
    }

    def run(self, ctx: ExecutionContext, sub_nbr, sf_type, start_time) -> Any:
        rows = ctx.execute("GetSubscriberByNumber", [sub_nbr])
        if not rows:
            raise UserAbort("unknown subscriber number")
        s_id = rows[0]["S_ID"]
        ctx.execute("DeleteCallForwarding", [s_id, sf_type, start_time])
        return s_id


class UpdateSubscriberLocationById(StoredProcedure):
    """Direct-by-id location update (the "UpdateSubscriber" row of Table 4).

    Included so that TATP has the same seven-procedure surface the paper's
    Table 4 reports (procedure "G UpdateSubscriber").
    """

    name = "UpdateSubscriber"
    parameters = (ProcedureParameter("s_id"), ProcedureParameter("vlr_location"))
    statements = {
        "GetSubscriber": Statement(
            name="GetSubscriber", table="SUBSCRIBER", operation=Operation.SELECT,
            where={"S_ID": param(0)}, output_columns=("VLR_LOCATION",),
        ),
        "UpdateSubscriberLocation": Statement(
            name="UpdateSubscriberLocation", table="SUBSCRIBER", operation=Operation.UPDATE,
            where={"S_ID": param(0)}, set_values={"VLR_LOCATION": param(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, s_id, vlr_location) -> Any:
        ctx.execute("GetSubscriber", [s_id])
        ctx.execute("UpdateSubscriberLocation", [s_id, vlr_location])
        return True


def make_procedures() -> list[StoredProcedure]:
    """All seven TATP stored procedures."""
    return [
        DeleteCallForwarding(),
        GetAccessData(),
        GetNewDestination(),
        GetSubscriberData(),
        InsertCallForwarding(),
        UpdateLocation(),
        UpdateSubscriberLocationById(),
    ]
