"""TATP benchmark: telecom subscriber-location workload (paper §6.1)."""

from __future__ import annotations

from ...catalog.partitioning import PartitionScheme
from ...catalog.schema import Catalog
from ..base import BenchmarkBundle
from .generator import TatpGenerator
from .loader import load
from .procedures import make_procedures
from .schema import TatpConfig, make_schema, sub_nbr_for


def make_catalog(num_partitions: int, partitions_per_node: int = 2) -> Catalog:
    scheme = PartitionScheme(num_partitions, partitions_per_node)
    return Catalog(make_schema(), scheme, make_procedures())


def make_config(num_partitions: int, **overrides) -> TatpConfig:
    return TatpConfig(num_partitions=num_partitions, **overrides)


def make_generator(catalog: Catalog, config: TatpConfig, rng) -> TatpGenerator:
    return TatpGenerator(catalog, config, rng)


BUNDLE = BenchmarkBundle(
    name="tatp",
    make_catalog=make_catalog,
    make_config=make_config,
    load=load,
    make_generator=make_generator,
    description="TATP telecom workload: 7 procedures, subscriber-partitioned.",
)

__all__ = [
    "BUNDLE",
    "TatpConfig",
    "make_schema",
    "make_catalog",
    "make_config",
    "make_generator",
    "make_procedures",
    "load",
    "TatpGenerator",
    "sub_nbr_for",
]
