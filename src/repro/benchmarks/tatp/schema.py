"""TATP schema.

The Telecom Application Transaction Processing benchmark models a caller
location / subscriber database.  Every table is partitioned on the subscriber
id (``S_ID``); the subscriber "number" (``SUB_NBR``) is a string the tables
are *not* partitioned on, which is exactly why three of the seven procedures
must start with a broadcast query (paper §6.1 / Fig. 10a).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...catalog.column import integer, string
from ...catalog.schema import Schema
from ...catalog.table import SecondaryIndex, Table


@dataclass
class TatpConfig:
    """Scaling knobs for the TATP reproduction."""

    num_partitions: int = 4
    subscribers_per_partition: int = 100
    special_facilities_per_subscriber: int = 2
    call_forwardings_per_facility: int = 1

    @property
    def num_subscribers(self) -> int:
        return self.num_partitions * self.subscribers_per_partition


def sub_nbr_for(s_id: int) -> str:
    """The string "phone number" associated with a subscriber id."""
    return f"{s_id:015d}"


def make_schema() -> Schema:
    schema = Schema()
    schema.add_table(Table(
        name="SUBSCRIBER",
        columns=[
            integer("S_ID"),
            string("SUB_NBR"),
            integer("BIT_1"),
            integer("VLR_LOCATION"),
        ],
        primary_key=["S_ID"],
        partition_column="S_ID",
        secondary_indexes=[SecondaryIndex("IDX_SUBSCRIBER_NBR", ("SUB_NBR",), unique=True)],
    ))
    schema.add_table(Table(
        name="ACCESS_INFO",
        columns=[
            integer("AI_S_ID"),
            integer("AI_TYPE"),
            integer("DATA1"),
            string("DATA3"),
        ],
        primary_key=["AI_S_ID", "AI_TYPE"],
        partition_column="AI_S_ID",
    ))
    schema.add_table(Table(
        name="SPECIAL_FACILITY",
        columns=[
            integer("SF_S_ID"),
            integer("SF_TYPE"),
            integer("IS_ACTIVE"),
            string("DATA_A"),
        ],
        primary_key=["SF_S_ID", "SF_TYPE"],
        partition_column="SF_S_ID",
    ))
    schema.add_table(Table(
        name="CALL_FORWARDING",
        columns=[
            integer("CF_S_ID"),
            integer("CF_SF_TYPE"),
            integer("START_TIME"),
            integer("END_TIME"),
            string("NUMBERX"),
        ],
        primary_key=["CF_S_ID", "CF_SF_TYPE", "START_TIME"],
        partition_column="CF_S_ID",
    ))
    return schema
