"""TATP data loader."""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...storage.partition_store import Database
from ...workload.rng import WorkloadRandom
from .schema import TatpConfig, sub_nbr_for


def load(catalog: Catalog, database: Database, config: TatpConfig, rng: WorkloadRandom) -> None:
    """Populate subscribers, access info, facilities and call forwardings."""
    estimator = catalog.estimator
    for s_id in range(config.num_subscribers):
        database.load_row("SUBSCRIBER", {
            "S_ID": s_id,
            "SUB_NBR": sub_nbr_for(s_id),
            "BIT_1": rng.integer(0, 1),
            "VLR_LOCATION": rng.integer(0, 2 ** 16),
        }, estimator)
        for ai_type in range(1, rng.integer(1, 4) + 1):
            database.load_row("ACCESS_INFO", {
                "AI_S_ID": s_id,
                "AI_TYPE": ai_type,
                "DATA1": rng.integer(0, 255),
                "DATA3": rng.alphanumeric(3),
            }, estimator)
        for sf_type in range(1, config.special_facilities_per_subscriber + 1):
            database.load_row("SPECIAL_FACILITY", {
                "SF_S_ID": s_id,
                "SF_TYPE": sf_type,
                "IS_ACTIVE": 1 if rng.probability(0.85) else 0,
                "DATA_A": rng.alphanumeric(5),
            }, estimator)
            for slot in range(config.call_forwardings_per_facility):
                database.load_row("CALL_FORWARDING", {
                    "CF_S_ID": s_id,
                    "CF_SF_TYPE": sf_type,
                    "START_TIME": slot * 8,
                    "END_TIME": slot * 8 + 8,
                    "NUMBERX": rng.numeric_string(15),
                }, estimator)
