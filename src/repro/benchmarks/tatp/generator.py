"""TATP request generator.

The default mix matches the paper's characterization: 82% of the workload is
single-partitioned (the read-heavy by-id procedures), and the remaining 18%
are the three SUB_NBR-addressed procedures that begin with a broadcast query
(paper §6.4: "The other 18% first execute a broadcast query on all
partitions").
"""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...types import PartitionId, ProcedureRequest
from ...workload.generator import WorkloadGenerator
from ...workload.rng import WorkloadRandom
from .schema import TatpConfig, sub_nbr_for


class TatpGenerator(WorkloadGenerator):
    """Generates TATP procedure requests."""

    benchmark = "tatp"

    DEFAULT_MIX = (
        ("GetSubscriberData", 0.35),
        ("GetAccessData", 0.35),
        ("GetNewDestination", 0.10),
        ("UpdateSubscriber", 0.02),
        ("UpdateLocation", 0.14),
        ("InsertCallForwarding", 0.02),
        ("DeleteCallForwarding", 0.02),
    )

    def __init__(
        self,
        catalog: Catalog,
        config: TatpConfig,
        rng: WorkloadRandom | None = None,
        mix=None,
    ) -> None:
        super().__init__(catalog, rng)
        self.config = config
        self._mix = tuple(mix) if mix is not None else self.DEFAULT_MIX

    # ------------------------------------------------------------------
    @property
    def mix(self):
        return self._mix

    def next_request(self) -> ProcedureRequest:
        procedure = self.rng.weighted_choice(self._mix)
        builder = getattr(self, f"_make_{procedure}")
        return builder()

    def home_partition(self, request: ProcedureRequest) -> PartitionId:
        """Home partition of the subscriber the request concerns.

        For SUB_NBR-addressed procedures the subscriber id is recovered from
        the (deterministic) number format; a real client would not know this,
        which is precisely the paper's point about those procedures.
        """
        first = request.parameters[0]
        if isinstance(first, str):
            first = int(first)
        return self.catalog.scheme.partition_for_value(first)

    # ------------------------------------------------------------------
    def _random_subscriber(self) -> int:
        return self.rng.integer(0, self.config.num_subscribers - 1)

    def _make_GetSubscriberData(self) -> ProcedureRequest:
        return ProcedureRequest.of("GetSubscriberData", (self._random_subscriber(),))

    def _make_GetAccessData(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "GetAccessData", (self._random_subscriber(), self.rng.integer(1, 4))
        )

    def _make_GetNewDestination(self) -> ProcedureRequest:
        start = self.rng.choice([0, 8, 16])
        return ProcedureRequest.of(
            "GetNewDestination",
            (
                self._random_subscriber(),
                self.rng.integer(1, self.config.special_facilities_per_subscriber),
                start,
                start + self.rng.integer(1, 7),
            ),
        )

    def _make_UpdateSubscriber(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "UpdateSubscriber", (self._random_subscriber(), self.rng.integer(0, 2 ** 16))
        )

    def _make_UpdateLocation(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "UpdateLocation",
            (sub_nbr_for(self._random_subscriber()), self.rng.integer(0, 2 ** 16)),
        )

    def _make_InsertCallForwarding(self) -> ProcedureRequest:
        start = self.rng.choice([0, 8, 16])
        return ProcedureRequest.of(
            "InsertCallForwarding",
            (
                sub_nbr_for(self._random_subscriber()),
                self.rng.integer(1, self.config.special_facilities_per_subscriber),
                start,
                start + self.rng.integer(1, 7),
                self.rng.numeric_string(15),
            ),
        )

    def _make_DeleteCallForwarding(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "DeleteCallForwarding",
            (
                sub_nbr_for(self._random_subscriber()),
                self.rng.integer(1, self.config.special_facilities_per_subscriber),
                self.rng.choice([0, 8, 16]),
            ),
        )
