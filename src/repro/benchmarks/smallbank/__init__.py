"""SmallBank benchmark: two-customer banking mix with a high distributed rate.

Added for workload breadth beyond the paper's three benchmarks: 40% of the
mix names two independently drawn customers, so multi-partition scheduling,
admission control and the OP1/OP2 predictions are exercised far harder than
by TATP (18% broadcast-then-single) or TPC-C (~10% remote).
"""

from __future__ import annotations

from ...catalog.partitioning import PartitionScheme
from ...catalog.schema import Catalog
from ..base import BenchmarkBundle
from .generator import SmallBankGenerator
from .loader import load
from .procedures import make_procedures
from .schema import SmallBankConfig, make_schema


def make_catalog(num_partitions: int, partitions_per_node: int = 2) -> Catalog:
    scheme = PartitionScheme(num_partitions, partitions_per_node)
    return Catalog(make_schema(), scheme, make_procedures())


def make_config(num_partitions: int, **overrides) -> SmallBankConfig:
    return SmallBankConfig(num_partitions=num_partitions, **overrides)


def make_generator(catalog: Catalog, config: SmallBankConfig, rng) -> SmallBankGenerator:
    return SmallBankGenerator(catalog, config, rng)


BUNDLE = BenchmarkBundle(
    name="smallbank",
    make_catalog=make_catalog,
    make_config=make_config,
    load=load,
    make_generator=make_generator,
    description="SmallBank banking workload: 6 procedures, customer-partitioned, "
    "40% two-customer transactions.",
)

__all__ = [
    "BUNDLE",
    "SmallBankConfig",
    "make_schema",
    "make_catalog",
    "make_config",
    "make_generator",
    "make_procedures",
    "load",
    "SmallBankGenerator",
]
