"""SmallBank stored procedures.

The six classic SmallBank transactions.  Four are single-customer (always
single-partitioned under customer-id partitioning); Amalgamate and
SendPayment name *two* customers and become distributed whenever the two ids
hash to different partitions — the partitions are fully predictable from the
input parameters, so Houdini should identify both the base partition and the
two-partition lock set up front.

TransactSavings, WriteCheck and SendPayment can abort on insufficient funds
(legitimate user aborts that exercise undo logging and the OP3 guard).
"""

from __future__ import annotations

from typing import Any

from ...catalog.procedure import ExecutionContext, ProcedureParameter, StoredProcedure
from ...catalog.statement import Operation, Statement, delta, param
from ...errors import UserAbort


class Balance(StoredProcedure):
    """Total balance of one customer (read-only, single-partitioned)."""

    name = "Balance"
    read_only = True
    parameters = (ProcedureParameter("custid"),)
    statements = {
        "GetSavingsBalance": Statement(
            name="GetSavingsBalance", table="SAVINGS", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "GetCheckingBalance": Statement(
            name="GetCheckingBalance", table="CHECKING", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
    }

    def run(self, ctx: ExecutionContext, custid) -> Any:
        savings = ctx.execute("GetSavingsBalance", [custid])
        checking = ctx.execute("GetCheckingBalance", [custid])
        if not savings or not checking:
            raise UserAbort("unknown customer")
        return savings[0]["BAL"] + checking[0]["BAL"]


class DepositChecking(StoredProcedure):
    """Deposit into a checking account (single-partitioned write)."""

    name = "DepositChecking"
    parameters = (ProcedureParameter("custid"), ProcedureParameter("amount"))
    statements = {
        "GetAccount": Statement(
            name="GetAccount", table="ACCOUNTS", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("NAME",),
        ),
        "UpdateCheckingBalance": Statement(
            name="UpdateCheckingBalance", table="CHECKING", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, custid, amount) -> Any:
        if amount < 0:
            raise UserAbort("negative deposit")
        account = ctx.execute("GetAccount", [custid])
        if not account:
            raise UserAbort("unknown customer")
        ctx.execute("UpdateCheckingBalance", [custid, amount])
        return True


class TransactSavings(StoredProcedure):
    """Credit/debit a savings account; aborts on overdraft."""

    name = "TransactSavings"
    parameters = (ProcedureParameter("custid"), ProcedureParameter("amount"))
    statements = {
        "GetSavingsBalance": Statement(
            name="GetSavingsBalance", table="SAVINGS", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "UpdateSavingsBalance": Statement(
            name="UpdateSavingsBalance", table="SAVINGS", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, custid, amount) -> Any:
        rows = ctx.execute("GetSavingsBalance", [custid])
        if not rows:
            raise UserAbort("unknown customer")
        balance = rows[0]["BAL"] + amount
        if balance < 0:
            raise UserAbort("insufficient savings funds")
        ctx.execute("UpdateSavingsBalance", [custid, amount])
        return balance


class WriteCheck(StoredProcedure):
    """Cash a check against the combined balance; overdrafts pay a penalty."""

    name = "WriteCheck"
    parameters = (ProcedureParameter("custid"), ProcedureParameter("amount"))
    statements = {
        "GetSavingsBalance": Statement(
            name="GetSavingsBalance", table="SAVINGS", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "GetCheckingBalance": Statement(
            name="GetCheckingBalance", table="CHECKING", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "UpdateCheckingBalance": Statement(
            name="UpdateCheckingBalance", table="CHECKING", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, custid, amount) -> Any:
        savings = ctx.execute("GetSavingsBalance", [custid])
        checking = ctx.execute("GetCheckingBalance", [custid])
        if not savings or not checking:
            raise UserAbort("unknown customer")
        total = savings[0]["BAL"] + checking[0]["BAL"]
        debit = amount + 1.0 if total < amount else amount
        ctx.execute("UpdateCheckingBalance", [custid, -debit])
        return total - debit


class Amalgamate(StoredProcedure):
    """Move all of customer 0's funds into customer 1's checking account.

    Touches both customers' partitions — distributed whenever the two ids
    hash to different partitions.
    """

    name = "Amalgamate"
    parameters = (ProcedureParameter("custid0"), ProcedureParameter("custid1"))
    statements = {
        "GetSavingsBalance": Statement(
            name="GetSavingsBalance", table="SAVINGS", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "GetCheckingBalance": Statement(
            name="GetCheckingBalance", table="CHECKING", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "ZeroSavingsBalance": Statement(
            name="ZeroSavingsBalance", table="SAVINGS", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": 0.0},
        ),
        "ZeroCheckingBalance": Statement(
            name="ZeroCheckingBalance", table="CHECKING", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": 0.0},
        ),
        "CreditCheckingBalance": Statement(
            name="CreditCheckingBalance", table="CHECKING", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, custid0, custid1) -> Any:
        savings = ctx.execute("GetSavingsBalance", [custid0])
        checking = ctx.execute("GetCheckingBalance", [custid0])
        if not savings or not checking:
            raise UserAbort("unknown customer")
        total = savings[0]["BAL"] + checking[0]["BAL"]
        ctx.execute("ZeroSavingsBalance", [custid0])
        ctx.execute("ZeroCheckingBalance", [custid0])
        ctx.execute("CreditCheckingBalance", [custid1, total])
        return total


class SendPayment(StoredProcedure):
    """Checking-to-checking transfer between two customers.

    Aborts when the sender's checking balance is insufficient; distributed
    whenever sender and receiver live on different partitions.
    """

    name = "SendPayment"
    parameters = (
        ProcedureParameter("custid0"),
        ProcedureParameter("custid1"),
        ProcedureParameter("amount"),
    )
    statements = {
        "GetCheckingBalance": Statement(
            name="GetCheckingBalance", table="CHECKING", operation=Operation.SELECT,
            where={"CUSTID": param(0)}, output_columns=("BAL",),
        ),
        "DebitCheckingBalance": Statement(
            name="DebitCheckingBalance", table="CHECKING", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": delta(1)},
        ),
        "CreditCheckingBalance": Statement(
            name="CreditCheckingBalance", table="CHECKING", operation=Operation.UPDATE,
            where={"CUSTID": param(0)}, set_values={"BAL": delta(1)},
        ),
    }

    def run(self, ctx: ExecutionContext, custid0, custid1, amount) -> Any:
        rows = ctx.execute("GetCheckingBalance", [custid0])
        if not rows:
            raise UserAbort("unknown customer")
        if rows[0]["BAL"] < amount:
            raise UserAbort("insufficient checking funds")
        ctx.execute("DebitCheckingBalance", [custid0, -amount])
        ctx.execute("CreditCheckingBalance", [custid1, amount])
        return True


def make_procedures() -> list[StoredProcedure]:
    """All six SmallBank stored procedures."""
    return [
        Amalgamate(),
        Balance(),
        DepositChecking(),
        SendPayment(),
        TransactSavings(),
        WriteCheck(),
    ]
