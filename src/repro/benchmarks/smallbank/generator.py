"""SmallBank request generator.

The default mix follows the classic SmallBank specification: 60% of
requests are single-customer transactions, 40% name two customers
(Amalgamate + SendPayment).  Two-customer picks draw each customer
independently, so at ``P`` partitions roughly ``(P-1)/P`` of them are
distributed — a much higher multi-partition rate than TATP or TPC-C, which
is exactly the stress the scheduling layer needs.  An optional hotspot
skews account picks toward a small set of hot customers.
"""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...types import PartitionId, ProcedureRequest
from ...workload.generator import WorkloadGenerator
from ...workload.rng import WorkloadRandom
from .schema import SmallBankConfig


class SmallBankGenerator(WorkloadGenerator):
    """Generates SmallBank procedure requests."""

    benchmark = "smallbank"

    DEFAULT_MIX = (
        ("Amalgamate", 0.15),
        ("Balance", 0.15),
        ("DepositChecking", 0.15),
        ("SendPayment", 0.25),
        ("TransactSavings", 0.15),
        ("WriteCheck", 0.15),
    )

    def __init__(
        self,
        catalog: Catalog,
        config: SmallBankConfig,
        rng: WorkloadRandom | None = None,
        mix=None,
    ) -> None:
        super().__init__(catalog, rng)
        self.config = config
        self._mix = tuple(mix) if mix is not None else self.DEFAULT_MIX

    # ------------------------------------------------------------------
    @property
    def mix(self):
        return self._mix

    def next_request(self) -> ProcedureRequest:
        procedure = self.rng.weighted_choice(self._mix)
        builder = getattr(self, f"_make_{procedure}")
        return builder()

    def home_partition(self, request: ProcedureRequest) -> PartitionId:
        """Home partition of the first customer the request names."""
        return self.catalog.scheme.partition_for_value(request.parameters[0])

    # ------------------------------------------------------------------
    def _random_account(self) -> int:
        config = self.config
        if config.hotspot_accounts > 0 and self.rng.probability(
            config.hotspot_probability
        ):
            return self.rng.integer(0, min(config.hotspot_accounts, config.num_accounts) - 1)
        return self.rng.integer(0, config.num_accounts - 1)

    def _account_pair(self) -> tuple[int, int]:
        first = self._random_account()
        second = self._random_account()
        while second == first:
            second = self.rng.integer(0, self.config.num_accounts - 1)
        return first, second

    def _amount(self, low: int = 1, high: int = 100) -> float:
        return float(self.rng.integer(low, high))

    def _make_Balance(self) -> ProcedureRequest:
        return ProcedureRequest.of("Balance", (self._random_account(),))

    def _make_DepositChecking(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "DepositChecking", (self._random_account(), self._amount())
        )

    def _make_TransactSavings(self) -> ProcedureRequest:
        # Mostly deposits, some withdrawals (which can abort on overdraft).
        amount = self._amount()
        if self.rng.probability(0.4):
            amount = -amount
        return ProcedureRequest.of("TransactSavings", (self._random_account(), amount))

    def _make_WriteCheck(self) -> ProcedureRequest:
        return ProcedureRequest.of(
            "WriteCheck", (self._random_account(), self._amount(1, 150))
        )

    def _make_Amalgamate(self) -> ProcedureRequest:
        first, second = self._account_pair()
        return ProcedureRequest.of("Amalgamate", (first, second))

    def _make_SendPayment(self) -> ProcedureRequest:
        first, second = self._account_pair()
        return ProcedureRequest.of("SendPayment", (first, second, self._amount()))
