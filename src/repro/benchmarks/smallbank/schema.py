"""SmallBank schema.

SmallBank models a retail bank: one ACCOUNTS row per customer plus a
SAVINGS and a CHECKING balance row, all partitioned on the customer id.
Single-customer procedures are always single-partitioned; the two-customer
procedures (Amalgamate, SendPayment) touch two partitions whenever the
customers hash to different partitions, which makes the workload a direct
stress test for multi-partition scheduling and the OP1/OP2 predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...catalog.column import floating, integer, string
from ...catalog.schema import Schema
from ...catalog.table import Table


@dataclass
class SmallBankConfig:
    """Scaling knobs for the SmallBank reproduction."""

    num_partitions: int = 4
    accounts_per_partition: int = 100
    #: Fraction of account picks drawn from the hotspot (skew knob).
    hotspot_probability: float = 0.25
    #: Number of accounts forming the hotspot.
    hotspot_accounts: int = 10
    #: Initial balance range.
    initial_balance_min: float = 100.0
    initial_balance_max: float = 5000.0

    @property
    def num_accounts(self) -> int:
        return self.num_partitions * self.accounts_per_partition


def make_schema() -> Schema:
    schema = Schema()
    schema.add_table(Table(
        name="ACCOUNTS",
        columns=[
            integer("CUSTID"),
            string("NAME"),
        ],
        primary_key=["CUSTID"],
        partition_column="CUSTID",
    ))
    schema.add_table(Table(
        name="SAVINGS",
        columns=[
            integer("CUSTID"),
            floating("BAL"),
        ],
        primary_key=["CUSTID"],
        partition_column="CUSTID",
    ))
    schema.add_table(Table(
        name="CHECKING",
        columns=[
            integer("CUSTID"),
            floating("BAL"),
        ],
        primary_key=["CUSTID"],
        partition_column="CUSTID",
    ))
    return schema
