"""SmallBank data loader."""

from __future__ import annotations

from ...catalog.schema import Catalog
from ...storage.partition_store import Database
from ...workload.rng import WorkloadRandom
from .schema import SmallBankConfig


def load(
    catalog: Catalog, database: Database, config: SmallBankConfig, rng: WorkloadRandom
) -> None:
    """Populate one account row plus savings/checking balances per customer."""
    estimator = catalog.estimator
    spread = config.initial_balance_max - config.initial_balance_min
    for custid in range(config.num_accounts):
        database.load_row("ACCOUNTS", {
            "CUSTID": custid,
            "NAME": f"Customer{custid:08d}",
        }, estimator)
        database.load_row("SAVINGS", {
            "CUSTID": custid,
            "BAL": config.initial_balance_min + rng.integer(0, int(spread)) * 1.0,
        }, estimator)
        database.load_row("CHECKING", {
            "CUSTID": custid,
            "BAL": config.initial_balance_min + rng.integer(0, int(spread)) * 1.0,
        }, estimator)
