"""The Houdini facade (paper §4, Fig. 6).

``Houdini`` ties the pieces together: given the off-line artifacts (Markov
models behind a :class:`~repro.houdini.providers.ModelProvider`, parameter
mappings) it produces, for each incoming request, an execution plan plus a
run-time monitor, and afterwards feeds what actually happened back into model
maintenance and the per-procedure statistics that Table 4 reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..catalog.schema import Catalog
from ..engine.engine import AttemptResult
from ..mapping.parameter_mapping import ParameterMappingSet
from ..txn.plan import ExecutionPlan
from ..types import ProcedureRequest
from .cache import EstimateCache
from .config import HoudiniConfig
from .estimate import PathEstimate
from .estimator import PathEstimator
from .maintenance import MaintenanceRegistry
from .optimizations import OptimizationDecision, OptimizationSelector
from .providers import ModelProvider
from .runtime import HoudiniRuntime
from .stats import HoudiniStats

#: Distinguishes "parameter not passed" from an explicit ``None`` (which is a
#: meaningful value for ``maintenance_window``: it disables the window).
_UNSET = object()


@dataclass(slots=True)
class HoudiniPlan:
    """Everything Houdini produced for one transaction attempt."""

    plan: ExecutionPlan
    runtime: HoudiniRuntime
    estimate: PathEstimate
    decision: OptimizationDecision


class Houdini:
    """On-line prediction framework wrapping estimator + selector + runtime."""

    def __init__(
        self,
        catalog: Catalog,
        provider: ModelProvider,
        mappings: ParameterMappingSet,
        config: HoudiniConfig | None = None,
        *,
        learning: bool = True,
    ) -> None:
        self.catalog = catalog
        self.provider = provider
        self.mappings = mappings
        self.config = config or HoudiniConfig()
        self.estimator = PathEstimator(catalog, provider, mappings, self.config)
        self.selector = OptimizationSelector(
            self.config,
            catalog.num_partitions,
            catalog.scheme.partitions_per_node,
        )
        self.maintenance = MaintenanceRegistry(self.config)
        #: Optional estimate cache for always-single-partition procedures
        #: (§6.3); ``None`` unless enabled in the configuration.
        self.estimate_cache: EstimateCache | None = (
            EstimateCache(self.config) if self.config.enable_estimate_caching else None
        )
        self.stats = HoudiniStats()
        #: Whether run-time execution paths update the models (§4.4/§4.5).
        #: The off-line accuracy evaluation (Table 3) turns this off.
        self.learning = learning
        self._maintenance_interval = 200
        self._since_maintenance = 0
        #: Optional self-tuning observer (``repro.selftune``): fed every
        #: attempt's transition path after maintenance has seen it, so drift
        #: detection and hot model swaps happen between transactions.
        self._selftune = None

    def set_selftune(self, observer) -> None:
        """Attach (or with ``None`` detach) the self-tuning observer."""
        self._selftune = observer

    # ------------------------------------------------------------------
    def estimate(self, request: ProcedureRequest) -> PathEstimate:
        """Produce (only) the initial path estimate for a request."""
        return self.estimator.estimate(request)

    def plan(self, request: ProcedureRequest) -> HoudiniPlan:
        """Produce the execution plan and run-time monitor for a request.

        The default operating mode is cached/compiled planning: the §6.3
        estimate cache is probed first (single-partition footprints), then
        the estimator's compiled whole-walk records (chain-shaped models);
        only requests neither layer can serve pay for a stepwise model walk
        plus optimization selection.  All three paths produce identical
        decisions and charge the identical modelled estimation cost, so
        simulated metrics do not depend on which one served a request.
        """
        started = time.perf_counter()
        estimator = self.estimator
        estimate_cache = self.estimate_cache
        config = self.config
        footprint, signature = estimator.footprint_and_signature(request)
        model = self.provider.model_for(request)
        token = (
            (id(model), model.version)
            if model is not None and model.processed
            else None
        )
        cache_key = None
        cached = None
        if estimate_cache is not None:
            cache_key = EstimateCache.key_for(request, footprint)
            if cache_key is not None and signature is None:
                # Nothing can vouch that an identical-footprint request
                # walks the same path: treat it as uncacheable.
                cache_key = None
            cached = estimate_cache.lookup(cache_key, token, signature)
        if cached is not None:
            # §6.3: reuse the path walk of an earlier identical-footprint
            # request; only a dictionary lookup is performed.
            estimate = cached.estimate
            decision = cached.decision
            if config.estimate_cache_simulated_savings:
                charged_ms = config.estimation_cache_hit_ms
            else:
                # Neutral charging: the reused walk is charged exactly what
                # computing it would have cost, so enabling the cache never
                # changes simulated metrics (only wall-clock time).
                charged_ms = config.estimation_cost_ms(
                    estimate.work_units, estimate.query_count
                )
            # The measured wall cost of this plan is the probe, not the
            # original walk.
            estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
            source = "houdini:cached"
        else:
            record = (
                estimator.walk_record(request, model, signature)
                if signature is not None
                else None
            )
            if record is not None:
                # Compiled whole-walk fast path (chain-shaped model).
                estimate = record.estimate
                decision = record.decision
                if decision is None:
                    decision = self.selector.decide(
                        request, estimate, None if estimate.degenerate else model
                    )
                    if not (self.learning and decision.support_limited):
                        record.decision = decision
            else:
                estimate = estimator.estimate_fresh(request)
                decision = self.selector.decide(
                    request, estimate, None if estimate.degenerate else model
                )
            # The simulator charges a modelled (deterministic) estimation
            # cost; the measured wall-clock time stays on the estimate.
            charged_ms = config.estimation_cost_ms(
                estimate.work_units, estimate.query_count
            )
            source = "houdini"
            if estimate_cache is not None:
                estimate_cache.store(
                    cache_key, estimate, decision, token, signature,
                    support_may_grow=self.learning,
                )
        plan = decision.as_plan(charged_ms, source=source)
        runtime = HoudiniRuntime(
            None if estimate.degenerate else model,
            estimate,
            config,
            predicted_single_partition=decision.predicted_single_partition,
            undo_initially_disabled=decision.disable_undo,
            learn=self.learning,
            footprint=footprint,
        )
        self._record_plan_stats(request, estimate, decision)
        return HoudiniPlan(plan=plan, runtime=runtime, estimate=estimate, decision=decision)

    def plan_speculative(self, request: ProcedureRequest) -> ExecutionPlan | None:
        """Predict — without side effects — the plan :meth:`plan` would return.

        Serves the sharded backend's dispatch decision: a request whose §6.3
        cache entry is valid *now* will (absent interleaved invalidations)
        be planned from that same entry when the transaction is folded back,
        so its plan arguments are known before the authoritative ``plan``
        call runs.  Returns ``None`` whenever the cache cannot vouch for the
        request; the caller then executes inline.  No statistic, LRU state,
        estimate field or model is touched — a run that calls this between
        ``plan`` calls stays byte-identical to one that never does.
        """
        estimate_cache = self.estimate_cache
        if estimate_cache is None:
            return None
        footprint, signature = self.estimator.footprint_and_signature(request)
        if signature is None:
            return None
        cache_key = EstimateCache.key_for(request, footprint)
        if cache_key is None:
            return None
        model = self.provider.model_for(request)
        token = (
            (id(model), model.version)
            if model is not None and model.processed
            else None
        )
        cached = estimate_cache.peek(cache_key, token, signature)
        if cached is None:
            return None
        estimate = cached.estimate
        if self.config.estimate_cache_simulated_savings:
            charged_ms = self.config.estimation_cache_hit_ms
        else:
            charged_ms = self.config.estimation_cost_ms(
                estimate.work_units, estimate.query_count
            )
        return cached.decision.as_plan(charged_ms, source="houdini:cached")

    def plan_restart(
        self,
        request: ProcedureRequest,
        base_partition: int,
        *,
        attempt_number: int = 1,
        never_finish: frozenset[int] = frozenset(),
    ) -> HoudiniPlan:
        """Plan a conservative restart after a misprediction.

        Per the paper's evaluation, a mispredicted transaction is restarted
        as a multi-partition transaction that locks every partition with undo
        logging enabled.  Houdini still monitors the restarted attempt so
        that the early-prepare optimization (OP4) releases the partitions the
        transaction does not actually need — but restarts become
        progressively more conservative so the retry loop always converges:
        partitions in ``never_finish`` (they caused an early-prepare
        misprediction earlier in this transaction) are never released again,
        and when :attr:`HoudiniConfig.conservative_restarts` is set the
        early-prepare optimization is switched off entirely from the second
        restart onward.
        """
        estimate = self.estimator.estimate(request)
        model = None if estimate.degenerate else self.provider.model_for(request)
        charged_ms = self.config.estimation_cost_ms(
            estimate.work_units, estimate.query_count
        )
        plan = ExecutionPlan(
            base_partition=base_partition,
            locked_partitions=None,
            undo_logging=True,
            estimation_ms=charged_ms,
            source="houdini:restart",
        )
        allow_early_prepare = True
        if self.config.conservative_restarts and attempt_number >= 2:
            allow_early_prepare = False
        runtime = HoudiniRuntime(
            model,
            estimate,
            self.config,
            predicted_single_partition=False,
            undo_initially_disabled=False,
            learn=self.learning,
            footprint=self.estimator.predicted_footprint(request),
            allow_early_prepare=allow_early_prepare,
            never_finish=never_finish,
        )
        decision = OptimizationDecision(
            base_partition=base_partition,
            locked_partitions=self.catalog.scheme.all_partitions(),
            predicted_single_partition=False,
            disable_undo=False,
            abort_probability=estimate.abort_probability,
            confidence=estimate.confidence,
        )
        return HoudiniPlan(plan=plan, runtime=runtime, estimate=estimate, decision=decision)

    # ------------------------------------------------------------------
    def after_attempt(
        self,
        request: ProcedureRequest,
        houdini_plan: HoudiniPlan,
        attempt: AttemptResult,
    ) -> None:
        """Feed the attempt's outcome back into maintenance and statistics."""
        runtime = houdini_plan.runtime
        runtime.finish(attempt.committed)
        model = self.provider.model_for(request)
        if model is not None and self.learning:
            maintenance = self.maintenance.for_model(model)
            maintenance.record_transitions(runtime.stats.transitions)
            self._since_maintenance += 1
            if self._since_maintenance >= self._maintenance_interval:
                self._since_maintenance = 0
                recomputed = self.maintenance.check_all()
                if recomputed and self.estimate_cache is not None:
                    # Recomputed probabilities can change decisions, but only
                    # for the recomputed models: evict exactly those
                    # procedures' entries instead of flushing the cache.
                    for procedure in recomputed:
                        self.estimate_cache.invalidate_procedure(procedure)
            if self._selftune is not None:
                # After the maintenance block so the detector sees the
                # freshest accuracy signal.  The observer may swap the
                # procedure's model here — between transactions, which is
                # what makes the swap atomic.
                self._selftune.observe(
                    request.procedure, model, runtime.stats.transitions
                )
        self._record_outcome_stats(request, houdini_plan, attempt)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _record_plan_stats(
        self,
        request: ProcedureRequest,
        estimate: PathEstimate,
        decision: OptimizationDecision,
    ) -> None:
        stats = self.stats.for_procedure(request.procedure)
        stats.transactions += 1
        stats.estimates += 1
        stats.estimation_ms_total += estimate.estimation_ms
        if decision.op1_selected:
            stats.op1_enabled += 1
        if decision.op2_selected:
            stats.op2_enabled += 1
        if decision.disable_undo:
            stats.op3_enabled += 1

    def _record_outcome_stats(
        self,
        request: ProcedureRequest,
        houdini_plan: HoudiniPlan,
        attempt: AttemptResult,
    ) -> None:
        stats = self.stats.for_procedure(request.procedure)
        runtime_stats = houdini_plan.runtime.stats
        decision = houdini_plan.decision
        mispredicted = attempt.mispredicted_partition is not None
        if mispredicted:
            stats.mispredicted_restarts += 1
        if decision.op1_selected and not mispredicted:
            touched = attempt.touched_partitions.as_frozenset()
            if not touched or decision.base_partition in touched or attempt.committed:
                stats.op1_correct += 1
        if decision.op2_selected and not mispredicted:
            stats.op2_correct += 1
        if runtime_stats.undo_disabled_at_query is not None and attempt.committed:
            # Undo logging was switched off at run time (§4.4 OP3 update).
            stats.op3_enabled += 0 if decision.disable_undo else 1
        if runtime_stats.finished_partitions and not runtime_stats.finish_mispredicted:
            stats.op4_enabled += 1

    # ------------------------------------------------------------------
    def reconfigure(
        self,
        *,
        estimate_caching: bool | None = None,
        confidence_threshold: float | None = None,
        maintenance_window: int | None | object = _UNSET,
    ) -> None:
        """Apply live configuration changes, routing through the invalidation
        contracts.

        ``confidence_threshold`` changes drop every memoized decision — the
        compiled whole-walk records and the §6.3 estimate cache both store
        decisions that baked the old threshold in.  ``estimate_caching``
        toggles the §6.3 cache: enabling installs a fresh (empty) cache,
        disabling invalidates and removes it.  ``maintenance_window`` resizes
        the §4.5 sliding window; every tracked maintenance rebuilds its
        counters from the recent tail (``None`` disables the window).  Either
        way the next :meth:`plan` call operates entirely under the new
        configuration.
        """
        config = self.config
        if maintenance_window is not _UNSET:
            self.maintenance.set_window(maintenance_window)
        if confidence_threshold is not None:
            if not 0.0 <= confidence_threshold <= 1.0:
                raise ValueError("confidence_threshold must be within [0, 1]")
            config.confidence_threshold = confidence_threshold
            self.estimator.clear_walk_records()
            if self.estimate_cache is not None:
                self.estimate_cache.invalidate()
        if estimate_caching is not None:
            config.enable_estimate_caching = estimate_caching
            if estimate_caching and self.estimate_cache is None:
                self.estimate_cache = EstimateCache(config)
            elif not estimate_caching and self.estimate_cache is not None:
                self.estimate_cache.invalidate()
                self.estimate_cache = None

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return (
            f"Houdini(threshold={self.config.confidence_threshold}, "
            f"models={len(list(self.provider.models()))}, "
            f"procedures={len(self.mappings)})"
        )
