"""Houdini configuration.

Collects the knobs the paper discusses explicitly (confidence-coefficient
threshold, the ~175-200 query ceiling, the 75% maintenance accuracy trigger)
plus the handful of engineering constants the reproduction needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class HoudiniConfig:
    """Tunable parameters of the prediction framework."""

    #: Confidence-coefficient threshold used to prune estimations (§4.3).
    #: The Fig. 13 experiment sweeps this between 0 and 1.
    confidence_threshold: float = 0.5

    #: Maximum predicted abort probability for which undo logging may still
    #: be disabled (OP3).  The paper is "more cautious" about this
    #: optimization because a wrong call is unrecoverable.
    abort_tolerance: float = 0.01

    #: Lower bound applied on top of the confidence threshold before a
    #: partition is declared finished (OP4).  Declaring a partition finished
    #: and then touching it again forces an abort/restart, so the
    #: reproduction only takes the early-prepare gamble when the model is
    #: close to certain (see DESIGN.md's threshold-semantics note); the
    #: genuine OP4 wins — releasing partitions a distributed transaction is
    #: truly done with — all have finish probability 1.0 and are unaffected.
    op4_floor: float = 0.99

    #: Estimation is skipped for transactions whose models would require
    #: walking more than this many states (§4.6 reports a practical limit of
    #: roughly 175-200 queries per transaction).
    max_path_length: int = 200

    #: Minimum number of times a state must have been observed before its
    #: zero abort probability is trusted enough to disable undo logging at
    #: run time.  The paper stresses that a wrong OP3 call is unrecoverable,
    #: so the reproduction refuses to act on thinly-supported states.
    op3_min_observations: int = 10

    #: Procedures for which prediction is disabled entirely (the paper turns
    #: Houdini off for AuctionMark's CheckWinningBids).
    disabled_procedures: frozenset[str] = field(default_factory=frozenset)

    #: Whether vertex probability tables are pre-computed during the
    #: processing phase (the optimization §3.2 credits with a ~24% reduction
    #: in on-line computation time).
    precompute_tables: bool = True

    #: Whether the estimator uses per-procedure compiled statement resolvers
    #: (:mod:`repro.houdini.compiled`) instead of re-resolving catalog and
    #: mapping metadata on every candidate state.  Predictions are identical
    #: either way; the flag exists for the ablation benchmark and as an
    #: escape hatch.
    compiled_estimation: bool = True

    #: Whether whole walks of chain-shaped models are compiled into
    #: per-(procedure, footprint) records keyed by the request's
    #: partition-binding signature, turning repeat estimations into a dict
    #: probe plus a binding check (with a stepwise-walk fallback on any
    #: deviation).  Estimates are identical either way; requires
    #: :attr:`compiled_estimation`.
    compiled_walks: bool = True

    #: Maximum number of memoized whole-walk records kept per model (a
    #: chain-shaped model's signature space is bounded by the partition
    #: combinations of its mapped slots, but run-away growth is capped).
    compiled_walk_max_records: int = 4096

    #: Run-time model maintenance: when the observed transition distribution
    #: of a vertex matches the model with less than this accuracy, the edge
    #: and vertex probabilities are recomputed from the counters (§4.5).
    maintenance_accuracy_threshold: float = 0.75

    #: Minimum number of observed transitions before maintenance judges a
    #: vertex's distribution at all.
    maintenance_min_observations: int = 20

    #: Optional sliding window (number of recent transitions) considered by
    #: model maintenance.  ``None`` keeps every observation since the last
    #: recomputation (the paper's behaviour); a window makes drift detection
    #: react faster to fast-changing workloads, the extension §4.5 defers to
    #: future work.
    maintenance_window: int | None = None

    #: Whether restarted attempts become progressively more conservative.
    #: Restarts always run with undo logging enabled and lock every
    #: partition; with this flag set (the default) the early-prepare
    #: optimization (OP4) is additionally disabled from the second restart
    #: onward, and a partition whose early release caused a misprediction is
    #: never released again within the same transaction — which guarantees
    #: that the coordinator's retry loop converges.  Setting it to False
    #: keeps full OP4 behaviour on every restart (paper-literal, but a
    #: procedure the models chronically mispredict can then restart until the
    #: coordinator gives up).
    conservative_restarts: bool = True

    #: Whether path estimates for non-abortable, always-single-partition
    #: requests are cached and reused (the §6.3 remedy for short transactions
    #: whose estimation overhead dominates their run time).  Default **on**:
    #: caching is the normal operating mode after the experiment-output
    #: review showed identical optimization decisions and simulated metrics
    #: with it enabled (cache entries are invalidated whenever the model
    #: they were derived from changes, and decisions that could still flip
    #: as observation counts grow are never admitted).
    enable_estimate_caching: bool = True

    #: Maximum number of entries kept by the estimate cache (LRU eviction).
    estimate_cache_max_entries: int = 4096

    #: When True, a cache hit charges :attr:`estimation_cache_hit_ms` of
    #: *simulated* time instead of the modelled estimation cost of the reused
    #: walk — the §6.3 what-if mode the ablation benchmark uses to reproduce
    #: the paper's estimation-overhead savings.  Off by default so that the
    #: default-on cache is a pure wall-clock optimization: simulated metrics
    #: stay byte-identical with the cache on or off.
    estimate_cache_simulated_savings: bool = False

    #: Simulated cost charged for a cache hit (a dictionary lookup instead of
    #: a model walk) when :attr:`estimate_cache_simulated_savings` is set.
    estimation_cache_hit_ms: float = 0.001

    #: Simulated-time model of the estimation overhead charged per
    #: transaction (Fig. 11): a fixed base cost plus a cost per candidate
    #: state examined and per state on the chosen path.  Wall-clock Python
    #: time is also measured and reported, but charging a modelled cost keeps
    #: the simulator deterministic and comparable to the paper's Java system.
    estimation_base_ms: float = 0.01
    estimation_per_candidate_ms: float = 0.002
    estimation_per_state_ms: float = 0.010

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ValueError("confidence_threshold must be within [0, 1]")
        if not 0.0 <= self.abort_tolerance <= 1.0:
            raise ValueError("abort_tolerance must be within [0, 1]")
        if self.max_path_length < 1:
            raise ValueError("max_path_length must be positive")

    def with_threshold(self, threshold: float) -> "HoudiniConfig":
        """Copy of this config with a different confidence threshold."""
        return replace(self, confidence_threshold=threshold)

    def estimation_cost_ms(self, work_units: int, path_states: int) -> float:
        """Simulated cost of computing one estimate (charged by the simulator)."""
        return (
            self.estimation_base_ms
            + self.estimation_per_candidate_ms * work_units
            + self.estimation_per_state_ms * path_states
        )
