"""Initial execution-path estimates (paper §4.2-4.3).

A :class:`PathEstimate` is what Houdini produces for a new transaction
request before it starts: the most likely sequence of execution states, the
confidence attached to each step, and the derived per-optimization
predictions (base partition, lock set with per-partition confidence, abort
probability, per-partition finish points).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..markov.vertex import VertexKey, VertexKind
from ..types import PartitionId


@dataclass(slots=True)
class PartitionPrediction:
    """Prediction for one partition derived from the estimated path."""

    partition_id: PartitionId
    #: Confidence that the transaction accesses the partition at all: the
    #: product of the edge probabilities up to the first state that touches
    #: it (paper §4.3, OP2).
    access_confidence: float
    #: Index (into the estimated query sequence) of the last state predicted
    #: to touch the partition; used for OP4 / early prepare.
    last_access_index: int
    #: Whether any predicted access is a write.
    written: bool = False
    #: Number of estimated queries predicted to touch the partition
    #: (maintained by the estimator's walk; OP1 picks the maximum).
    access_count: int = 0


@dataclass(slots=True)
class PathEstimate:
    """Houdini's initial estimate for one transaction request."""

    procedure: str
    #: Estimated vertex sequence (begin ... terminal); may end early when the
    #: walk hits the path-length ceiling or a dead end.
    vertices: list[VertexKey] = field(default_factory=list)
    #: Probability of each traversed edge, aligned with ``vertices[1:]``.
    edge_probabilities: list[float] = field(default_factory=list)
    #: Per-partition predictions derived from the path.
    partitions: dict[PartitionId, PartitionPrediction] = field(default_factory=dict)
    #: Greatest abort probability found in the probability tables along the
    #: path (the conservative OP3 input, §4.3).
    abort_probability: float = 0.0
    #: Whether the estimated path itself terminates at the abort state.
    predicted_abort: bool = False
    #: Number of candidate-state evaluations the estimator performed
    #: (proxy for the estimation cost charged by the simulator).
    work_units: int = 0
    #: Wall-clock milliseconds spent computing the estimate.
    estimation_ms: float = 0.0
    #: True when the estimate was produced by a degenerate/disabled path
    #: (e.g. Houdini disabled for the procedure or no model available).
    degenerate: bool = False
    #: Cached ``(len(vertices), query vertices)`` pair — the optimization
    #: selector reads :attr:`query_vertices` several times per decision.
    _query_vertices_cache: tuple[int, list[VertexKey]] | None = field(
        default=None, repr=False, compare=False
    )
    #: Cached ``(len(partitions), finish points)`` pair — computed once the
    #: walk is done, read by both the decision and the run-time monitor.
    _finish_points_cache: tuple[int, dict[PartitionId, int]] | None = field(
        default=None, repr=False, compare=False
    )
    #: Cached ``(len(edge_probabilities), confidence)`` pair — the walk
    #: already maintains the running product, so it stores it here.
    _confidence_cache: tuple[int, float] | None = field(
        default=None, repr=False, compare=False
    )
    #: Online argmax over the per-partition access counts, maintained by the
    #: estimator's walk so :meth:`base_partition` is O(1) for walked
    #: estimates (ties keep the smaller partition id).
    _base_partition: PartitionId | None = field(
        default=None, repr=False, compare=False
    )
    _base_count: int = field(default=0, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def confidence(self) -> float:
        """Overall confidence: the product of the traversed edge probabilities."""
        cached = self._confidence_cache
        if cached is not None and cached[0] == len(self.edge_probabilities):
            return cached[1]
        value = 1.0
        for probability in self.edge_probabilities:
            value *= probability
        self._confidence_cache = (len(self.edge_probabilities), value)
        return value

    @property
    def query_vertices(self) -> list[VertexKey]:
        cached = self._query_vertices_cache
        if cached is not None and cached[0] == len(self.vertices):
            return cached[1]
        result = [v for v in self.vertices if v.is_query]
        self._query_vertices_cache = (len(self.vertices), result)
        return result

    @property
    def query_count(self) -> int:
        return len(self.query_vertices)

    @property
    def reached_terminal(self) -> bool:
        return bool(self.vertices) and self.vertices[-1].kind in (
            VertexKind.COMMIT, VertexKind.ABORT
        )

    def touched_partitions(self) -> list[PartitionId]:
        return sorted(self.partitions)

    def predicted_single_partition(self) -> bool:
        return len(self.partitions) <= 1

    def base_partition(self) -> PartitionId | None:
        """OP1: the partition accessed by the most predicted queries."""
        if self._base_partition is not None:
            return self._base_partition
        partitions = self.partitions
        if partitions and any(p.access_count for p in partitions.values()):
            # Estimator-built estimates carry the per-partition access counts
            # accumulated during the walk; reuse them instead of re-counting
            # over the query vertices.
            if len(partitions) == 1:
                return next(iter(partitions))
            best = min(
                partitions.values(),
                key=lambda p: (-p.access_count, p.partition_id),
            )
            return best.partition_id
        counts: dict[PartitionId, int] = {}
        for vertex in self.query_vertices:
            for partition_id in vertex.partitions:
                counts[partition_id] = counts.get(partition_id, 0) + 1
        if not counts:
            return None
        if len(counts) == 1:
            return next(iter(counts))
        # Deterministic tie-break on the partition id keeps runs reproducible.
        return min(counts, key=lambda p: (-counts[p], p))

    def partitions_with_confidence(self, threshold: float) -> list[PartitionId]:
        """OP2: partitions whose access confidence meets the threshold."""
        return sorted(
            prediction.partition_id
            for prediction in self.partitions.values()
            if prediction.access_confidence >= threshold
        )

    def finish_points(self) -> dict[PartitionId, int]:
        """OP4: per-partition index of the last predicted access.

        The returned dict is cached and shared — callers must not mutate it.
        """
        cached = self._finish_points_cache
        if cached is not None and cached[0] == len(self.partitions):
            return cached[1]
        result = {
            prediction.partition_id: prediction.last_access_index
            for prediction in self.partitions.values()
        }
        self._finish_points_cache = (len(self.partitions), result)
        return result

    def describe(self) -> str:
        """Readable multi-line summary used by examples."""
        lines = [f"Path estimate for {self.procedure!r} "
                 f"(confidence {self.confidence:.3f}, abort {self.abort_probability:.3f})"]
        for index, vertex in enumerate(self.vertices):
            probability = self.edge_probabilities[index - 1] if index >= 1 else 1.0
            lines.append(f"  [{index}] p={probability:.2f} {vertex}")
        return "\n".join(lines)
