"""Houdini: the on-line predictive framework (paper Section 4)."""

from .cache import CachedEstimate, CacheStats, EstimateCache
from .config import HoudiniConfig
from .estimate import PartitionPrediction, PathEstimate
from .estimator import PathEstimator
from .houdini import Houdini, HoudiniPlan
from .maintenance import MaintenanceRegistry, MaintenanceStats, ModelMaintenance
from .optimizations import OptimizationDecision, OptimizationSelector
from .prefetch import BatchGroup, PrefetchAdvisor, PrefetchCandidate, PrefetchPlan
from .providers import GlobalModelProvider, ModelProvider
from .runtime import HoudiniRuntime, RuntimeStats
from .stats import HoudiniStats, ProcedureStats

__all__ = [
    "Houdini",
    "EstimateCache",
    "CacheStats",
    "CachedEstimate",
    "HoudiniPlan",
    "HoudiniConfig",
    "PathEstimate",
    "PartitionPrediction",
    "PathEstimator",
    "OptimizationDecision",
    "OptimizationSelector",
    "PrefetchAdvisor",
    "PrefetchPlan",
    "PrefetchCandidate",
    "BatchGroup",
    "ModelProvider",
    "GlobalModelProvider",
    "HoudiniRuntime",
    "RuntimeStats",
    "ModelMaintenance",
    "MaintenanceRegistry",
    "MaintenanceStats",
    "HoudiniStats",
    "ProcedureStats",
]
