"""Houdini: the on-line predictive framework (paper Section 4).

Path estimation runs on the critical path of every transaction, so this
package keeps a **compiled fast path** alongside the paper-literal
interpreted one:

* :mod:`repro.houdini.compiled` resolves each statement's catalog and
  mapping metadata (replicated flag, partition column, literal binding,
  partitioning-parameter index) exactly once per procedure; per candidate
  state the estimator then performs a dict lookup plus at most one
  ``mapping.resolve`` call.  Predictions are identical to the interpreted
  path (``HoudiniConfig.compiled_estimation`` toggles it, and the test suite
  asserts the equivalence).
* :class:`~repro.markov.model.MarkovModel` precomputes probability-sorted
  successor arrays during ``process()``.  **Cache-invalidation contract:**
  any change to a vertex's outgoing edges (``add_path``,
  ``record_transition``, ``merge_counts``) drops that vertex's precomputed
  array immediately — stale orderings are never served — and marks the
  vertex dirty; the next ``recompute_probabilities()`` re-derives
  probabilities, successor arrays and probability tables only for the dirty
  vertices and their ancestors.
* :class:`~repro.types.PartitionSet` and
  :class:`~repro.markov.vertex.VertexKey` precompute their hashes, and
  small partition sets are interned, because those hashes and unions
  dominate the walk's inner loop.
"""

from .cache import CachedEstimate, CacheStats, EstimateCache
from .compiled import CompiledProcedure, CompiledStatement, CompiledWalk, CompiledWalkTable
from .config import HoudiniConfig
from .estimate import PartitionPrediction, PathEstimate
from .estimator import PathEstimator
from .houdini import Houdini, HoudiniPlan
from .maintenance import MaintenanceRegistry, MaintenanceStats, ModelMaintenance
from .optimizations import OptimizationDecision, OptimizationSelector
from .prefetch import BatchGroup, PrefetchAdvisor, PrefetchCandidate, PrefetchPlan
from .providers import GlobalModelProvider, ModelProvider
from .runtime import HoudiniRuntime, RuntimeStats
from .stats import HoudiniStats, ProcedureStats

__all__ = [
    "Houdini",
    "CompiledProcedure",
    "CompiledStatement",
    "CompiledWalk",
    "CompiledWalkTable",
    "EstimateCache",
    "CacheStats",
    "CachedEstimate",
    "HoudiniPlan",
    "HoudiniConfig",
    "PathEstimate",
    "PartitionPrediction",
    "PathEstimator",
    "OptimizationDecision",
    "OptimizationSelector",
    "PrefetchAdvisor",
    "PrefetchPlan",
    "PrefetchCandidate",
    "BatchGroup",
    "ModelProvider",
    "GlobalModelProvider",
    "HoudiniRuntime",
    "RuntimeStats",
    "ModelMaintenance",
    "MaintenanceRegistry",
    "MaintenanceStats",
    "HoudiniStats",
    "ProcedureStats",
]
