"""Initial execution-path estimation (paper §4.2).

Starting from the ``begin`` state of the procedure's Markov model, the
estimator repeatedly:

1. enumerates the successor states (the candidate queries),
2. uses the parameter mapping to predict the partitions each candidate query
   would access from the procedure's input parameters,
3. keeps the candidates that are *valid* — their partition set matches the
   prediction and their previously-accessed set matches the transaction's
   history so far,
4. follows the valid transition with the greatest edge probability (falling
   back to the greatest-probability structurally-consistent edge when the
   partitions cannot be resolved, as the paper does for conditional
   branches),

until it reaches the commit or abort state or exhausts the configured path
length.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..catalog.procedure import StoredProcedure
from ..catalog.schema import Catalog
from ..catalog.statement import Operation, Statement
from ..mapping.parameter_mapping import ParameterMapping, ParameterMappingSet
from ..markov.model import MarkovModel
from ..markov.vertex import VertexKey, VertexKind
from ..types import PartitionId, PartitionSet, ProcedureRequest
from .config import HoudiniConfig
from .estimate import PartitionPrediction, PathEstimate
from .providers import ModelProvider


class PathEstimator:
    """Builds initial path estimates from Markov models + parameter mappings."""

    def __init__(
        self,
        catalog: Catalog,
        provider: ModelProvider,
        mappings: ParameterMappingSet,
        config: HoudiniConfig | None = None,
    ) -> None:
        self.catalog = catalog
        self.provider = provider
        self.mappings = mappings
        self.config = config or HoudiniConfig()

    # ------------------------------------------------------------------
    def estimate(self, request: ProcedureRequest) -> PathEstimate:
        """Produce the initial path estimate for one request."""
        started = time.perf_counter()
        estimate = PathEstimate(procedure=request.procedure)
        if request.procedure in self.config.disabled_procedures:
            estimate.degenerate = True
            estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
            return estimate
        model = self.provider.model_for(request)
        if model is None or not model.processed:
            estimate.degenerate = True
            estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
            return estimate
        procedure = self.catalog.procedure(request.procedure)
        mapping = self.mappings.get(request.procedure)
        self._walk(estimate, model, procedure, mapping, request.parameters)
        estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
        return estimate

    # ------------------------------------------------------------------
    def predicted_footprint(self, request: ProcedureRequest) -> frozenset[PartitionId] | None:
        """Partitions the parameter mappings alone say the request may touch.

        This ignores the Markov model entirely: for every statement of the
        procedure and every plausible invocation counter (bounded by the
        longest array parameter), the partitioning parameter is resolved
        through the mapping.  Statements whose partitioning parameter cannot
        be resolved, and broadcast statements, contribute *every* partition.

        Houdini's run-time monitor uses this as a guard for the early-prepare
        optimization: a partition that the mappings say may still be needed
        is never declared finished prematurely.
        Returns ``None`` when no mapping exists for the procedure.
        """
        mapping = self.mappings.get(request.procedure)
        if mapping is None:
            return None
        procedure = self.catalog.procedure(request.procedure)
        scheme = self.catalog.scheme
        max_counter = 1
        for value in request.parameters:
            if isinstance(value, (list, tuple)):
                max_counter = max(max_counter, len(value))
        max_counter = min(max_counter, 128)
        footprint: set[PartitionId] = set()
        for statement in procedure.statements.values():
            table = self.catalog.schema.table(statement.table)
            if table.replicated:
                if statement.operation is not Operation.SELECT:
                    return frozenset(range(scheme.num_partitions))
                continue
            partition_column = table.partition_column
            if partition_column is None:
                footprint.add(0)
                continue
            literal = statement.partitioning_literal(partition_column)
            if literal is not None:
                footprint.add(scheme.partition_for_value(literal))
                continue
            index = statement.partitioning_parameter_index(partition_column)
            if index is None:
                return frozenset(range(scheme.num_partitions))
            entry = mapping.entry_for(statement.name, index)
            if entry is None:
                return frozenset(range(scheme.num_partitions))
            for counter in range(max_counter):
                value = mapping.resolve(statement.name, index, counter, request.parameters)
                if value is not None:
                    footprint.add(scheme.partition_for_value(value))
        return frozenset(footprint)

    # ------------------------------------------------------------------
    def _walk(
        self,
        estimate: PathEstimate,
        model: MarkovModel,
        procedure: StoredProcedure,
        mapping: ParameterMapping | None,
        parameters: Sequence[Any],
    ) -> None:
        current = model.begin
        estimate.vertices.append(current)
        accumulated = PartitionSet.of([])
        counters: dict[str, int] = {}
        confidence = 1.0
        query_index = 0
        for _ in range(self.config.max_path_length):
            successors = model.successors(current)
            if not successors:
                break
            chosen, probability = self._choose(
                successors, model, procedure, mapping, parameters,
                accumulated, counters, estimate,
            )
            if chosen is None:
                break
            estimate.vertices.append(chosen)
            estimate.edge_probabilities.append(probability)
            confidence *= probability
            confidence = min(confidence, 1.0)
            if chosen.kind is VertexKind.QUERY:
                self._account_for_vertex(
                    estimate, model, chosen, confidence, query_index
                )
                counters[chosen.name] = chosen.counter + 1
                accumulated = accumulated.union(chosen.partitions)
                query_index += 1
            current = chosen
            if current.kind in (VertexKind.COMMIT, VertexKind.ABORT):
                estimate.predicted_abort = current.kind is VertexKind.ABORT
                break

    def _choose(
        self,
        successors: list[tuple[VertexKey, float]],
        model: MarkovModel,
        procedure: StoredProcedure,
        mapping: ParameterMapping | None,
        parameters: Sequence[Any],
        accumulated: PartitionSet,
        counters: dict[str, int],
        estimate: PathEstimate,
    ) -> tuple[VertexKey | None, float]:
        """Pick the next state among a vertex's successors.

        The returned probability is the chosen edge's weight *renormalized
        over the candidate pool it was chosen from*.  A transition that the
        parameter mapping resolved unambiguously (only one valid candidate)
        therefore contributes a confidence of 1.0 — knowing the parameters
        removes the uncertainty the raw edge weight encodes — while genuine
        control-flow choices (several valid candidates, or the edge-weight
        fallback of §4.2) contribute their relative likelihood, which is what
        the confidence-threshold pruning of §4.3 acts on.
        """
        valid: list[tuple[VertexKey, float]] = []
        consistent: list[tuple[VertexKey, float]] = []
        partition_cache: dict[tuple[str, int], PartitionSet | None] = {}
        for key, probability in successors:
            estimate.work_units += 1
            if key.kind in (VertexKind.COMMIT, VertexKind.ABORT):
                valid.append((key, probability))
                continue
            expected_counter = counters.get(key.name, 0)
            if key.counter != expected_counter:
                continue
            if key.previous != accumulated:
                continue
            consistent.append((key, probability))
            cache_key = (key.name, expected_counter)
            if cache_key not in partition_cache:
                partition_cache[cache_key] = self._predict_partitions(
                    procedure, mapping, key.name, expected_counter, parameters, accumulated
                )
            predicted = partition_cache[cache_key]
            if predicted is not None and key.partitions == predicted:
                valid.append((key, probability))
        pool = valid or consistent or successors
        best = max(pool, key=lambda pair: (pair[1], -len(pair[0].partitions)))
        total = sum(probability for _, probability in pool)
        if total <= 0:
            return best[0], 0.0
        return best[0], best[1] / total

    # ------------------------------------------------------------------
    def _predict_partitions(
        self,
        procedure: StoredProcedure,
        mapping: ParameterMapping | None,
        statement_name: str,
        counter: int,
        parameters: Sequence[Any],
        accumulated: PartitionSet,
    ) -> PartitionSet | None:
        """Predict the partitions a candidate query would touch.

        Returns ``None`` when the prediction cannot be made — the candidate
        is then treated as "uncertain" and only structural checks apply.
        """
        statement = procedure.statement(statement_name)
        table = self.catalog.schema.table(statement.table)
        scheme = self.catalog.scheme
        if table.replicated:
            if statement.operation is Operation.SELECT:
                # Replicated reads are local to wherever the control code runs;
                # the best guess before execution is the partition the
                # transaction has used so far.
                base = self._dominant_partition(accumulated)
                if base is None:
                    return None
                return PartitionSet.of([base])
            return scheme.all_partitions()
        partition_column = table.partition_column
        if partition_column is None:
            return PartitionSet.of([0])
        literal = statement.partitioning_literal(partition_column)
        if literal is not None:
            return PartitionSet.of([scheme.partition_for_value(literal)])
        index = statement.partitioning_parameter_index(partition_column)
        if index is None:
            return scheme.all_partitions()
        if mapping is None:
            return None
        value = mapping.resolve(statement_name, index, counter, parameters)
        if value is None:
            return None
        return PartitionSet.of([scheme.partition_for_value(value)])

    @staticmethod
    def _dominant_partition(accumulated: PartitionSet) -> PartitionId | None:
        if len(accumulated) == 1:
            return accumulated.partitions[0]
        if len(accumulated) > 1:
            return accumulated.partitions[0]
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _account_for_vertex(
        estimate: PathEstimate,
        model: MarkovModel,
        key: VertexKey,
        confidence: float,
        query_index: int,
    ) -> None:
        vertex = model.vertex(key)
        if vertex.table is not None:
            estimate.abort_probability = max(estimate.abort_probability, vertex.table.abort)
        is_write = vertex.query_type is not None and vertex.query_type.is_write
        for partition_id in key.partitions:
            prediction = estimate.partitions.get(partition_id)
            if prediction is None:
                estimate.partitions[partition_id] = PartitionPrediction(
                    partition_id=partition_id,
                    access_confidence=confidence,
                    last_access_index=query_index,
                    written=is_write,
                )
            else:
                prediction.last_access_index = query_index
                prediction.written = prediction.written or is_write
