"""Initial execution-path estimation (paper §4.2).

Starting from the ``begin`` state of the procedure's Markov model, the
estimator repeatedly:

1. enumerates the successor states (the candidate queries),
2. uses the parameter mapping to predict the partitions each candidate query
   would access from the procedure's input parameters,
3. keeps the candidates that are *valid* — their partition set matches the
   prediction and their previously-accessed set matches the transaction's
   history so far,
4. follows the valid transition with the greatest edge probability (falling
   back to the greatest-probability structurally-consistent edge when the
   partitions cannot be resolved, as the paper does for conditional
   branches),

until it reaches the commit or abort state or exhausts the configured path
length.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..catalog.procedure import StoredProcedure
from ..catalog.schema import Catalog
from ..catalog.statement import Operation, Statement
from ..mapping.parameter_mapping import ParameterMapping, ParameterMappingSet
from ..markov.model import MarkovModel
from ..markov.vertex import VertexKey, VertexKind
from ..types import EMPTY_PARTITION_SET, PartitionId, PartitionSet, ProcedureRequest
from .compiled import CompiledProcedure, CompiledWalk, CompiledWalkTable
from .config import HoudiniConfig
from .estimate import PartitionPrediction, PathEstimate
from .providers import ModelProvider


def _pool_rank(pair: tuple[VertexKey, float]) -> tuple[float, int]:
    """Candidate ordering: greatest probability, fewest partitions."""
    return (pair[1], -len(pair[0].partitions))


def _position_rank(entry: tuple) -> int:
    """Sort grouped candidates back into canonical record order."""
    return entry[0]


#: Successor count from which the per-name group index beats the linear
#: record scan in :meth:`PathEstimator._choose` (measured on TPC-C, whose
#: branch vertices fan out 2-4 ways — too narrow for the index — and on
#: run-time-grown models, where placeholder vertices fan out much wider).
_GROUPED_CHOICE_MIN_FANOUT = 8


class PathEstimator:
    """Builds initial path estimates from Markov models + parameter mappings."""

    def __init__(
        self,
        catalog: Catalog,
        provider: ModelProvider,
        mappings: ParameterMappingSet,
        config: HoudiniConfig | None = None,
    ) -> None:
        self.catalog = catalog
        self.provider = provider
        self.mappings = mappings
        self.config = config or HoudiniConfig()
        #: Per-procedure compiled statement resolvers, built once on first
        #: use.  Safe to cache for the estimator's lifetime: they depend only
        #: on the catalog and the mappings, both fixed at construction.
        self._compiled: dict[str, CompiledProcedure] = {}
        #: Per-(procedure, model) compiled-walk tables (chain-shaped models
        #: only).  Keyed by model identity because partitioned providers
        #: serve several models per procedure; each table pins its model so
        #: the identity cannot be recycled, and self-invalidates when the
        #: model's version moves.
        self._walk_tables: dict[tuple[str, int], CompiledWalkTable] = {}

    def _compiled_for(self, procedure_name: str) -> CompiledProcedure:
        compiled = self._compiled.get(procedure_name)
        if compiled is None:
            compiled = CompiledProcedure(
                self.catalog.procedure(procedure_name),
                self.catalog,
                self.mappings.get(procedure_name),
            )
            self._compiled[procedure_name] = compiled
        return compiled

    # ------------------------------------------------------------------
    def estimate(self, request: ProcedureRequest) -> PathEstimate:
        """Produce the initial path estimate for one request.

        For chain-shaped models this is a compiled-walk probe (the estimate
        of an earlier request with the same partition-binding signature is
        reused — see :meth:`walk_record`); everything else takes the
        stepwise walk.  The two paths produce identical estimates.
        """
        record = self.walk_record(request)
        if record is not None:
            return record.estimate
        return self.estimate_fresh(request)

    def walk_record(
        self,
        request: ProcedureRequest,
        model: MarkovModel | None = None,
        signature: tuple | None = None,
    ) -> CompiledWalk | None:
        """Compiled-walk record for a request, or ``None`` off the fast path.

        Returns a memoized (or freshly admitted) :class:`CompiledWalk` when
        the procedure's model is chain-shaped and the request's parameters
        yield a usable binding signature; the record's estimate is valid for
        this request (its wall-clock ``estimation_ms`` is refreshed to the
        probe cost).  Returns ``None`` when the fast path does not apply —
        the caller must then use :meth:`estimate_fresh`.  Callers that
        already computed the request's binding signature (the facade does,
        for the estimate cache) pass it to avoid re-resolving the slots.
        """
        started = time.perf_counter()
        config = self.config
        if not (config.compiled_estimation and config.compiled_walks):
            return None
        if request.procedure in config.disabled_procedures:
            return None
        if model is None:
            model = self.provider.model_for(request)
        if model is None or not model.processed:
            return None
        table_key = (request.procedure, id(model))
        table = self._walk_tables.get(table_key)
        if table is None or table.version != model.version:
            table = CompiledWalkTable(model)
            self._walk_tables[table_key] = table
        if not table.chain:
            return None
        if signature is None:
            signature = self._compiled_for(request.procedure).binding_signature(
                request.parameters
            )
            if signature is None:
                return None
        record = table.records.get(signature)
        if record is None:
            record = CompiledWalk(self.estimate_fresh(request))
            if len(table.records) < config.compiled_walk_max_records:
                table.records[signature] = record
            return record
        record.uses += 1
        record.estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
        return record

    def clear_walk_records(self) -> None:
        """Drop every memoized whole-walk record.

        Walk records memoize the optimization *decision* alongside the
        estimate, and decisions bake the configuration (confidence
        threshold, OP3 tolerances) in — a live configuration change must
        call this so stale decisions are never replayed.
        """
        self._walk_tables.clear()

    def drop_walk_records(self, procedure: str) -> None:
        """Drop the compiled-walk tables of one procedure only.

        The hot-swap contract: installing a retrained model for procedure P
        must evict P's compiled walks without touching any other procedure's
        memoized state (the version token would catch stale tables anyway,
        but dropping them releases the retired model immediately).
        """
        for key in [key for key in self._walk_tables if key[0] == procedure]:
            del self._walk_tables[key]

    def binding_signature(self, request: ProcedureRequest) -> tuple | None:
        """The request's partition-binding signature (everything a walk reads
        from its parameters), or ``None`` when no signature can vouch for it.
        Used by the §6.3 estimate cache to refuse serving a cached walk to a
        request that would have walked a different path."""
        return self._compiled_for(request.procedure).binding_signature(
            request.parameters
        )

    def footprint_and_signature(
        self, request: ProcedureRequest
    ) -> tuple[frozenset[PartitionId] | None, tuple | None]:
        """One-pass ``(predicted footprint, binding signature)``.

        Matches :meth:`predicted_footprint` + :meth:`binding_signature` but
        resolves the mapped parameter slots once; ``Houdini.plan`` calls
        this on every request.
        """
        if self.mappings.get(request.procedure) is None:
            return None, None
        if self.config.compiled_estimation:
            return self._compiled_for(request.procedure).footprint_and_signature(
                request.parameters
            )
        # Interpreted ablation mode: footprint the paper-literal way; the
        # signature (used only for cache validity) still comes compiled.
        return (
            self.predicted_footprint(request),
            self._compiled_for(request.procedure).binding_signature(request.parameters),
        )

    def estimate_fresh(self, request: ProcedureRequest) -> PathEstimate:
        """Stepwise path estimate (no whole-walk memoization)."""
        started = time.perf_counter()
        estimate = PathEstimate(procedure=request.procedure)
        if request.procedure in self.config.disabled_procedures:
            estimate.degenerate = True
            estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
            return estimate
        model = self.provider.model_for(request)
        if model is None or not model.processed:
            estimate.degenerate = True
            estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
            return estimate
        if self.config.compiled_estimation:
            # The compiled resolvers replace every per-walk catalog/mapping
            # lookup, so the interpreted inputs are not even fetched.
            compiled = self._compiled_for(request.procedure)
            procedure = None
            mapping = None
        else:
            compiled = None
            procedure = self.catalog.procedure(request.procedure)
            mapping = self.mappings.get(request.procedure)
        self._walk(estimate, model, procedure, mapping, request.parameters, compiled)
        estimate.estimation_ms = (time.perf_counter() - started) * 1000.0
        return estimate

    # ------------------------------------------------------------------
    def predicted_footprint(self, request: ProcedureRequest) -> frozenset[PartitionId] | None:
        """Partitions the parameter mappings alone say the request may touch.

        This ignores the Markov model entirely: for every statement of the
        procedure and every plausible invocation counter (bounded by the
        longest array parameter), the partitioning parameter is resolved
        through the mapping.  Statements whose partitioning parameter cannot
        be resolved, and broadcast statements, contribute *every* partition.

        Houdini's run-time monitor uses this as a guard for the early-prepare
        optimization: a partition that the mappings say may still be needed
        is never declared finished prematurely.
        Returns ``None`` when no mapping exists for the procedure.
        """
        if self.config.compiled_estimation:
            # Parity with the interpreted path below: no mapping means no
            # answer, decided before the catalog is consulted (a request for
            # an unmapped, uncataloged procedure must not raise here).
            if self.mappings.get(request.procedure) is None:
                return None
            return self._compiled_for(request.procedure).footprint(request.parameters)
        mapping = self.mappings.get(request.procedure)
        if mapping is None:
            return None
        procedure = self.catalog.procedure(request.procedure)
        scheme = self.catalog.scheme
        max_counter = 1
        for value in request.parameters:
            if isinstance(value, (list, tuple)):
                max_counter = max(max_counter, len(value))
        max_counter = min(max_counter, 128)
        footprint: set[PartitionId] = set()
        for statement in procedure.statements.values():
            table = self.catalog.schema.table(statement.table)
            if table.replicated:
                if statement.operation is not Operation.SELECT:
                    return frozenset(range(scheme.num_partitions))
                continue
            partition_column = table.partition_column
            if partition_column is None:
                footprint.add(0)
                continue
            literal = statement.partitioning_literal(partition_column)
            if literal is not None:
                footprint.add(scheme.partition_for_value(literal))
                continue
            index = statement.partitioning_parameter_index(partition_column)
            if index is None:
                return frozenset(range(scheme.num_partitions))
            entry = mapping.entry_for(statement.name, index)
            if entry is None:
                return frozenset(range(scheme.num_partitions))
            for counter in range(max_counter):
                value = mapping.resolve(statement.name, index, counter, request.parameters)
                if value is not None:
                    footprint.add(scheme.partition_for_value(value))
        return frozenset(footprint)

    # ------------------------------------------------------------------
    def _walk(
        self,
        estimate: PathEstimate,
        model: MarkovModel,
        procedure: StoredProcedure | None,
        mapping: ParameterMapping | None,
        parameters: Sequence[Any],
        compiled: CompiledProcedure | None,
    ) -> None:
        current = model.begin
        vertices = estimate.vertices
        probabilities = estimate.edge_probabilities
        vertices.append(current)
        accumulated = EMPTY_PARTITION_SET
        counters: dict[str, int] = {}
        confidence = 1.0
        query_index = 0
        successors_of = model.successor_records
        choose = self._choose
        for _ in range(self.config.max_path_length):
            successors = successors_of(current)
            if not successors:
                break
            chosen, probability = choose(
                current, successors, model, procedure, mapping, parameters,
                accumulated, counters, estimate, compiled,
            )
            if chosen is None:
                break
            vertices.append(chosen)
            probabilities.append(probability)
            confidence *= probability
            if chosen.is_query:
                self._account_for_vertex(
                    estimate, model, chosen, confidence, query_index
                )
                counters[chosen.name] = chosen.counter + 1
                accumulated = accumulated.union(chosen.partitions)
                query_index += 1
            elif chosen.is_terminal:
                estimate.predicted_abort = chosen.kind is VertexKind.ABORT
                break
            current = chosen
        estimate._confidence_cache = (len(probabilities), confidence)

    def _choose(
        self,
        current: VertexKey,
        successors: list[tuple[VertexKey, float, bool, str, int, PartitionSet, PartitionSet]],
        model: MarkovModel,
        procedure: StoredProcedure | None,
        mapping: ParameterMapping | None,
        parameters: Sequence[Any],
        accumulated: PartitionSet,
        counters: dict[str, int],
        estimate: PathEstimate,
        compiled: CompiledProcedure | None,
    ) -> tuple[VertexKey | None, float]:
        """Pick the next state among a vertex's successor records.

        ``successors`` uses the denormalized layout of
        :meth:`~repro.markov.model.MarkovModel.successor_records`.

        The returned probability is the chosen edge's weight *renormalized
        over the candidate pool it was chosen from*.  A transition that the
        parameter mapping resolved unambiguously (only one valid candidate)
        therefore contributes a confidence of 1.0 — knowing the parameters
        removes the uncertainty the raw edge weight encodes — while genuine
        control-flow choices (several valid candidates, or the edge-weight
        fallback of §4.2) contribute their relative likelihood, which is what
        the confidence-threshold pruning of §4.3 acts on.
        """
        estimate.work_units += len(successors)
        if len(successors) == 1:
            # A single successor wins regardless of the validity checks
            # (pool = valid or consistent or successors), so the partition
            # prediction can be skipped entirely.
            record = successors[0]
            return record[0], 1.0 if record[1] > 0 else 0.0
        prediction_seed: tuple[tuple[str, int], PartitionSet | None] | None = None
        if compiled is not None:
            # When every non-terminal successor belongs to one statement, the
            # prediction pins the partitions and history, so the next state
            # is resolved with a single index probe: at most one successor
            # can match, making it the whole valid pool (probability 1.0).
            single_name, has_terminal = model.successor_hint(current)
            if single_name is not None and not has_terminal:
                expected_counter = counters.get(single_name, 0)
                predicted = compiled.predict_partitions(
                    single_name, expected_counter, parameters, accumulated
                )
                if predicted is not None:
                    hit = model.probe_successor(
                        current, single_name, expected_counter, accumulated, predicted
                    )
                    if hit is not None:
                        return hit[0], 1.0 if hit[1] > 0 else 0.0
                prediction_seed = ((single_name, expected_counter), predicted)
            elif len(successors) >= _GROUPED_CHOICE_MIN_FANOUT:
                # Multi-name (or terminal-bearing) vertex with a wide
                # fan-out: resolve each candidate name with one probe of the
                # per-name group index instead of scanning every successor
                # record.  Pool membership and ordering are identical to the
                # full scan below (positions restore the canonical record
                # order); below the fan-out threshold the plain scan is
                # cheaper than the group bookkeeping.
                return self._choose_grouped(
                    current, successors, model, parameters, accumulated,
                    counters, compiled,
                )
        valid: list[tuple[VertexKey, float]] = []
        consistent: list[tuple[VertexKey, float]] = []
        partition_cache: dict[tuple[str, int], PartitionSet | None] = {}
        counters_get = counters.get
        if prediction_seed is not None:
            # Reuse the prediction the probe fast path already computed.
            partition_cache[prediction_seed[0]] = prediction_seed[1]
        for key, probability, is_terminal, name, counter, previous, partitions in successors:
            if is_terminal:
                valid.append((key, probability))
                continue
            expected_counter = counters_get(name, 0)
            if counter != expected_counter:
                continue
            if previous is not accumulated and previous != accumulated:
                continue
            consistent.append((key, probability))
            cache_key = (name, expected_counter)
            if cache_key in partition_cache:
                predicted = partition_cache[cache_key]
            else:
                if compiled is not None:
                    predicted = compiled.predict_partitions(
                        name, expected_counter, parameters, accumulated
                    )
                else:
                    predicted = self._predict_partitions(
                        procedure, mapping, name, expected_counter,
                        parameters, accumulated,
                    )
                partition_cache[cache_key] = predicted
            if predicted is not None and (
                partitions is predicted or partitions == predicted
            ):
                valid.append((key, probability))
        pool = valid or consistent
        if not pool:
            pool = [(record[0], record[1]) for record in successors]
        if len(pool) == 1:
            key, probability = pool[0]
            return key, 1.0 if probability > 0 else 0.0
        best = max(pool, key=_pool_rank)
        total = sum(probability for _, probability in pool)
        if total <= 0:
            return best[0], 0.0
        return best[0], best[1] / total

    def _choose_grouped(
        self,
        current: VertexKey,
        successors: list,
        model: MarkovModel,
        parameters: Sequence[Any],
        accumulated: PartitionSet,
        counters: dict[str, int],
        compiled: CompiledProcedure,
    ) -> tuple[VertexKey | None, float]:
        """Multi-name candidate selection via the per-name group index.

        Behaviourally identical to the record scan in :meth:`_choose`: the
        valid pool is (terminals + per-name partition matches), the
        consistent pool is the counter/history-matching candidates, and both
        are kept in canonical record order so tie-breaking and probability
        renormalization agree with the interpreted path bit-for-bit.
        """
        groups, names, terminals = model.successor_groups(current)
        counters_get = counters.get
        valid: list[tuple] = list(terminals)
        consistent_groups: list[tuple] = []
        for name in names:
            expected_counter = counters_get(name, 0)
            group = groups.get((name, expected_counter, accumulated))
            if not group:
                continue
            consistent_groups.append(group)
            predicted = compiled.predict_partitions(
                name, expected_counter, parameters, accumulated
            )
            if predicted is None:
                continue
            for position, key, probability, partitions in group:
                if partitions is predicted or partitions == predicted:
                    valid.append((position, key, probability))
        if valid:
            if len(valid) > 1:
                valid.sort(key=_position_rank)
            pool = [(entry[1], entry[2]) for entry in valid]
        else:
            consistent = [entry for group in consistent_groups for entry in group]
            if consistent:
                if len(consistent) > 1:
                    consistent.sort(key=_position_rank)
                pool = [(entry[1], entry[2]) for entry in consistent]
            else:
                pool = [(record[0], record[1]) for record in successors]
        if len(pool) == 1:
            key, probability = pool[0]
            return key, 1.0 if probability > 0 else 0.0
        best = max(pool, key=_pool_rank)
        total = sum(probability for _, probability in pool)
        if total <= 0:
            return best[0], 0.0
        return best[0], best[1] / total

    # ------------------------------------------------------------------
    def _predict_partitions(
        self,
        procedure: StoredProcedure,
        mapping: ParameterMapping | None,
        statement_name: str,
        counter: int,
        parameters: Sequence[Any],
        accumulated: PartitionSet,
    ) -> PartitionSet | None:
        """Predict the partitions a candidate query would touch.

        Returns ``None`` when the prediction cannot be made — the candidate
        is then treated as "uncertain" and only structural checks apply.
        """
        statement = procedure.statement(statement_name)
        table = self.catalog.schema.table(statement.table)
        scheme = self.catalog.scheme
        if table.replicated:
            if statement.operation is Operation.SELECT:
                # Replicated reads are local to wherever the control code runs;
                # the best guess before execution is the partition the
                # transaction has used so far.
                base = self._dominant_partition(accumulated)
                if base is None:
                    return None
                return PartitionSet.of([base])
            return scheme.all_partitions()
        partition_column = table.partition_column
        if partition_column is None:
            return PartitionSet.of([0])
        literal = statement.partitioning_literal(partition_column)
        if literal is not None:
            return PartitionSet.of([scheme.partition_for_value(literal)])
        index = statement.partitioning_parameter_index(partition_column)
        if index is None:
            return scheme.all_partitions()
        if mapping is None:
            return None
        value = mapping.resolve(statement_name, index, counter, parameters)
        if value is None:
            return None
        return PartitionSet.of([scheme.partition_for_value(value)])

    @staticmethod
    def _dominant_partition(accumulated: PartitionSet) -> PartitionId | None:
        """Partition the transaction's control code is assumed to run on.

        The first touched partition is used deterministically (it matches how
        the base partition is chosen); ``None`` when nothing was touched yet.
        """
        if accumulated.partitions:
            return accumulated.partitions[0]
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _account_for_vertex(
        estimate: PathEstimate,
        model: MarkovModel,
        key: VertexKey,
        confidence: float,
        query_index: int,
    ) -> None:
        # The chosen key always comes from the model's own successor records.
        vertex = model.find_vertex(key)
        table = vertex.table
        if table is not None and table.abort > estimate.abort_probability:
            estimate.abort_probability = table.abort
        is_write = vertex.query_type is not None and vertex.query_type.is_write
        predictions = estimate.partitions
        for partition_id in key.partitions:
            prediction = predictions.get(partition_id)
            if prediction is None:
                predictions[partition_id] = PartitionPrediction(
                    partition_id=partition_id,
                    access_confidence=confidence,
                    last_access_index=query_index,
                    written=is_write,
                    access_count=1,
                )
                count = 1
            else:
                prediction.last_access_index = query_index
                prediction.written = prediction.written or is_write
                prediction.access_count += 1
                count = prediction.access_count
            # Online OP1 argmax (ties keep the smaller partition id).
            best = estimate._base_partition
            if (
                best is None
                or count > estimate._base_count
                or (count == estimate._base_count and partition_id < best)
            ):
                estimate._base_partition = partition_id
                estimate._base_count = count
