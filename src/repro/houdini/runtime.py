"""Run-time transaction monitoring and optimization updates (paper §4.4).

A :class:`HoudiniRuntime` instance is attached to one execution attempt as a
query listener.  After every query it:

* advances the transaction's position in the Markov model (adding a
  placeholder vertex when the state is unknown),
* checks whether the transaction deviated from the initial path estimate,
* uses the pre-computed probability tables to issue the two run-time updates
  the paper describes — disabling undo logging once the transaction can no
  longer abort (OP3) and declaring partitions finished so the DBMS can send
  early-prepare messages and start speculative execution (OP4),
* records the transition counts that model maintenance (§4.5) uses.

Accessing a partition that was previously declared finished raises
:class:`~repro.errors.MispredictionAbort`, forcing the coordinator to restart
the transaction — the cost of a wrong OP4 call, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.context import TransactionContext
from ..errors import MispredictionAbort
from ..markov.model import MarkovModel
from ..markov.vertex import ABORT_KEY, COMMIT_KEY, VertexKey
from ..types import EMPTY_PARTITION_SET, PartitionId, QueryInvocation
from .config import HoudiniConfig
from .estimate import PathEstimate


@dataclass(slots=True)
class RuntimeStats:
    """What happened while monitoring one execution attempt."""

    queries_observed: int = 0
    deviated_from_estimate: bool = False
    placeholders_added: int = 0
    undo_disabled_at_query: int | None = None
    finished_partitions: set[PartitionId] = field(default_factory=set)
    finish_mispredicted: bool = False
    transitions: list[tuple[VertexKey, VertexKey]] = field(default_factory=list)


class HoudiniRuntime:
    """Per-attempt monitor driving OP3/OP4 updates."""

    def __init__(
        self,
        model: MarkovModel | None,
        estimate: PathEstimate,
        config: HoudiniConfig,
        *,
        predicted_single_partition: bool,
        undo_initially_disabled: bool,
        learn: bool = True,
        footprint: frozenset[PartitionId] | None = None,
        allow_early_prepare: bool = True,
        never_finish: frozenset[PartitionId] = frozenset(),
    ) -> None:
        self.model = model
        self.estimate = estimate
        self.config = config
        self.predicted_single_partition = predicted_single_partition
        self._undo_disabled = undo_initially_disabled
        self.learn = learn
        #: Whether OP4 (early prepare) may be issued at all for this attempt.
        #: Restarted attempts become progressively more conservative so that
        #: the coordinator's retry loop is guaranteed to converge.
        self.allow_early_prepare = allow_early_prepare
        #: Partitions that must never be declared finished during this
        #: attempt (they caused an early-prepare misprediction earlier in the
        #: same logical transaction).
        self.never_finish = never_finish
        #: Partitions that the parameter mappings say this request may touch.
        #: They are never declared finished before their predicted last use —
        #: a guard against early-prepare mispredictions turning into restarts.
        self.footprint = footprint
        self._predicted_finish_points = estimate.finish_points()
        self.stats = RuntimeStats()
        self._current: VertexKey | None = model.begin if model is not None else None
        self._accumulated = EMPTY_PARTITION_SET
        # Read-only view of the estimated path past the begin vertex; the
        # walk is complete once the estimate reaches the runtime, so sharing
        # the list (instead of copying it) is safe.
        self._expected = estimate.vertices
        self._expected_offset = 1

    # ------------------------------------------------------------------
    # QueryListener interface
    # ------------------------------------------------------------------
    def __call__(self, context: TransactionContext, invocation: QueryInvocation) -> None:
        stats = self.stats
        observed = stats.queries_observed
        stats.queries_observed = observed + 1
        self._check_finished_partitions(invocation)
        model = self.model
        if model is None:
            return
        # While the attempt tracks the initial estimate, the next state is
        # the precompiled expected-path vertex at the current index — no
        # VertexKey needs to be derived (or hashed) at all, just four field
        # comparisons against what actually executed.
        key = None
        if not stats.deviated_from_estimate:
            index = observed + self._expected_offset
            if index < len(self._expected):
                expected = self._expected[index]
                if (
                    expected.is_query
                    and expected.name == invocation.statement
                    and expected.counter == invocation.counter
                    and expected.partitions == invocation.partitions
                    and expected.previous == self._accumulated
                ):
                    key = expected
                else:
                    stats.deviated_from_estimate = True
            else:
                stats.deviated_from_estimate = True
        if key is None:
            key = VertexKey.query(
                invocation.statement,
                invocation.counter,
                invocation.partitions,
                self._accumulated,
            )
        # One model probe serves both the advance and the update decisions.
        vertex = model.find_vertex(key)
        if vertex is None:
            vertex = model.add_placeholder(key, invocation.query_type)
            stats.placeholders_added += 1
            stats.deviated_from_estimate = True
        if self._current is not None:
            # Transitions are buffered per attempt and flushed into the
            # model in one batch by :meth:`finish`.
            stats.transitions.append((self._current, key))
        self._current = key
        self._accumulated = self._accumulated.union(invocation.partitions)
        self._issue_updates(context, key, vertex)

    # ------------------------------------------------------------------
    def _check_finished_partitions(self, invocation: QueryInvocation) -> None:
        """Abort if the query touches a partition already declared finished."""
        for partition_id in invocation.partitions:
            if partition_id in self.stats.finished_partitions:
                self.stats.finish_mispredicted = True
                raise MispredictionAbort(
                    partition_id,
                    reason=f"partition {partition_id} was declared finished (OP4) "
                    f"but was accessed again",
                )

    def _issue_updates(self, context: TransactionContext, key: VertexKey, vertex) -> None:
        table = vertex.table
        if table is None:
            return
        # OP3: disable undo logging once no path leads to the abort state.
        # The update is deliberately conservative (§4.3: "Houdini is more
        # cautious when estimating whether transactions could abort"): the
        # state must be well observed, must have zero residual abort
        # probability, and — because a rollback forced by an OP2
        # misprediction would be just as unrecoverable — must have no
        # residual probability of touching a partition outside the lock set.
        # Early-prepare gambles already taken this attempt (OP4) are a third
        # abort source: accessing a finished partition forces a restart, so
        # undo logging stays on while any finish declaration is pending.
        if (
            not self._undo_disabled
            and not self.stats.finished_partitions
            and self.predicted_single_partition
            and table.abort <= 0.0
            and vertex.hits >= self.config.op3_min_observations
            and not self._may_need_unlocked_partition(context, table)
        ):
            context.disable_undo_logging()
            self._undo_disabled = True
            self.stats.undo_disabled_at_query = self.stats.queries_observed
        # OP4: declare partitions finished when their finish probability
        # clears the (floored) confidence threshold.
        if not self.allow_early_prepare:
            return
        if self._undo_disabled:
            # The mirror of the OP3 guard above: a wrong finish declaration
            # forces an abort, and without an undo buffer that abort is
            # unrecoverable — so once logging is off, no new early-prepare
            # gambles are taken.
            return
        finish_threshold = max(self.config.confidence_threshold, self.config.op4_floor)
        if context.locked_partitions is None:
            candidate_partitions = range(table.num_partitions)
        else:
            candidate_partitions = context.locked_partitions
        for partition_id in candidate_partitions:
            if partition_id in self.stats.finished_partitions:
                continue
            if partition_id in self.never_finish:
                continue
            if partition_id == context.base_partition:
                # The base partition is released at commit; there is nothing
                # to early-prepare for the coordinator's own partition.
                continue
            if not self._finish_allowed(partition_id):
                continue
            if table.finish_probability(partition_id) >= finish_threshold:
                context.mark_partition_finished(partition_id)
                self.stats.finished_partitions.add(partition_id)

    def _finish_allowed(self, partition_id: PartitionId) -> bool:
        """Guard OP4 with the mapping-based footprint.

        A partition the parameter mappings say the transaction may touch is
        only released once the estimated last access to it has passed; a
        partition outside the footprint can be released as soon as the
        probability tables allow it.
        """
        if self.footprint is None or partition_id not in self.footprint:
            return True
        predicted_last = self._predicted_finish_points.get(partition_id)
        if predicted_last is None:
            return False
        return (self.stats.queries_observed - 1) >= predicted_last

    def _may_need_unlocked_partition(self, context: TransactionContext, table) -> bool:
        """Whether the transaction might still touch an unlocked partition.

        Two sources of evidence are combined: the parameter-mapping footprint
        (if every partition the mappings can name is already locked, an OP2
        misprediction is structurally impossible) and, failing that, the
        probability table of the current state.
        """
        if context.locked_partitions is None:
            return False
        locked = context.locked_partitions.as_frozenset()
        if self.footprint is not None and self.footprint <= locked:
            return False
        for partition_id in range(table.num_partitions):
            if partition_id in locked:
                continue
            if table.access_probability(partition_id) > 0.0:
                return True
        return False

    # ------------------------------------------------------------------
    def finish(self, committed: bool) -> None:
        """Seal the attempt: append the terminal transition and, when
        learning, flush the whole per-attempt transition buffer into the
        model in a single batch (one bulk call instead of one
        ``record_transition`` per monitored query)."""
        if self.model is None or self._current is None:
            return
        terminal = COMMIT_KEY if committed else ABORT_KEY
        self.stats.transitions.append((self._current, terminal))
        if self.learn:
            self.model.record_transitions(self.stats.transitions)
