"""Per-procedure statistics collected by the Houdini facade.

These counters are what the paper's Table 4 reports: for each stored
procedure, the percentage of transactions where each optimization was
successfully enabled and the average time spent computing estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProcedureStats:
    """Optimization bookkeeping for one stored procedure."""

    procedure: str
    transactions: int = 0
    op1_enabled: int = 0
    op1_correct: int = 0
    op2_enabled: int = 0
    op2_correct: int = 0
    op3_enabled: int = 0
    op4_enabled: int = 0
    mispredicted_restarts: int = 0
    estimation_ms_total: float = 0.0
    estimates: int = 0

    # ------------------------------------------------------------------
    def percentage(self, count: int) -> float:
        if self.transactions == 0:
            return 0.0
        return 100.0 * count / self.transactions

    @property
    def op1_rate(self) -> float:
        return self.percentage(self.op1_correct)

    @property
    def op2_rate(self) -> float:
        return self.percentage(self.op2_correct)

    @property
    def op3_rate(self) -> float:
        return self.percentage(self.op3_enabled)

    @property
    def op4_rate(self) -> float:
        return self.percentage(self.op4_enabled)

    @property
    def average_estimation_ms(self) -> float:
        if self.estimates == 0:
            return 0.0
        return self.estimation_ms_total / self.estimates


@dataclass
class HoudiniStats:
    """Aggregated statistics across every procedure."""

    procedures: dict[str, ProcedureStats] = field(default_factory=dict)

    def for_procedure(self, procedure: str) -> ProcedureStats:
        stats = self.procedures.get(procedure)
        if stats is None:
            stats = ProcedureStats(procedure)
            self.procedures[procedure] = stats
        return stats

    # ------------------------------------------------------------------
    @property
    def total_transactions(self) -> int:
        return sum(stats.transactions for stats in self.procedures.values())

    def overall_rate(self, attribute: str) -> float:
        """Weighted percentage of one counter across all procedures."""
        total = self.total_transactions
        if total == 0:
            return 0.0
        enabled = sum(getattr(stats, attribute) for stats in self.procedures.values())
        return 100.0 * enabled / total

    def average_estimation_ms(self) -> float:
        estimates = sum(stats.estimates for stats in self.procedures.values())
        if estimates == 0:
            return 0.0
        total = sum(stats.estimation_ms_total for stats in self.procedures.values())
        return total / estimates

    # ------------------------------------------------------------------
    def render_table(self) -> str:
        """Human-readable rendering in the shape of the paper's Table 4."""
        header = (
            f"{'Procedure':28s} {'OP1':>7s} {'OP2':>7s} {'OP3':>7s} {'OP4':>7s} "
            f"{'Estimate':>10s}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.procedures):
            stats = self.procedures[name]
            lines.append(
                f"{name:28s} {stats.op1_rate:6.1f}% {stats.op2_rate:6.1f}% "
                f"{stats.op3_rate:6.1f}% {stats.op4_rate:6.1f}% "
                f"{stats.average_estimation_ms:8.3f}ms"
            )
        return "\n".join(lines)
