"""Model providers: how Houdini finds the right Markov model for a request.

The paper evaluates two configurations: a single **global** model per stored
procedure, and a set of **partitioned** models per procedure selected by a
decision tree over features of the input parameters (Section 5).  Both are
hidden behind the :class:`ModelProvider` interface so the estimator does not
care which is in use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Mapping

from ..markov.model import MarkovModel
from ..types import ProcedureRequest


class ModelProvider(ABC):
    """Resolves the Markov model to use for an incoming request."""

    @abstractmethod
    def model_for(self, request: ProcedureRequest) -> MarkovModel | None:
        """Return the model for ``request`` (None when no model exists)."""

    @abstractmethod
    def models(self) -> Iterable[MarkovModel]:
        """Every model managed by this provider (for maintenance sweeps)."""

    def procedures(self) -> tuple[str, ...]:
        """Names of the procedures this provider has models for."""
        return tuple(sorted({model.procedure for model in self.models()}))

    def total_vertices(self) -> int:
        """Aggregate model size; used by the scalability ablation."""
        return sum(model.vertex_count() for model in self.models())


class GlobalModelProvider(ModelProvider):
    """One model per procedure — the paper's "global" configuration."""

    name = "global"

    def __init__(self, models: Mapping[str, MarkovModel]) -> None:
        self._models = dict(models)

    def model_for(self, request: ProcedureRequest) -> MarkovModel | None:
        return self._models.get(request.procedure)

    def models(self) -> Iterable[MarkovModel]:
        return self._models.values()

    def model_for_procedure(self, procedure: str) -> MarkovModel | None:
        return self._models.get(procedure)

    def install_model(self, procedure: str, model: MarkovModel) -> MarkovModel | None:
        """Replace the model served for ``procedure``; return the old one.

        This is the hot-swap entry point: the assignment is a single dict
        store, so every ``model_for`` call either sees the old model or the
        new one, never a mix.  Callers own the invalidation side — dropping
        the retired model's compiled walks, estimate-cache entries and
        maintenance state (see ``repro.selftune.swap``).
        """
        if model.procedure != procedure:
            raise ValueError(
                f"model is for procedure {model.procedure!r}, not {procedure!r}"
            )
        previous = self._models.get(procedure)
        self._models[procedure] = model
        return previous

    def __len__(self) -> int:
        return len(self._models)
