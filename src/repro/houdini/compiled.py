"""Compiled per-procedure statement resolvers (the estimation fast path).

Houdini's path estimation runs on the critical path of every transaction
(§6.3 measures 46.5% of a short transaction's run time spent estimating), so
every piece of per-step work matters.  The interpreted estimator resolves,
for every candidate state of every walk, the same catalog facts over and
over: whether the statement's table is replicated, which column it is
partitioned on, whether the partitioning column is bound to a literal or to
a parameter, and which parameter index that is.  None of that depends on the
request — it is fixed by the catalog and the parameter mapping.

A :class:`CompiledProcedure` therefore resolves each statement exactly once,
at model-load time, down to one of four resolver kinds:

* ``CONST`` — the partition set is fully known at compile time (literal
  bindings, unpartitioned tables, broadcasts, replicated writes);
* ``DOMINANT`` — a replicated read, predicted to run wherever the
  transaction's control code runs (its first touched partition);
* ``UNKNOWN`` — the partitioning parameter is unmapped, so no prediction can
  be made before execution;
* ``MAPPED`` — the partitioning parameter is mapped: the only per-request
  work left is one ``mapping.resolve`` call plus a hash of the value.

The procedure's mapping-only partition footprint (used by the run-time
monitor's early-prepare guard) is compiled the same way: its static part is
a precomputed set and only mapped, array-aligned slots are resolved per
request.

Chain-compiled walks
--------------------

For *chain-shaped* models (:meth:`repro.markov.model.MarkovModel.chain_shaped`
— every non-terminal vertex has one dominant successor statement) the
per-step choice disappears entirely: the whole walk is a deterministic
function of the request's **partition-binding signature** — what
``partition_for_value`` resolves for each mapped parameter slot, which is
all the estimator ever reads from the parameters.  A
:class:`CompiledWalk` therefore memoizes one finished walk — vertex
sequence, footprints, finish points, and (once the facade fills it in) the
resulting :class:`~repro.houdini.optimizations.OptimizationDecision` — per
(procedure, footprint/signature), turning estimation into a dict probe plus
one binding check.  :class:`CompiledWalkTable` holds those records for one
model and self-invalidates when the model's
:attr:`~repro.markov.model.MarkovModel.version` moves (a new vertex/edge or
a probability recomputation can change the walk).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..catalog.procedure import StoredProcedure
from ..catalog.schema import Catalog
from ..catalog.statement import Operation
from ..errors import EstimationError, UnknownStatementError
from ..mapping.parameter_mapping import ParameterMapping
from ..types import PartitionId, PartitionSet

#: Resolver kinds (see module docstring).
CONST = 0
DOMINANT = 1
UNKNOWN = 2
MAPPED = 3

#: Upper bound on the invocation counters scanned by the footprint
#: computation (matches the interpreted implementation).
MAX_FOOTPRINT_COUNTER = 128


class CompiledStatement:
    """One statement's partition resolver, fixed at compile time.

    ``MAPPED`` resolvers snapshot the winning mapping entry's procedure
    parameter index and array alignment, so the per-request work is a couple
    of tuple indexings — the ``mapping.entry_for`` probe happens at compile
    time, not per candidate state.
    """

    __slots__ = ("name", "kind", "constant", "param_index", "proc_param_index", "array_aligned")

    def __init__(
        self,
        name: str,
        kind: int,
        constant: PartitionSet | None = None,
        param_index: int | None = None,
        proc_param_index: int | None = None,
        array_aligned: bool = False,
    ) -> None:
        self.name = name
        self.kind = kind
        self.constant = constant
        self.param_index = param_index
        self.proc_param_index = proc_param_index
        self.array_aligned = array_aligned


class CompiledProcedure:
    """All of one procedure's statement resolvers plus its footprint plan.

    Instances are immutable once built and depend only on the catalog and the
    procedure's parameter mapping, both fixed for the lifetime of a
    :class:`~repro.houdini.estimator.PathEstimator` — the estimator compiles
    each procedure once and reuses it for every request.
    """

    __slots__ = (
        "procedure",
        "statements",
        "_mapping",
        "_scheme",
        "_singletons",
        "_all_frozen",
        "_footprint_all",
        "_footprint_static",
        "_footprint_dynamic",
    )

    def __init__(
        self,
        procedure: StoredProcedure,
        catalog: Catalog,
        mapping: ParameterMapping | None,
    ) -> None:
        scheme = catalog.scheme
        schema = catalog.schema
        self.procedure = procedure.name
        self._mapping = mapping
        self._scheme = scheme
        self._singletons = tuple(
            PartitionSet.of([pid]) for pid in range(scheme.num_partitions)
        )
        self._all_frozen = frozenset(range(scheme.num_partitions))
        all_partitions = scheme.all_partitions()
        statements: dict[str, CompiledStatement] = {}
        footprint_static: set[PartitionId] = set()
        footprint_all = False
        #: (procedure-parameter index, array_aligned) pairs for the mapped
        #: slots whose footprint contribution depends on the request
        #: parameters (deduplicated: two statements keyed by the same
        #: procedure parameter contribute the same partitions).
        footprint_dynamic: list[tuple[int, bool]] = []
        for statement in procedure.statements.values():
            name = statement.name
            table = schema.table(statement.table)
            if table.replicated:
                if statement.operation is Operation.SELECT:
                    # Local read wherever the control code runs; contributes
                    # nothing to the mapping-only footprint.
                    statements[name] = CompiledStatement(name, DOMINANT)
                else:
                    statements[name] = CompiledStatement(name, CONST, all_partitions)
                    footprint_all = True
                continue
            partition_column = table.partition_column
            if partition_column is None:
                statements[name] = CompiledStatement(name, CONST, self._singletons[0])
                footprint_static.add(0)
                continue
            literal = statement.partitioning_literal(partition_column)
            if literal is not None:
                pid = scheme.partition_for_value(literal)
                statements[name] = CompiledStatement(name, CONST, self._singletons[pid])
                footprint_static.add(pid)
                continue
            index = statement.partitioning_parameter_index(partition_column)
            if index is None:
                statements[name] = CompiledStatement(name, CONST, all_partitions)
                footprint_all = True
                continue
            entry = mapping.entry_for(name, index) if mapping is not None else None
            if entry is None:
                statements[name] = CompiledStatement(name, UNKNOWN)
                footprint_all = True
                continue
            statements[name] = CompiledStatement(
                name,
                MAPPED,
                param_index=index,
                proc_param_index=entry.procedure_param_index,
                array_aligned=entry.array_aligned,
            )
            slot = (entry.procedure_param_index, entry.array_aligned)
            if slot not in footprint_dynamic:
                footprint_dynamic.append(slot)
        self.statements = statements
        self._footprint_all = footprint_all
        self._footprint_static = frozenset(footprint_static)
        self._footprint_dynamic = tuple(footprint_dynamic)

    # ------------------------------------------------------------------
    def predict_partitions(
        self,
        statement_name: str,
        counter: int,
        parameters: Sequence[Any],
        accumulated: PartitionSet,
    ) -> PartitionSet | None:
        """Partitions the statement's next invocation would touch.

        Returns ``None`` when the prediction cannot be made (the candidate is
        then treated as "uncertain" and only structural checks apply).
        Behaviourally identical to the interpreted
        :meth:`PathEstimator._predict_partitions`, minus the per-call catalog
        walk.
        """
        compiled = self.statements.get(statement_name)
        if compiled is None:
            raise UnknownStatementError(self.procedure, statement_name)
        kind = compiled.kind
        if kind == CONST:
            return compiled.constant
        if kind == MAPPED:
            proc_index = compiled.proc_param_index
            if proc_index >= len(parameters):
                raise EstimationError(
                    f"mapping for {self.procedure!r} references parameter "
                    f"{proc_index} but only {len(parameters)} were supplied"
                )
            value = parameters[proc_index]
            if compiled.array_aligned:
                if not isinstance(value, (list, tuple)) or counter >= len(value):
                    return None
                value = value[counter]
            if value is None:
                return None
            return self._singletons[self._scheme.partition_for_value(value)]
        if kind == DOMINANT:
            if accumulated.partitions:
                return self._singletons[accumulated.partitions[0]]
            return None
        return None  # UNKNOWN

    # ------------------------------------------------------------------
    def _resolve_slots(
        self, parameters: Sequence[Any]
    ) -> tuple[frozenset[PartitionId], tuple | None]:
        """The single mapped-slot resolution loop behind the footprint and
        signature accessors.

        Returns ``(static ∪ resolved dynamic partitions, signature)``; the
        signature is ``None`` when it cannot vouch for the walk (an array
        longer than the compiled counter bound).  Raises
        :class:`~repro.errors.EstimationError` when the mapping references a
        parameter the request did not supply.
        """
        partition_for_value = self._scheme.partition_for_value
        parameter_count = len(parameters)
        footprint: set[PartitionId] = set(self._footprint_static)
        signature: list = []
        compilable = True
        for proc_index, array_aligned in self._footprint_dynamic:
            if proc_index >= parameter_count:
                raise EstimationError(
                    f"mapping for {self.procedure!r} references parameter "
                    f"{proc_index} but only {parameter_count} were supplied"
                )
            value = parameters[proc_index]
            if array_aligned:
                if not isinstance(value, (list, tuple)):
                    signature.append(None)
                    continue
                if len(value) > MAX_FOOTPRINT_COUNTER:
                    # Too long for a signature to vouch for the walk; the
                    # footprint still counts the bounded prefix.
                    compilable = False
                    for element in value[:MAX_FOOTPRINT_COUNTER]:
                        if element is not None:
                            footprint.add(partition_for_value(element))
                    continue
                bindings = tuple(
                    None if element is None else partition_for_value(element)
                    for element in value
                )
                signature.append(bindings)
                for pid in bindings:
                    if pid is not None:
                        footprint.add(pid)
            elif value is None:
                signature.append(None)
            else:
                pid = partition_for_value(value)
                signature.append(pid)
                footprint.add(pid)
        return frozenset(footprint), (tuple(signature) if compilable else None)

    def binding_signature(self, parameters: Sequence[Any]) -> tuple | None:
        """Everything the estimator's walk reads from the parameters.

        The walk consults the request parameters only through the compiled
        ``MAPPED`` resolvers — i.e. through ``partition_for_value`` of each
        mapped slot's value (element-wise for array-aligned slots, whose
        length also matters because an exhausted array predicts ``None``).
        The returned tuple captures exactly that, so two requests with equal
        signatures walk an identical path through a chain-shaped model.

        Returns ``None`` when no signature can vouch for the request (an
        array longer than the compiled counter bound, or a mapping that
        references a missing parameter) — callers must then fall back to the
        stepwise walk.
        """
        if not self._footprint_dynamic:
            return ()
        try:
            return self._resolve_slots(parameters)[1]
        except EstimationError:
            # A missing parameter is a stepwise-walk concern (the walk only
            # fails if it actually reaches the affected statement), not a
            # signature concern.
            return None

    def footprint_and_signature(
        self, parameters: Sequence[Any]
    ) -> tuple[frozenset[PartitionId] | None, tuple | None]:
        """One-pass ``(footprint, binding signature)`` for a request.

        Equivalent to calling :meth:`footprint` and
        :meth:`binding_signature` separately, but the mapped slots are
        resolved once — this is the hot path of every ``Houdini.plan`` call,
        where both values are needed.
        """
        if self._mapping is None:
            return None, None
        if self._footprint_all:
            # The footprint is the whole cluster regardless of the
            # parameters (a broadcast, replicated write, or unmapped
            # partitioning parameter), so — like :meth:`footprint` — no
            # parameter validation happens on this path.
            return self._all_frozen, self.binding_signature(parameters)
        if not self._footprint_dynamic:
            return self._footprint_static, ()
        return self._resolve_slots(parameters)

    def footprint(self, parameters: Sequence[Any]) -> frozenset[PartitionId] | None:
        """Partitions the parameter mappings alone say a request may touch.

        ``None`` when the procedure has no mapping at all (nothing can be
        said); the full partition range when any statement is a broadcast,
        a replicated write, or has an unmapped partitioning parameter.
        """
        return self.footprint_and_signature(parameters)[0]


class CompiledWalk:
    """One memoized whole-walk record of a chain-shaped model.

    ``estimate`` is the finished stepwise walk for this binding signature
    (shared across requests — read-only apart from the wall-clock
    ``estimation_ms``, which each probe refreshes).  ``decision`` starts out
    ``None``; the Houdini facade fills it in the first time the record is
    planned, *unless* the decision is support-limited (it could legitimately
    change as the model's observation counts grow — see
    :attr:`~repro.houdini.optimizations.OptimizationDecision.support_limited`),
    in which case it is re-derived per request.
    """

    __slots__ = ("estimate", "decision", "uses")

    def __init__(self, estimate) -> None:
        self.estimate = estimate
        self.decision = None
        self.uses = 0


class CompiledWalkTable:
    """Per-model store of :class:`CompiledWalk` records.

    The table snapshots the model's :attr:`~repro.markov.model.MarkovModel.version`
    and whether it is chain-shaped when built; the estimator rebuilds it
    whenever the version moves (run-time learning added a vertex/edge, or a
    maintenance pass recomputed probabilities).  It keeps a strong reference
    to the model so identity-keyed lookups stay unambiguous for the
    estimator's lifetime.
    """

    __slots__ = ("model", "version", "chain", "records")

    def __init__(self, model) -> None:
        self.model = model
        self.version = model.version
        self.chain = model.chain_shaped()
        self.records: dict[tuple, CompiledWalk] = {}
