"""Optimization selection from an initial path estimate (paper §4.3).

Turns a :class:`~repro.houdini.estimate.PathEstimate` into the concrete
:class:`~repro.txn.plan.ExecutionPlan` the transaction coordinator consumes:

* **OP1** — the base partition is the one the estimated path accesses most.
* **OP2** — a partition is locked when its predicted access probability
  (path confidence, or the begin-state probability table for partitions not
  on the path) meets the confidence threshold.  A threshold of zero therefore
  locks every partition, reproducing the left edge of Fig. 13.
* **OP3** — undo logging is disabled only for transactions predicted to be
  single-partitioned whose greatest abort probability along the path is
  negligible *and* whose "will not abort" confidence clears the threshold.
* **OP4** — per-partition finish points from the estimate, used by the
  simulator to early-prepare / release partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..markov.model import MarkovModel
from ..txn.plan import ExecutionPlan
from ..types import PartitionId, PartitionSet, ProcedureRequest
from .config import HoudiniConfig
from .estimate import PathEstimate


@dataclass(slots=True)
class OptimizationDecision:
    """Which of the four optimizations were selected for a transaction."""

    base_partition: PartitionId
    locked_partitions: PartitionSet
    predicted_single_partition: bool
    disable_undo: bool
    finish_after_query: dict[PartitionId, int] = field(default_factory=dict)
    abort_probability: float = 0.0
    confidence: float = 1.0
    #: True when OP1 actually came from the estimate (vs. an arrival-node fallback).
    op1_selected: bool = False
    #: True when OP2 produced a proper subset of the cluster's partitions.
    op2_selected: bool = False
    #: True when OP3 was withheld *only* because the model's observation
    #: count was too thin (the Laplace sampling-risk gate).  Such a decision
    #: can legitimately flip as hits accumulate — without any model-version
    #: change — so caches must never reuse it.
    support_limited: bool = False

    def as_plan(self, estimation_ms: float, source: str) -> ExecutionPlan:
        # The finish map is shared, not copied: plans and decisions are
        # read-only once handed to the coordinator.
        return ExecutionPlan(
            base_partition=self.base_partition,
            locked_partitions=self.locked_partitions,
            undo_logging=not self.disable_undo,
            finish_after_query=self.finish_after_query,
            estimation_ms=estimation_ms,
            source=source,
            predicted_single_partition=self.predicted_single_partition,
            predicted_abort_probability=self.abort_probability,
        )


class OptimizationSelector:
    """Selects OP1-OP4 for each request based on its path estimate."""

    def __init__(self, config: HoudiniConfig, num_partitions: int, partitions_per_node: int = 2) -> None:
        self.config = config
        self.num_partitions = num_partitions
        self.partitions_per_node = partitions_per_node

    # ------------------------------------------------------------------
    def decide(
        self,
        request: ProcedureRequest,
        estimate: PathEstimate,
        model: MarkovModel | None,
    ) -> OptimizationDecision:
        threshold = self.config.confidence_threshold
        if estimate.degenerate or not estimate.vertices:
            return self._fallback_decision(request)

        # OP1 -----------------------------------------------------------
        base = estimate.base_partition()
        op1_selected = base is not None
        if base is None:
            base = self._arrival_partition(request)

        # OP2 -----------------------------------------------------------
        # A partition is locked when its predicted access probability clears
        # the confidence threshold.  Partitions on the estimated path use the
        # path confidence; partitions the path does not visit use the
        # probability table of the first estimated state (which conditions on
        # the home partition), so a threshold of zero locks everything and
        # conditional-branch partitions are locked exactly when the threshold
        # is below their branch probability (the Fig. 13 behaviour).
        locked: set[PartitionId] = {base}
        for prediction in estimate.partitions.values():
            if prediction.access_confidence >= threshold:
                locked.add(prediction.partition_id)
        # One shared probe of the first estimated query state backs both the
        # OP2 reference table and the OP3 support estimate.
        model_ready = model is not None and model.processed
        first_vertex = None
        if model_ready:
            query_vertices = estimate.query_vertices
            if query_vertices:
                first_vertex = model.find_vertex(query_vertices[0])
            if first_vertex is not None and first_vertex.table is not None:
                # The first query state conditions on the home partition,
                # removing the "which home?" uncertainty the begin state
                # mixes in.
                reference_table = first_vertex.table
            else:
                reference_table = model.probability_table(model.begin)
        else:
            reference_table = None
        if reference_table is not None:
            if threshold <= 0.0:
                # access_probability >= 0 holds everywhere: lock the cluster.
                locked.update(range(self.num_partitions))
            else:
                for partition_id, access in reference_table.positive_access():
                    if access >= threshold:
                        locked.add(partition_id)
        locked_set = PartitionSet.of(locked)
        op2_selected = len(locked_set) < self.num_partitions
        predicted_single = len(locked_set) <= 1

        # OP3 -----------------------------------------------------------
        abort_probability = estimate.abort_probability
        if estimate.predicted_abort:
            abort_probability = max(abort_probability, 1.0)
        # A rollback without an undo buffer is unrecoverable, so undo logging
        # is only disabled up front when the model sees *no* chance of the
        # transaction aborting or escaping its lock set (an OP2 misprediction
        # would force a rollback too).  Less certain transactions still get
        # the optimization later via the run-time update (§4.4).
        # The cheap gates run first; the table scans (support lookup, escape
        # probability) only when they pass.
        disable_undo = (
            predicted_single
            and abort_probability <= self.config.abort_tolerance
            and (1.0 - abort_probability) >= threshold
        )
        support_limited = False
        if disable_undo:
            # Guard against thinly-supported models: with n observed
            # transactions an unobserved abort could still occur with
            # probability ~1/(n+2) (Laplace), so the support must be large
            # enough for "no abort seen" to actually mean "abort probability
            # below tolerance".
            if not model_ready:
                support = 0
            elif first_vertex is not None:
                support = first_vertex.hits
            else:
                support = model.transactions_observed
            sampling_risk = 1.0 / (support + 2.0)
            if sampling_risk > self.config.abort_tolerance:
                # Every other OP3 gate passed: more observations alone could
                # flip this decision, so it must not be cached.
                disable_undo = False
                support_limited = True
            else:
                disable_undo = self._escape_probability(
                    estimate, model, locked_set, first_vertex
                ) <= 0.0

        # OP4 -----------------------------------------------------------
        locked_frozen = locked_set.as_frozenset()
        finish_points = estimate.finish_points()
        if locked_frozen.issuperset(finish_points):
            # Shared, not copied: decisions and finish maps are read-only
            # once published.
            finish_after = finish_points
        else:
            finish_after = {
                partition_id: index
                for partition_id, index in finish_points.items()
                if partition_id in locked_frozen
            }

        return OptimizationDecision(
            base_partition=base,
            locked_partitions=locked_set,
            predicted_single_partition=predicted_single,
            disable_undo=disable_undo,
            finish_after_query=finish_after,
            abort_probability=abort_probability,
            confidence=estimate.confidence,
            op1_selected=op1_selected,
            op2_selected=op2_selected,
            support_limited=support_limited,
        )

    # ------------------------------------------------------------------
    def _escape_probability(
        self,
        estimate: PathEstimate,
        model: MarkovModel | None,
        locked_set: PartitionSet,
        first_vertex=None,
    ) -> float:
        """Largest modelled probability of touching an unlocked partition.

        ``first_vertex`` may carry the caller's already-probed vertex for the
        first query state, saving the duplicate lookup.
        """
        if model is None or not model.processed:
            return 1.0
        locked = locked_set.as_frozenset()
        find_vertex = model.find_vertex
        for index, key in enumerate(estimate.query_vertices):
            vertex = first_vertex if index == 0 and first_vertex is not None else find_vertex(key)
            if vertex is None or vertex.table is None:
                return 1.0
            for partition_id, access in vertex.table.positive_access():
                if partition_id not in locked:
                    return access
        return 0.0

    def _fallback_decision(self, request: ProcedureRequest) -> OptimizationDecision:
        """No usable estimate: run as a fully distributed transaction."""
        base = self._arrival_partition(request)
        return OptimizationDecision(
            base_partition=base,
            locked_partitions=PartitionSet.of(range(self.num_partitions)),
            predicted_single_partition=self.num_partitions == 1,
            disable_undo=False,
            abort_probability=1.0,
        )

    def _arrival_partition(self, request: ProcedureRequest) -> PartitionId:
        """First partition of the node the request arrived at."""
        partition = request.arrival_node * self.partitions_per_node
        return partition % self.num_partitions
