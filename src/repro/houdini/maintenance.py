"""Model maintenance (paper §4.5).

As transactions execute, Houdini counts how often they take each outgoing
edge of every vertex they visit.  When the observed transition distribution
of a vertex drifts too far from the probabilities stored in the model —
accuracy below a threshold (75% in the paper) — the model's edge and vertex
probabilities are recomputed from the accumulated counters.  This happens
on-line and is cheap (the paper quotes ≤ 5 ms); full model regeneration is
only needed when the partitioning scheme or the procedure code changes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from ..markov.model import MarkovModel
from ..markov.vertex import VertexKey
from .config import HoudiniConfig

#: How many recent transitions every maintenance keeps regardless of the
#: configured window.  This tail is what ``set_window`` rebuilds the sliding
#: window from when a window is enabled (or shrunk) mid-run — without it,
#: enabling a window via ``reconfigure`` would silently keep the unbounded
#: all-time counters until enough new traffic arrived to fill the window.
TAIL_LIMIT = 2048


def _validate_window(window) -> None:
    if window is not None and (
        isinstance(window, bool) or not isinstance(window, int) or window < 1
    ):
        raise ValueError("maintenance window must be a positive int or None")


@dataclass
class MaintenanceStats:
    """Counters describing maintenance activity for one model."""

    transitions_observed: int = 0
    accuracy_checks: int = 0
    recomputations: int = 0
    last_accuracy: float = 1.0


class ModelMaintenance:
    """Tracks observed transitions and recomputes drifting models."""

    def __init__(self, model: MarkovModel, config: HoudiniConfig | None = None) -> None:
        self.model = model
        self.config = config or HoudiniConfig()
        self.stats = MaintenanceStats()
        self._observed: dict[VertexKey, dict[VertexKey, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        #: Recent transitions, oldest first, when a sliding window is
        #: configured (§4.5 future work: "a sliding window that only
        #: includes recent transactions for fast changing workloads").
        self._window: deque[tuple[VertexKey, VertexKey]] | None = (
            deque() if self.config.maintenance_window else None
        )
        #: Bounded always-on record of the most recent transitions so the
        #: sliding window can be (re)built when it is resized mid-run.
        self._tail: deque[tuple[VertexKey, VertexKey]] = deque(maxlen=TAIL_LIMIT)

    # ------------------------------------------------------------------
    def record_transitions(self, transitions) -> None:
        """Record the (source, target) pairs one transaction visited."""
        for source, target in transitions:
            self._observed[source][target] += 1
            self.stats.transitions_observed += 1
            self._tail.append((source, target))
            if self._window is not None:
                self._window.append((source, target))
                if len(self._window) > self.config.maintenance_window:
                    self._evict(*self._window.popleft())

    def set_window(self, window: int | None) -> None:
        """Resize (or disable) the sliding window mid-run.

        Enabling or shrinking the window rebuilds the observed counters from
        the recent tail so drift checks immediately reflect only the last
        ``window`` transitions — the all-time history is discarded rather than
        silently kept until new traffic pushes it out.  ``None`` disables the
        window: the current counters are kept and accumulate from here on.
        """
        _validate_window(window)
        self.config.maintenance_window = window
        if window is None:
            self._window = None
            return
        tail = list(self._tail)[-window:]
        self._observed = defaultdict(lambda: defaultdict(int))
        for source, target in tail:
            self._observed[source][target] += 1
        self._window = deque(tail)

    def _evict(self, source: VertexKey, target: VertexKey) -> None:
        """Forget one windowed-out transition."""
        counts = self._observed.get(source)
        if counts is None:
            return
        counts[target] -= 1
        if counts[target] <= 0:
            del counts[target]
        if not counts:
            del self._observed[source]

    # ------------------------------------------------------------------
    def vertex_accuracy(self, source: VertexKey) -> float:
        """How well the model's distribution matches the observed one.

        Accuracy is the overlap of the two distributions
        (``sum(min(p_model, p_observed))``): 1.0 when they agree exactly and
        0.0 when they are disjoint.
        """
        observed = self._observed.get(source)
        if not observed:
            return 1.0
        total = sum(observed.values())
        if total == 0:
            return 1.0
        model_distribution = self.model.edge_distribution(source)
        overlap = 0.0
        for target, count in observed.items():
            observed_probability = count / total
            overlap += min(observed_probability, model_distribution.get(target, 0.0))
        return overlap

    def check(self) -> bool:
        """Evaluate drift; recompute probabilities if accuracy is too low.

        Returns True when a recomputation happened.
        """
        self.stats.accuracy_checks += 1
        worst = 1.0
        for source, observed in self._observed.items():
            if sum(observed.values()) < self.config.maintenance_min_observations:
                continue
            worst = min(worst, self.vertex_accuracy(source))
        self.stats.last_accuracy = worst
        if worst < self.config.maintenance_accuracy_threshold:
            self.recompute()
            return True
        return False

    def recompute(self) -> None:
        """Recompute the model's probabilities from its visit counters."""
        self.model.recompute_probabilities(
            precompute_tables=self.config.precompute_tables
        )
        self.stats.recomputations += 1
        self._observed.clear()
        self._tail.clear()
        if self._window is not None:
            self._window.clear()


class MaintenanceRegistry:
    """Maintenance state for every model a provider manages."""

    def __init__(self, config: HoudiniConfig | None = None) -> None:
        self.config = config or HoudiniConfig()
        self._by_model: dict[int, ModelMaintenance] = {}

    def for_model(self, model: MarkovModel) -> ModelMaintenance:
        key = id(model)
        maintenance = self._by_model.get(key)
        if maintenance is None:
            maintenance = ModelMaintenance(model, self.config)
            self._by_model[key] = maintenance
        return maintenance

    def check_all(self) -> list[str]:
        """Run drift checks on every tracked model.

        Returns the procedure names whose models were recomputed (possibly
        with duplicates when a partitioned provider recomputes several
        cluster models of one procedure) so callers can invalidate exactly
        the affected per-procedure state instead of flushing everything.
        """
        return [
            maintenance.model.procedure
            for maintenance in self._by_model.values()
            if maintenance.check()
        ]

    def set_window(self, window: int | None) -> None:
        """Resize the sliding window of every tracked maintenance.

        New maintenances created afterwards pick the window up from the
        shared config; existing ones rebuild their counters from the recent
        tail (see :meth:`ModelMaintenance.set_window`).
        """
        _validate_window(window)
        self.config.maintenance_window = window
        for maintenance in self._by_model.values():
            maintenance.set_window(window)

    def forget(self, model: MarkovModel) -> None:
        """Stop tracking ``model`` (hot swap retired it).

        Must be called while the caller still holds a reference to the old
        model — afterwards its ``id`` may be recycled and would alias the
        registry entry onto an unrelated model.
        """
        self._by_model.pop(id(model), None)

    def maintenances(self):
        return list(self._by_model.values())

    def stats_by_procedure(self) -> dict[str, dict[str, int | float]]:
        """Roll maintenance counters up per procedure for metrics surfaces.

        Counters are summed over a procedure's models (a partitioned provider
        tracks several per procedure); ``last_accuracy`` reports the worst.
        """
        rollup: dict[str, dict[str, int | float]] = {}
        for maintenance in self._by_model.values():
            procedure = maintenance.model.procedure
            entry = rollup.get(procedure)
            if entry is None:
                entry = rollup[procedure] = {
                    "transitions_observed": 0,
                    "accuracy_checks": 0,
                    "recomputations": 0,
                    "last_accuracy": 1.0,
                }
            stats = maintenance.stats
            entry["transitions_observed"] += stats.transitions_observed
            entry["accuracy_checks"] += stats.accuracy_checks
            entry["recomputations"] += stats.recomputations
            entry["last_accuracy"] = min(entry["last_accuracy"], stats.last_accuracy)
        return {procedure: rollup[procedure] for procedure in sorted(rollup)}
