"""Model maintenance (paper §4.5).

As transactions execute, Houdini counts how often they take each outgoing
edge of every vertex they visit.  When the observed transition distribution
of a vertex drifts too far from the probabilities stored in the model —
accuracy below a threshold (75% in the paper) — the model's edge and vertex
probabilities are recomputed from the accumulated counters.  This happens
on-line and is cheap (the paper quotes ≤ 5 ms); full model regeneration is
only needed when the partitioning scheme or the procedure code changes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from ..markov.model import MarkovModel
from ..markov.vertex import VertexKey
from .config import HoudiniConfig


@dataclass
class MaintenanceStats:
    """Counters describing maintenance activity for one model."""

    transitions_observed: int = 0
    accuracy_checks: int = 0
    recomputations: int = 0
    last_accuracy: float = 1.0


class ModelMaintenance:
    """Tracks observed transitions and recomputes drifting models."""

    def __init__(self, model: MarkovModel, config: HoudiniConfig | None = None) -> None:
        self.model = model
        self.config = config or HoudiniConfig()
        self.stats = MaintenanceStats()
        self._observed: dict[VertexKey, dict[VertexKey, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        #: Recent transitions, oldest first, when a sliding window is
        #: configured (§4.5 future work: "a sliding window that only
        #: includes recent transactions for fast changing workloads").
        self._window: deque[tuple[VertexKey, VertexKey]] | None = (
            deque() if self.config.maintenance_window else None
        )

    # ------------------------------------------------------------------
    def record_transitions(self, transitions) -> None:
        """Record the (source, target) pairs one transaction visited."""
        for source, target in transitions:
            self._observed[source][target] += 1
            self.stats.transitions_observed += 1
            if self._window is not None:
                self._window.append((source, target))
                if len(self._window) > self.config.maintenance_window:
                    self._evict(*self._window.popleft())

    def _evict(self, source: VertexKey, target: VertexKey) -> None:
        """Forget one windowed-out transition."""
        counts = self._observed.get(source)
        if counts is None:
            return
        counts[target] -= 1
        if counts[target] <= 0:
            del counts[target]
        if not counts:
            del self._observed[source]

    # ------------------------------------------------------------------
    def vertex_accuracy(self, source: VertexKey) -> float:
        """How well the model's distribution matches the observed one.

        Accuracy is the overlap of the two distributions
        (``sum(min(p_model, p_observed))``): 1.0 when they agree exactly and
        0.0 when they are disjoint.
        """
        observed = self._observed.get(source)
        if not observed:
            return 1.0
        total = sum(observed.values())
        if total == 0:
            return 1.0
        model_distribution = self.model.edge_distribution(source)
        overlap = 0.0
        for target, count in observed.items():
            observed_probability = count / total
            overlap += min(observed_probability, model_distribution.get(target, 0.0))
        return overlap

    def check(self) -> bool:
        """Evaluate drift; recompute probabilities if accuracy is too low.

        Returns True when a recomputation happened.
        """
        self.stats.accuracy_checks += 1
        worst = 1.0
        for source, observed in self._observed.items():
            if sum(observed.values()) < self.config.maintenance_min_observations:
                continue
            worst = min(worst, self.vertex_accuracy(source))
        self.stats.last_accuracy = worst
        if worst < self.config.maintenance_accuracy_threshold:
            self.recompute()
            return True
        return False

    def recompute(self) -> None:
        """Recompute the model's probabilities from its visit counters."""
        self.model.recompute_probabilities(
            precompute_tables=self.config.precompute_tables
        )
        self.stats.recomputations += 1
        self._observed.clear()
        if self._window is not None:
            self._window.clear()


class MaintenanceRegistry:
    """Maintenance state for every model a provider manages."""

    def __init__(self, config: HoudiniConfig | None = None) -> None:
        self.config = config or HoudiniConfig()
        self._by_model: dict[int, ModelMaintenance] = {}

    def for_model(self, model: MarkovModel) -> ModelMaintenance:
        key = id(model)
        maintenance = self._by_model.get(key)
        if maintenance is None:
            maintenance = ModelMaintenance(model, self.config)
            self._by_model[key] = maintenance
        return maintenance

    def check_all(self) -> list[str]:
        """Run drift checks on every tracked model.

        Returns the procedure names whose models were recomputed (possibly
        with duplicates when a partitioned provider recomputes several
        cluster models of one procedure) so callers can invalidate exactly
        the affected per-procedure state instead of flushing everything.
        """
        return [
            maintenance.model.procedure
            for maintenance in self._by_model.values()
            if maintenance.check()
        ]

    def maintenances(self):
        return list(self._by_model.values())
