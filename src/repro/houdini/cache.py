"""Estimate caching for always-single-partition procedures (paper §6.3).

The paper observes that short single-partition transactions can spend a
large share of their total time inside Houdini (46.5% for AuctionMark's
``NewComment``) and notes that "Houdini can completely avoid this if it
caches the estimations for any non-abortable, always single-partition
transactions."  This module implements that cache.

A cached entry is keyed by the stored-procedure name and the partition
footprint that the parameter mappings resolve from the request's input
parameters.  Two requests of the same procedure whose parameters map to the
same single partition traverse exactly the same states in the Markov model,
so the expensive path walk can be reused; the cache only ever admits
estimates that are safe to reuse (single-partition, terminal, effectively
non-abortable), and it is flushed whenever model maintenance recomputes the
probabilities.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..types import PartitionId, ProcedureRequest
from .config import HoudiniConfig
from .estimate import PathEstimate
from .optimizations import OptimizationDecision

#: Cache key: (procedure name, resolved partition footprint).
CacheKey = tuple[str, frozenset[PartitionId]]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class CachedEstimate:
    """One reusable estimate plus the optimization decision derived from it."""

    estimate: PathEstimate
    decision: OptimizationDecision
    uses: int = 0


class EstimateCache:
    """LRU cache of path estimates for cache-eligible procedures."""

    def __init__(self, config: HoudiniConfig | None = None, *, max_entries: int | None = None) -> None:
        self.config = config or HoudiniConfig()
        self.max_entries = max_entries or self.config.estimate_cache_max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, CachedEstimate] = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(
        request: ProcedureRequest, footprint: frozenset[PartitionId] | None
    ) -> CacheKey | None:
        """Cache key for a request, or ``None`` when it cannot be cached.

        Only requests whose parameter mappings resolve to exactly one
        partition are cacheable: the footprint then fully determines which
        Markov-model states the transaction can reach, so the cached walk is
        guaranteed to match.
        """
        if footprint is None or len(footprint) != 1:
            return None
        return (request.procedure, frozenset(footprint))

    # ------------------------------------------------------------------
    def lookup(self, key: CacheKey | None) -> CachedEstimate | None:
        """Return the cached entry for ``key`` (LRU-refreshing it), if any."""
        if key is None:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.uses += 1
        self.stats.hits += 1
        return entry

    def store(
        self,
        key: CacheKey | None,
        estimate: PathEstimate,
        decision: OptimizationDecision,
    ) -> bool:
        """Admit an estimate if it is safe to reuse; returns True if stored."""
        if key is None or not self._eligible(estimate, decision):
            self.stats.rejected += 1
            return False
        self._entries[key] = CachedEstimate(estimate=estimate, decision=decision)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        self.stats.stores += 1
        return True

    def _eligible(self, estimate: PathEstimate, decision: OptimizationDecision) -> bool:
        """Only non-abortable, always-single-partition estimates are reusable."""
        if estimate.degenerate or not estimate.reached_terminal:
            return False
        if estimate.predicted_abort:
            return False
        if not decision.predicted_single_partition:
            return False
        if estimate.abort_probability > self.config.abort_tolerance:
            return False
        return True

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every entry (called when models are recomputed)."""
        if self._entries:
            self.stats.invalidations += 1
        self._entries.clear()

    def invalidate_procedure(self, procedure: str) -> int:
        """Drop entries for one procedure; returns how many were removed."""
        doomed = [key for key in self._entries if key[0] == procedure]
        for key in doomed:
            del self._entries[key]
        if doomed:
            self.stats.invalidations += 1
        return len(doomed)

    def describe(self) -> str:
        return (
            f"EstimateCache(entries={len(self)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses}, hit_rate={self.stats.hit_rate:.2%})"
        )
