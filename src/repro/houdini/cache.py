"""Estimate caching for always-single-partition procedures (paper §6.3).

The paper observes that short single-partition transactions can spend a
large share of their total time inside Houdini (46.5% for AuctionMark's
``NewComment``) and notes that "Houdini can completely avoid this if it
caches the estimations for any non-abortable, always single-partition
transactions."  This module implements that cache — and since
:attr:`~repro.houdini.config.HoudiniConfig.enable_estimate_caching`
defaults to ``True``, it is the framework's **default operating mode**, not
an opt-in ablation.

A cached entry is keyed by the stored-procedure name and the partition
footprint that the parameter mappings resolve from the request's input
parameters.  Two requests of the same procedure whose parameters map to the
same single partition traverse exactly the same states in the Markov model,
so the expensive path walk can be reused; the cache only ever admits
estimates that are safe to reuse (single-partition, terminal, effectively
non-abortable — and, while the model is still learning, not
:attr:`support-limited
<repro.houdini.optimizations.OptimizationDecision.support_limited>`, since a
decision that could flip as observation counts grow must not be reused).

Invalidation contract
---------------------

Default-on caching must never change what Houdini decides, so entries are
invalidated on *every* event that could change a freshly-planned decision:

* each entry records the identity and :attr:`~repro.markov.model.MarkovModel.version`
  of the model it was derived from; a lookup whose model token no longer
  matches evicts the entry and counts as a miss (this covers run-time
  learning adding placeholder vertices or edges, probability recomputation,
  and partitioned providers routing the same (procedure, footprint) to a
  different cluster model);
* when model maintenance (§4.5) recomputes one procedure's probabilities,
  the facade calls :meth:`EstimateCache.invalidate_procedure` for exactly
  that procedure — a per-procedure eviction, not a global flush;
* each entry also records the request's full partition-binding signature:
  a single-partition footprint does not pin the walk for branchy models
  (TPC-C ``payment`` by name vs. by id share a footprint but execute
  different statements), so a lookup with a different signature misses and
  re-plans instead of replaying the wrong path.

``stats.invalidations`` counts *entries evicted* on every invalidation path
(full flush, per-procedure, stale-token) so the counter means one thing.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..types import PartitionId, ProcedureRequest
from .config import HoudiniConfig
from .estimate import PathEstimate
from .optimizations import OptimizationDecision

#: Cache key: (procedure name, resolved partition footprint).
CacheKey = tuple[str, frozenset[PartitionId]]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected: int = 0
    #: Entries evicted by any invalidation path (flush, per-procedure,
    #: stale model token).
    invalidations: int = 0
    #: Requests that could not even be keyed (multi-partition or unknown
    #: footprints).  Counted as lookups so the hit rate reflects how much of
    #: the *workload* the cache absorbs, not just the cacheable slice.
    uncacheable: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.uncacheable

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


@dataclass
class CachedEstimate:
    """One reusable estimate plus the optimization decision derived from it."""

    estimate: PathEstimate
    decision: OptimizationDecision
    uses: int = 0
    #: ``(id(model), model.version)`` of the model the walk was derived
    #: from, or ``None`` when no model token was supplied at store time.
    model_token: tuple[int, int] | None = None
    #: The request's full partition-binding signature
    #: (:meth:`~repro.houdini.compiled.CompiledProcedure.binding_signature`).
    #: The footprint alone does not pin the walk for branchy models — e.g.
    #: TPC-C ``payment`` by customer name and by customer id share a
    #: footprint but execute different statements — so a lookup whose
    #: signature differs must re-plan.
    signature: tuple | None = None


class EstimateCache:
    """LRU cache of path estimates for cache-eligible procedures."""

    def __init__(self, config: HoudiniConfig | None = None, *, max_entries: int | None = None) -> None:
        self.config = config or HoudiniConfig()
        self.max_entries = max_entries or self.config.estimate_cache_max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[CacheKey, CachedEstimate] = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(
        request: ProcedureRequest, footprint: frozenset[PartitionId] | None
    ) -> CacheKey | None:
        """Cache key for a request, or ``None`` when it cannot be cached.

        Only requests whose parameter mappings resolve to exactly one
        partition are cacheable: the footprint then fully determines which
        Markov-model states the transaction can reach, so the cached walk is
        guaranteed to match.
        """
        if footprint is None or len(footprint) != 1:
            return None
        return (request.procedure, frozenset(footprint))

    # ------------------------------------------------------------------
    def lookup(
        self,
        key: CacheKey | None,
        token: tuple[int, int] | None = None,
        signature: tuple | None = None,
    ) -> CachedEstimate | None:
        """Return the cached entry for ``key`` (LRU-refreshing it), if any.

        ``token`` is the caller's current model token; an entry stored under
        a different token is stale (the model changed, or a different
        cluster model now serves the procedure) and is evicted on the spot.
        ``signature`` is the request's partition-binding signature; an entry
        stored for a different signature stays (it is still valid for its
        own signature class) but cannot serve this request — the lookup is
        a miss and the fresh walk overwrites it.
        """
        if key is None:
            self.stats.uncacheable += 1
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.model_token != token:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        if entry.signature != signature:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.uses += 1
        self.stats.hits += 1
        return entry

    def peek(
        self,
        key: CacheKey | None,
        token: tuple[int, int] | None = None,
        signature: tuple | None = None,
    ) -> CachedEstimate | None:
        """Side-effect-free :meth:`lookup`: no stats, no LRU refresh, no
        eviction.

        The sharded backend uses this to *speculate* whether a request would
        be served from the cache without perturbing any counter the real
        (authoritative) ``lookup`` at fold time will advance — the peek must
        leave the cache byte-identical to a run that never peeked.
        """
        if key is None:
            return None
        entry = self._entries.get(key)
        if (
            entry is None
            or entry.model_token != token
            or entry.signature != signature
        ):
            return None
        return entry

    def store(
        self,
        key: CacheKey | None,
        estimate: PathEstimate,
        decision: OptimizationDecision,
        token: tuple[int, int] | None = None,
        signature: tuple | None = None,
        *,
        support_may_grow: bool = False,
    ) -> bool:
        """Admit an estimate if it is safe to reuse; returns True if stored.

        ``support_may_grow`` says the model is still learning (observation
        counts keep rising without the model version moving); a
        support-limited decision is then rejected because more observations
        alone could flip it.  With learning off the counts are frozen, so
        such decisions are stable and reusable.
        """
        if key is None or not self._eligible(estimate, decision):
            self.stats.rejected += 1
            return False
        if support_may_grow and decision.support_limited:
            self.stats.rejected += 1
            return False
        self._entries[key] = CachedEstimate(
            estimate=estimate, decision=decision, model_token=token,
            signature=signature,
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        self.stats.stores += 1
        return True

    def _eligible(self, estimate: PathEstimate, decision: OptimizationDecision) -> bool:
        """Only non-abortable, always-single-partition estimates are reusable."""
        if estimate.degenerate or not estimate.reached_terminal:
            return False
        if estimate.predicted_abort:
            return False
        if not decision.predicted_single_partition:
            return False
        if estimate.abort_probability > self.config.abort_tolerance:
            return False
        return True

    # ------------------------------------------------------------------
    def invalidate(self) -> int:
        """Drop every entry (e.g. when every model is recomputed).

        Returns the number of entries evicted; ``stats.invalidations``
        advances by the same amount.
        """
        evicted = len(self._entries)
        self.stats.invalidations += evicted
        self._entries.clear()
        return evicted

    def invalidate_procedure(self, procedure: str) -> int:
        """Drop entries for one procedure; returns how many were removed."""
        doomed = [key for key in self._entries if key[0] == procedure]
        for key in doomed:
            del self._entries[key]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def describe(self) -> str:
        return (
            f"EstimateCache(entries={len(self)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses}, uncacheable={self.stats.uncacheable}, "
            f"hit_rate={self.stats.hit_rate:.2%})"
        )
