"""Query prefetching and batching analysis (paper §8, future work).

The paper suggests two further uses of the relationship between procedure
parameters and query parameters:

* queries whose parameters are fully determined by the procedure's inputs
  could be **pre-fetched** — dispatched as soon as the request arrives (or as
  soon as the transaction enters a "trigger" state) instead of waiting for
  the control code to reach them;
* runs of such queries that target the same partitions are **batchable** —
  the DBMS could rewrite them into a single round trip.

This module performs that analysis off-line from a procedure's Markov model
and parameter mapping and reports the opportunities it finds.  It is
advisory: the execution engine does not act on it, but the analysis shows
how much of each workload the technique could cover, which is the question
the future-work section raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..catalog.procedure import StoredProcedure
from ..catalog.schema import Catalog
from ..mapping.parameter_mapping import ParameterMapping, ParameterMappingSet
from ..markov.model import MarkovModel
from ..markov.vertex import VertexKey, VertexKind


@dataclass(frozen=True)
class PrefetchCandidate:
    """One query invocation whose parameters are known before it executes."""

    statement: str
    counter: int
    #: The state after which the query's parameters are fully known.  The
    #: begin state means the query could be dispatched with the request
    #: itself; a later state is a "trigger" state in the paper's sense.
    trigger: VertexKey
    #: Probability (along the model) that the transaction actually executes
    #: this query once it has passed the trigger state.
    probability: float


@dataclass(frozen=True)
class BatchGroup:
    """A run of consecutive prefetchable queries that share a partition set."""

    statements: tuple[tuple[str, int], ...]
    partitions: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.statements)


@dataclass
class PrefetchPlan:
    """Everything the advisor found for one stored procedure."""

    procedure: str
    candidates: list[PrefetchCandidate] = field(default_factory=list)
    batch_groups: list[BatchGroup] = field(default_factory=list)
    #: Query invocations on the dominant path that are *not* prefetchable.
    unresolved: list[tuple[str, int]] = field(default_factory=list)

    @property
    def prefetchable_at_begin(self) -> list[PrefetchCandidate]:
        """Candidates dispatchable together with the request itself."""
        return [c for c in self.candidates if c.trigger.kind is VertexKind.BEGIN]

    @property
    def coverage(self) -> float:
        """Fraction of dominant-path queries that are prefetchable."""
        total = len(self.candidates) + len(self.unresolved)
        if total == 0:
            return 0.0
        return len(self.candidates) / total

    def describe(self) -> str:
        lines = [
            f"Prefetch plan for {self.procedure!r}: "
            f"{len(self.candidates)} prefetchable, {len(self.unresolved)} unresolved "
            f"({self.coverage:.0%} coverage)"
        ]
        for candidate in self.candidates:
            where = "with the request" if candidate.trigger.kind is VertexKind.BEGIN else (
                f"after {candidate.trigger.name}#{candidate.trigger.counter}"
            )
            lines.append(
                f"  prefetch {candidate.statement}#{candidate.counter} {where} "
                f"(p={candidate.probability:.2f})"
            )
        for group in self.batch_groups:
            names = ", ".join(f"{name}#{counter}" for name, counter in group.statements)
            lines.append(f"  batch [{names}] on partitions {list(group.partitions)}")
        return "\n".join(lines)


class PrefetchAdvisor:
    """Finds prefetchable and batchable queries for stored procedures."""

    def __init__(self, catalog: Catalog, mappings: ParameterMappingSet) -> None:
        self.catalog = catalog
        self.mappings = mappings

    # ------------------------------------------------------------------
    def analyze(self, model: MarkovModel) -> PrefetchPlan:
        """Analyze one procedure's model along its most likely path."""
        procedure = self.catalog.procedure(model.procedure)
        mapping = self.mappings.get(model.procedure)
        plan = PrefetchPlan(procedure=model.procedure)
        path = self._dominant_path(model)
        cumulative = 1.0
        last_resolved_trigger: VertexKey = model.begin
        for key, probability in path:
            cumulative *= probability
            if key.kind is not VertexKind.QUERY:
                continue
            if self._fully_determined(procedure, mapping, key.name):
                plan.candidates.append(
                    PrefetchCandidate(
                        statement=key.name,
                        counter=key.counter,
                        trigger=last_resolved_trigger,
                        probability=cumulative,
                    )
                )
            else:
                plan.unresolved.append((key.name, key.counter))
                # Later prefetchable queries can only be dispatched once the
                # transaction has passed this (data-dependent) state.
                last_resolved_trigger = key
        plan.batch_groups = self._batch_groups(plan, path)
        return plan

    def analyze_all(self, models: dict[str, MarkovModel]) -> dict[str, PrefetchPlan]:
        """Analyze every procedure's model."""
        return {name: self.analyze(model) for name, model in sorted(models.items())}

    # ------------------------------------------------------------------
    def _dominant_path(self, model: MarkovModel) -> list[tuple[VertexKey, float]]:
        """Most likely begin→terminal path (greedy, cycle-safe)."""
        path: list[tuple[VertexKey, float]] = []
        current = model.begin
        seen = {current}
        for _ in range(1000):
            successors = model.successors(current)
            successors = [(key, p) for key, p in successors if key not in seen]
            if not successors:
                break
            key, probability = successors[0]
            path.append((key, probability))
            if key.kind in (VertexKind.COMMIT, VertexKind.ABORT):
                break
            seen.add(key)
            current = key
        return path

    def _fully_determined(
        self,
        procedure: StoredProcedure,
        mapping: ParameterMapping | None,
        statement_name: str,
    ) -> bool:
        """Whether every parameter of a statement maps to a procedure input."""
        if mapping is None:
            return False
        statement = procedure.statement(statement_name)
        count = statement.parameter_count()
        if count == 0:
            return True
        return all(mapping.is_mapped(statement_name, index) for index in range(count))

    @staticmethod
    def _batch_groups(
        plan: PrefetchPlan, path: list[tuple[VertexKey, float]]
    ) -> list[BatchGroup]:
        """Group consecutive prefetchable path queries by partition set."""
        prefetchable = {(c.statement, c.counter) for c in plan.candidates}
        groups: list[BatchGroup] = []
        run: list[tuple[str, int]] = []
        run_partitions: tuple[int, ...] | None = None
        for key, _ in path:
            if key.kind is not VertexKind.QUERY:
                continue
            identity = (key.name, key.counter)
            partitions = tuple(key.partitions)
            if identity in prefetchable and (
                run_partitions is None or partitions == run_partitions
            ):
                run.append(identity)
                run_partitions = partitions
                continue
            if len(run) > 1 and run_partitions is not None:
                groups.append(BatchGroup(statements=tuple(run), partitions=run_partitions))
            if identity in prefetchable:
                run = [identity]
                run_partitions = partitions
            else:
                run = []
                run_partitions = None
        if len(run) > 1 and run_partitions is not None:
            groups.append(BatchGroup(statements=tuple(run), partitions=run_partitions))
        return groups
