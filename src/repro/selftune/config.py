"""Configuration for the self-tuning subsystem.

The defaults close the loop on the time scale the paper's maintenance story
operates at: drift checks every ~50 transactions per procedure, a divergence
window of a few hundred transitions, and a retrain latency of a few simulated
milliseconds (the paper quotes <= 5 ms for an on-line recomputation; a full
rebuild from the tail is modelled slightly slower).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class SelfTuneConfig:
    """Tunables of the observe -> detect -> retrain -> swap loop."""

    #: Run a drift check every N observed transactions of a procedure.
    check_interval_txns: int = 50
    #: Sliding window of recent (source, target) transitions the detector
    #: scores divergence over, per procedure.
    window_transitions: int = 400
    #: Drift verdict when the worst per-vertex divergence (1 - distribution
    #: overlap with the model's expectations) exceeds this.
    divergence_threshold: float = 0.25
    #: A vertex's observed transitions must reach this count inside the
    #: window before its divergence is trusted.
    min_observations: int = 20
    #: Also declare drift when maintenance's last measured prediction
    #: accuracy for the procedure sits below the Houdini maintenance
    #: threshold (the paper's 75%).
    use_accuracy_signal: bool = True
    #: How many recent transactions (complete transition paths) are recorded
    #: per procedure as the retraining corpus.
    retrain_tail_txns: int = 512
    #: A retrain must have at least this many recorded transactions to work
    #: with; drift verdicts before that only count, they do not retrain.
    retrain_min_tail_txns: int = 64
    #: Simulated milliseconds a background retrain takes before the rebuilt
    #: model is ready to swap in.
    retrain_latency_ms: float = 10.0
    #: After a swap, no new retrain starts for this many observed
    #: transactions of the procedure (lets the fresh model settle).
    cooldown_txns: int = 200

    def __post_init__(self) -> None:
        for name in (
            "check_interval_txns",
            "window_transitions",
            "min_observations",
            "retrain_tail_txns",
            "retrain_min_tail_txns",
        ):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive int, got {value!r}")
        if isinstance(self.cooldown_txns, bool) or not isinstance(self.cooldown_txns, int) or self.cooldown_txns < 0:
            raise ValueError(f"cooldown_txns must be a non-negative int, got {self.cooldown_txns!r}")
        if not 0.0 < self.divergence_threshold <= 1.0:
            raise ValueError("divergence_threshold must be within (0, 1]")
        if self.retrain_latency_ms < 0.0:
            raise ValueError("retrain_latency_ms must be non-negative")
        if self.retrain_min_tail_txns > self.retrain_tail_txns:
            raise ValueError("retrain_min_tail_txns cannot exceed retrain_tail_txns")
        if not isinstance(self.use_accuracy_signal, bool):
            raise ValueError("use_accuracy_signal must be a bool")

    def to_dict(self) -> dict:
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "SelfTuneConfig":
        return cls(**dict(data))
