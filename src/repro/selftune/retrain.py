"""Background retraining from the recorded tail.

A retrain job freezes a copy of the procedure's recent transition paths (the
run-time monitor records complete begin -> ... -> commit/abort chains) and
rebuilds a fresh :class:`~repro.markov.model.MarkovModel` from them — the
same construction path off-line training uses, so the §4.1 invariants
(terminal vertices, placeholder typing, probability tables) all hold.

"Background" is modelled in **simulated time**: the job becomes ready
``retrain_latency_ms`` after it started on the simulator's transaction
clock, and the actual rebuild happens at the completion boundary between two
transactions.  That keeps runs byte-deterministic — the wall clock never
decides when a retrained model lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..markov.model import MarkovModel
from .config import SelfTuneConfig


@dataclass(frozen=True)
class RetrainJob:
    """One in-flight background retrain for a procedure."""

    procedure: str
    started_at_ms: float
    ready_at_ms: float
    #: Frozen copy of the recorded tail: a tuple of transition paths, each a
    #: tuple of (source, target) VertexKey pairs spanning begin to terminal.
    paths: tuple


def retrain_model(
    old_model: MarkovModel,
    paths,
    *,
    precompute_tables: bool = True,
) -> MarkovModel:
    """Rebuild a procedure's model from recorded transition paths.

    Vertex query types are backfilled from ``old_model``: the run-time
    monitor created every vertex it visited there (with the invocation's
    query type), so the old model is a complete type oracle for the tail.
    Begin hits and ``transactions_observed`` are counted per path — the OP3
    selector's support accounting (``sampling_risk``) reads both.
    """
    model = MarkovModel(old_model.procedure, old_model.num_partitions)
    for path in paths:
        for pair in path:
            for key in pair:
                if model.find_vertex(key) is None:
                    previous = old_model.find_vertex(key)
                    model.add_placeholder(
                        key,
                        previous.query_type if previous is not None else None,
                    )
    begin = model.begin
    for path in paths:
        if not path:
            continue
        model.vertex(begin).hits += 1
        model.record_transitions(path)
        model.transactions_observed += 1
    model.process(precompute_tables=precompute_tables)
    return model


class Retrainer:
    """Schedules and builds background retrains, driven by simulated time."""

    def __init__(self, config: SelfTuneConfig | None = None) -> None:
        self.config = config or SelfTuneConfig()

    def start(self, procedure: str, paths, now_ms: float) -> RetrainJob:
        """Freeze the tail and schedule the rebuild's completion time."""
        return RetrainJob(
            procedure=procedure,
            started_at_ms=now_ms,
            ready_at_ms=now_ms + self.config.retrain_latency_ms,
            paths=tuple(paths),
        )

    def ready(self, job: RetrainJob, now_ms: float) -> bool:
        return now_ms >= job.ready_at_ms

    def build(
        self,
        job: RetrainJob,
        old_model: MarkovModel,
        *,
        precompute_tables: bool = True,
    ) -> MarkovModel:
        return retrain_model(
            old_model, job.paths, precompute_tables=precompute_tables
        )
