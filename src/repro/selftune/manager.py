"""The self-tuning manager: observe -> detect -> retrain -> swap.

``SelfTuneManager`` is the piece that closes the loop inside a live session.
Houdini feeds it every attempt's transition path (from ``after_attempt``,
after maintenance has seen the same path); the manager

1. records the path into the procedure's bounded retraining tail and the
   drift detector's window,
2. completes any due retrain job — rebuilding the model from the frozen
   tail and swapping it in through the invalidation contracts — and
3. every ``check_interval_txns`` observations runs a drift check, starting
   a background retrain when the verdict says the model no longer matches
   the traffic.

All decisions are driven by observation counts and the simulator's
transaction clock, never the wall clock, so an enabled self-tuner preserves
byte-determinism: the same seed and workload schedule produce the same
drift verdicts, the same swap points, and the same bytes — inline or
sharded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..markov.model import MarkovModel
from .config import SelfTuneConfig
from .detector import DriftDetector
from .retrain import Retrainer, RetrainJob
from .swap import ModelSwapController


@dataclass
class SelfTuneStats:
    """Loop-level counters, surfaced through ``snapshot_metrics()``."""

    drifts_detected: int = 0
    retrains_started: int = 0
    retrains_completed: int = 0
    swaps: int = 0


class _ProcedureState:
    """Per-procedure bookkeeping of the manager."""

    __slots__ = ("observations", "tail", "job", "last_swap_obs", "swaps",
                 "last_swap_at_ms", "verdict")

    def __init__(self, tail_limit: int) -> None:
        self.observations = 0
        #: Recent complete transition paths (the retraining corpus).
        self.tail: deque = deque(maxlen=tail_limit)
        self.job: RetrainJob | None = None
        self.last_swap_obs = 0
        self.swaps = 0
        self.last_swap_at_ms: float | None = None
        self.verdict: dict | None = None


class SelfTuneManager:
    """Drives drift detection, background retraining and hot swaps."""

    def __init__(self, houdini, config: SelfTuneConfig | None = None,
                 clock=None) -> None:
        from ..houdini.providers import GlobalModelProvider

        if not isinstance(houdini.provider, GlobalModelProvider):
            raise ValueError(
                "self-tuning requires the global model provider "
                f"(got {type(houdini.provider).__name__})"
            )
        self.houdini = houdini
        self.config = config or SelfTuneConfig()
        #: Simulated-time source (ms); the session wires the simulator's
        #: transaction clock in.  Defaults to a frozen clock so unit tests
        #: can drive the manager without a simulator.
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.detector = DriftDetector(self.config)
        self.retrainer = Retrainer(self.config)
        self.swapper = ModelSwapController(houdini)
        self.stats = SelfTuneStats()
        self._states: dict[str, _ProcedureState] = {}

    # ------------------------------------------------------------------
    def _state(self, procedure: str) -> _ProcedureState:
        state = self._states.get(procedure)
        if state is None:
            state = self._states[procedure] = _ProcedureState(
                self.config.retrain_tail_txns
            )
        return state

    def observe(self, procedure: str, model: MarkovModel, transitions) -> None:
        """Feed one attempt's transition path; run the loop's due actions.

        Called by Houdini between transactions (``after_attempt``), which is
        what makes any swap performed here atomic: no plan is in flight
        while the provider's table changes.
        """
        now = self._clock()
        state = self._state(procedure)
        path = tuple(transitions)
        state.tail.append(path)
        self.detector.observe(procedure, path)
        state.observations += 1

        swapped = self._complete_due_retrain(procedure, state, now)
        if swapped:
            return
        if state.observations % self.config.check_interval_txns == 0:
            self._run_check(procedure, state, now)

    # ------------------------------------------------------------------
    def _complete_due_retrain(
        self, procedure: str, state: _ProcedureState, now: float
    ) -> bool:
        """Finish the procedure's retrain job if its simulated latency has
        elapsed; returns True when a swap happened."""
        job = state.job
        if job is None or not self.retrainer.ready(job, now):
            return False
        state.job = None
        old_model = self.houdini.provider.model_for_procedure(procedure)
        if old_model is None:
            return False
        new_model = self.retrainer.build(
            job, old_model,
            precompute_tables=self.houdini.config.precompute_tables,
        )
        self.stats.retrains_completed += 1
        self.swapper.swap(procedure, new_model)
        self.stats.swaps += 1
        state.swaps += 1
        state.last_swap_obs = state.observations
        state.last_swap_at_ms = now
        # The window measured the retired model's traffic; start clean so
        # the fresh model is judged only on what it actually serves.
        self.detector.reset(procedure)
        return True

    def _run_check(self, procedure: str, state: _ProcedureState, now: float) -> None:
        model = self.houdini.provider.model_for_procedure(procedure)
        if model is None or not model.processed:
            return
        maintenance = self.houdini.maintenance.for_model(model)
        verdict = self.detector.check(
            procedure,
            model,
            accuracy=maintenance.stats.last_accuracy,
            accuracy_threshold=self.houdini.config.maintenance_accuracy_threshold,
        )
        state.verdict = verdict
        if not verdict["drifted"]:
            return
        self.stats.drifts_detected += 1
        if state.job is not None:
            return
        if state.observations - state.last_swap_obs < self.config.cooldown_txns and state.swaps:
            return
        if len(state.tail) < self.config.retrain_min_tail_txns:
            return
        state.job = self.retrainer.start(procedure, tuple(state.tail), now)
        self.stats.retrains_started += 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly state of the loop (for ``snapshot_metrics()``)."""
        procedures = {}
        for procedure in sorted(self._states):
            state = self._states[procedure]
            procedures[procedure] = {
                "observations": state.observations,
                "tail": len(state.tail),
                "retrain_pending": state.job is not None,
                "swaps": state.swaps,
                "last_swap_at_ms": state.last_swap_at_ms,
                "last_verdict": dict(state.verdict) if state.verdict else None,
            }
        return {
            "drifts_detected": self.stats.drifts_detected,
            "retrains_started": self.stats.retrains_started,
            "retrains_completed": self.stats.retrains_completed,
            "swaps": self.stats.swaps,
            "procedures": procedures,
        }
