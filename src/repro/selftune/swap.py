"""Atomic hot model swap.

Installing a retrained model into a running session must route through the
existing invalidation contracts, and must touch **only** the swapped
procedure's state:

* the provider's model table is updated through
  :meth:`~repro.houdini.providers.GlobalModelProvider.install_model` (a
  single dict store — every later ``plan()`` sees either the old model or
  the new one, never a mix);
* the estimator's compiled-walk tables for the procedure are dropped
  (:meth:`~repro.houdini.estimator.PathEstimator.drop_walk_records`);
* the §6.3 estimate cache's entries for the procedure are invalidated
  (:meth:`~repro.houdini.cache.EstimateCache.invalidate_procedure`);
* maintenance stops tracking the retired model
  (:meth:`~repro.houdini.maintenance.MaintenanceRegistry.forget`);
* the retired model's ``version`` is bumped while we still hold it, so any
  ``(id(model), version)`` token captured against it can never validate
  again even if its ``id`` is recycled.

Nothing else is rekeyed: other procedures' cached walks and estimates stay
exactly where they are (the swap-isolation tests pin this down).

Sessions execute transactions one at a time on the coordinator — the sharded
backend speculates, but its authoritative folds replay in submission order —
so a swap performed between two transactions (inside ``after_attempt``) is
atomic by construction.
"""

from __future__ import annotations

from ..markov.model import MarkovModel


class ModelSwapController:
    """Installs retrained models through the invalidation contracts."""

    def __init__(self, houdini) -> None:
        self.houdini = houdini
        self.swaps_performed = 0

    def swap(self, procedure: str, new_model: MarkovModel) -> MarkovModel | None:
        """Swap ``procedure``'s live model for ``new_model``; return the old.

        Evicts the swapped procedure's derived state only — see the module
        docstring for the exact contract.
        """
        houdini = self.houdini
        old_model = houdini.provider.install_model(procedure, new_model)
        houdini.estimator.drop_walk_records(procedure)
        if houdini.estimate_cache is not None:
            houdini.estimate_cache.invalidate_procedure(procedure)
        if old_model is not None:
            houdini.maintenance.forget(old_model)
            old_model.version += 1
        self.swaps_performed += 1
        return old_model
