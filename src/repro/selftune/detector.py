"""Online drift detection over the live transaction stream.

The detector consumes the run-time monitor's transition buffers (the same
``(source, target)`` pairs §4.5 maintenance counts) and keeps, per procedure,
a sliding window of the most recent transitions.  Drift is scored as the
worst per-vertex **divergence** between the windowed observed distribution
and the model's expectations::

    divergence(v) = 1 - sum(min(p_observed(v, t), p_model(v, t)))

i.e. one minus the distribution overlap that maintenance already uses as its
accuracy measure — 0.0 when the window matches the model exactly, 1.0 when
the observed targets are ones the model considers impossible.  Only vertices
with enough observations inside the window participate, so a handful of
unusual transactions cannot trip the detector.

Everything here is a deterministic function of the observed transition
sequence: no wall clock, no randomness, and ``max`` over floats is
iteration-order independent — verdicts are byte-identical across runs and
execution backends.
"""

from __future__ import annotations

from collections import deque

from ..markov.model import MarkovModel
from .config import SelfTuneConfig


class DriftDetector:
    """Windowed divergence scoring between observed paths and the model."""

    def __init__(self, config: SelfTuneConfig | None = None) -> None:
        self.config = config or SelfTuneConfig()
        #: Per-procedure sliding windows of recent (source, target) pairs.
        self._windows: dict[str, deque] = {}

    # ------------------------------------------------------------------
    def observe(self, procedure: str, transitions) -> None:
        """Feed one transaction's (source, target) transition pairs."""
        window = self._windows.get(procedure)
        if window is None:
            window = self._windows[procedure] = deque(
                maxlen=self.config.window_transitions
            )
        window.extend(transitions)

    def window_size(self, procedure: str) -> int:
        window = self._windows.get(procedure)
        return len(window) if window is not None else 0

    def reset(self, procedure: str) -> None:
        """Clear the procedure's window (called after a model swap — the old
        window measured the retired model's traffic)."""
        self._windows.pop(procedure, None)

    # ------------------------------------------------------------------
    def score(self, procedure: str, model: MarkovModel) -> float:
        """Worst per-vertex divergence of the window against ``model``."""
        window = self._windows.get(procedure)
        if not window:
            return 0.0
        observed: dict = {}
        for source, target in window:
            counts = observed.get(source)
            if counts is None:
                counts = observed[source] = {}
            counts[target] = counts.get(target, 0) + 1
        worst = 0.0
        min_observations = self.config.min_observations
        for source, counts in observed.items():
            total = sum(counts.values())
            if total < min_observations:
                continue
            expected = model.edge_distribution(source)
            overlap = 0.0
            for target, count in counts.items():
                overlap += min(count / total, expected.get(target, 0.0))
            worst = max(worst, 1.0 - overlap)
        return worst

    def check(
        self,
        procedure: str,
        model: MarkovModel,
        *,
        accuracy: float = 1.0,
        accuracy_threshold: float = 0.0,
    ) -> dict:
        """Produce the per-procedure drift verdict.

        ``accuracy`` is maintenance's last measured prediction accuracy for
        the procedure's model; when :attr:`SelfTuneConfig.use_accuracy_signal`
        is set, an accuracy below ``accuracy_threshold`` declares drift even
        if the divergence window has not filled up yet.
        """
        divergence = self.score(procedure, model)
        diverged = divergence > self.config.divergence_threshold
        degraded = (
            self.config.use_accuracy_signal and accuracy < accuracy_threshold
        )
        return {
            "procedure": procedure,
            "divergence": divergence,
            "accuracy": accuracy,
            "window": self.window_size(procedure),
            "drifted": bool(diverged or degraded),
        }
