"""Self-tuning subsystem: the production answer to the paper's §4.5.

Maintenance (``repro.houdini.maintenance``) can recompute a drifting model's
probabilities from run-time counters, but nothing in the paper closes the
loop — drift is only acted on when an operator intervenes, and a retrained
model never reaches a running system.  This package closes it:

* :class:`DriftDetector` — online windowed divergence scoring between the
  observed transition paths and the live model's expectations;
* :class:`Retrainer` — background rebuild of the drifted procedure's Markov
  model from the recorded tail, timed in simulated milliseconds;
* :class:`ModelSwapController` — atomic hot swap of the rebuilt model into
  the running session through the existing invalidation contracts;
* :class:`SelfTuneManager` — the loop: observe -> detect -> retrain -> swap,
  fed by Houdini after every transaction attempt.

Enable it with ``ClusterSpec(selftune=SelfTuneConfig(...))`` (or a plain
field dict), toggle it live with ``session.reconfigure(selftune=...)``, and
read its verdicts from ``session.snapshot_metrics().selftune`` or the
``repro serve`` ``drift`` command.  An enabled self-tuner preserves
byte-determinism: same seed + same workload schedule -> same bytes.
"""

from .config import SelfTuneConfig
from .detector import DriftDetector
from .manager import SelfTuneManager, SelfTuneStats
from .retrain import Retrainer, RetrainJob, retrain_model
from .swap import ModelSwapController

__all__ = [
    "SelfTuneConfig",
    "DriftDetector",
    "Retrainer",
    "RetrainJob",
    "retrain_model",
    "ModelSwapController",
    "SelfTuneManager",
    "SelfTuneStats",
]
