"""Closed-loop cluster simulator: an incrementally steppable event core.

Reproduces the paper's throughput experiments without the Wisconsin cluster:
transactions are executed *functionally* against the real in-memory database
through the transaction coordinator (so mispredictions, restarts, aborts and
optimization updates all really happen), and their *timing* is replayed
through the cost model onto a set of single-threaded partition resources.

The runtime is a single binary event heap (see :mod:`repro.sim.events`)
processing client-ready, transaction-complete, partition-release and
external-submit events in timestamp order.  Unlike the original closed
``run()`` loop, the heap and every accumulator live on the simulator
instance, so the core can be driven incrementally:

* :meth:`ClusterSimulator.begin` initializes the event state (idempotent);
* :meth:`ClusterSimulator.inject` pushes a raw event,
  :meth:`ClusterSimulator.submit_request` injects an out-of-loop request;
* :meth:`ClusterSimulator.step` processes exactly one event;
* :meth:`ClusterSimulator.run_until` processes events until the heap drains
  or a simulated deadline is reached;
* :meth:`ClusterSimulator.extend_budget` grants the closed-loop clients
  more submissions, and :meth:`ClusterSimulator.snapshot` materializes the
  windowed metrics on demand (repeatedly, without disturbing the run).

:meth:`ClusterSimulator.run` remains as the one-shot batch entry point —
``begin(); extend_budget(total); run_until()`` — and produces results
byte-identical to the pre-steppable loop (held by
``tests/sim/test_event_runtime.py``).  :class:`repro.session.ClusterSession`
is the long-lived façade over this core.

The workload driver is closed-loop, matching the paper's setup of "four
client threads per partition to ensure that the workload queues at each node
are always full": each simulated client submits its next request the moment
its previous one completes, as long as submission budget remains.  A client
that becomes ready with no budget left is *parked* and revived (at the
current simulated time) when the budget is extended.  Every submission is
routed through a :class:`~repro.scheduling.scheduler.TransactionScheduler`,
so queue policies and admission control are exercised by throughput runs:

* under the default FCFS policy with no admission limits the scheduler is
  pass-through and the runtime reproduces the legacy greedy driver's results
  exactly (``tests/sim`` holds them equal metric-by-metric);
* a prediction-aware policy annotates each request with its Houdini path
  estimate (:meth:`~repro.txn.strategy.ExecutionStrategy.preview_estimate`),
  dispatches by predicted cost/partition profile, and *partition-gates*
  dispatch — a transaction whose predicted partitions are busy waits for a
  ``PARTITION_RELEASE`` event while ready work behind it runs;
* admission limits defer or reject transactions whose predicted resource
  usage would overload the node, with capacity released on completion.

A transaction starts once every partition in its lock set is free;
partitions are released at commit — or earlier when the early-prepare
optimization (OP4) declared the transaction finished with them, which is how
speculative execution shows up in the timing model.

Metric updates are batched: the loop appends to flat accumulator arrays and
a :class:`~repro.sim.metrics.SimulationResult` is materialized on demand.
Completions are recorded at ``TXN_COMPLETE`` events, i.e. already ordered by
end time, so the warm-up window needs one linear pass instead of a sort.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from heapq import heappop, heappush

from ..catalog.schema import Catalog
from ..errors import SimulationError
from ..scheduling.admission import AdmissionController, AdmissionDecision, AdmissionLimits
from ..scheduling.policies import SchedulingPolicy, policy_by_name
from ..scheduling.scheduler import TransactionScheduler
from ..storage.partition_store import Database
from ..tenancy import TenancyConfig, TenancyManager, TenantScheduler
from ..txn.coordinator import TransactionCoordinator
from ..txn.record import TransactionRecord
from ..txn.strategy import ExecutionStrategy
from ..types import ProcedureRequest
from ..workload.generator import WorkloadGenerator
from .cost_model import CostModel
from .events import CLIENT_READY, EXTERNAL_SUBMIT, PARTITION_RELEASE, TXN_COMPLETE
from .metrics import ProcedureBreakdown, SimulationResult, TenantBreakdown
from .sketch import CompletionWindow, LatencySketch

#: Accumulator slots per procedure (see ``_replay_timing``).
_TXNS, _EST, _PLAN, _EXEC, _COORD, _OTHER = range(6)

_INF = float("inf")


@dataclass
class SimulatorConfig:
    """Knobs for one simulator run."""

    #: Closed-loop clients per partition (the paper uses four).
    clients_per_partition: int = 4
    #: Total transactions to execute (split across clients) when driven by
    #: the one-shot :meth:`ClusterSimulator.run`; session-driven runs grant
    #: budget through :meth:`ClusterSimulator.extend_budget` instead.
    total_transactions: int = 2000
    #: Fraction of the earliest-completing transactions treated as warm-up
    #: and excluded from the throughput window (the paper warms up for 60s).
    warmup_fraction: float = 0.1
    #: Think time between a client's transactions (0 = saturated, as in the paper).
    client_think_time_ms: float = 0.0
    #: Queue policy for the node scheduler: a registry name, a policy
    #: instance, or ``None`` for first-come first-served.
    policy: SchedulingPolicy | str | None = None
    #: Admission-control limits; ``None`` disables admission control.
    admission_limits: AdmissionLimits | None = None
    #: Open-loop mode: no closed-loop clients are created at :meth:`begin`
    #: (work arrives only through ``EXTERNAL_SUBMIT`` injections — arrival
    #: processes, trace replay, tenant streams).  The closed loop can still
    #: be started later via :meth:`ClusterSimulator.activate_clients`.
    open_loop: bool = False
    #: ``"exact"`` stores every latency/completion (default, byte-identical
    #: to the pre-scale-mode behavior); ``"streaming"`` accumulates into
    #: O(1)-memory sketches (:mod:`repro.sim.sketch`) so unbounded runs
    #: never grow per-transaction state — the million-user scale mode.
    metrics_mode: str = "exact"
    #: ``"inline"`` executes every transaction in the event loop (default);
    #: ``"sharded"`` shards the partition stores across OS worker processes
    #: and dispatches predictable single-partition transactions to them
    #: (:mod:`repro.sim.backend`).  Simulated results are byte-identical
    #: either way; only wall-clock throughput differs.
    execution_backend: str = "inline"
    #: Worker-process count for the sharded backend (clamped to the
    #: partition count; ignored by the inline backend).
    num_workers: int = 2
    #: Multi-tenant policy (``repro.tenancy``): per-tenant weighted fair
    #: queuing, admission quotas, latency SLOs and predicted-work shedding.
    #: ``None`` keeps the single shared scheduler.
    tenancy: "TenancyConfig | None" = None


@dataclass(frozen=True)
class InFlightTransaction:
    """Snapshot of one unfinished transaction (``in_flight`` introspection).

    ``state`` is ``"executing"`` for transactions whose simulated end time
    lies beyond the paused clock (their functional execution already
    happened; the cluster is modeled as still working on them) and
    ``"queued"`` for transactions waiting in the node scheduler.  Executing
    entries carry the real transaction id, attempt count and held
    partitions; queued entries carry the predictions they were submitted
    with (no txn id exists yet).
    """

    state: str
    procedure: str
    tenant: str | None
    txn_id: int | None
    attempt: int
    partitions: tuple[int, ...]
    submitted_at_ms: float
    predicted_remaining_ms: float

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "procedure": self.procedure,
            "tenant": self.tenant,
            "txn_id": self.txn_id,
            "attempt": self.attempt,
            "partitions": list(self.partitions),
            "submitted_at_ms": self.submitted_at_ms,
            "predicted_remaining_ms": self.predicted_remaining_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InFlightTransaction":
        return cls(
            state=data["state"],
            procedure=data["procedure"],
            tenant=data.get("tenant"),
            txn_id=data.get("txn_id"),
            attempt=int(data["attempt"]),
            partitions=tuple(data["partitions"]),
            submitted_at_ms=float(data["submitted_at_ms"]),
            predicted_remaining_ms=float(data["predicted_remaining_ms"]),
        )


class ClusterSimulator:
    """Steppable event core for one (benchmark, strategy, cluster) configuration."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        generator: WorkloadGenerator,
        strategy: ExecutionStrategy,
        *,
        cost_model: CostModel | None = None,
        config: SimulatorConfig | None = None,
        benchmark_name: str = "",
    ) -> None:
        self.catalog = catalog
        self.database = database
        self.generator = generator
        self.strategy = strategy
        self.cost_model = cost_model or CostModel()
        self.config = config or SimulatorConfig()
        self.benchmark_name = benchmark_name or generator.benchmark
        self.coordinator = TransactionCoordinator(catalog, database, strategy)
        #: Populated by :meth:`begin` (scheduler + admission introspection).
        self.scheduler: TransactionScheduler | None = None
        self.admission: AdmissionController | None = None
        #: Execution backend (created at the first :meth:`begin` of a
        #: sharded run; survives :meth:`reset` so worker processes persist
        #: across episodes exactly like the database does).
        self._backend = None
        self._execute = self.coordinator.execute_transaction
        self._began = False
        #: Optional self-tuning manager (``repro.selftune``); installed by the
        #: session so :meth:`_build_result` can report its counters.
        self.selftune = None
        #: Tenancy runtime (``repro.tenancy.TenancyManager``); created by
        #: :meth:`begin` when ``config.tenancy`` is set, or live-attached
        #: through :meth:`set_tenancy`.
        self.tenancy: TenancyManager | None = None

    def set_selftune(self, manager) -> None:
        """Attach (or with ``None`` detach) the self-tuning manager."""
        self.selftune = manager

    # ------------------------------------------------------------------
    def _make_policy(self) -> SchedulingPolicy | None:
        policy = self.config.policy
        if policy is None or isinstance(policy, SchedulingPolicy):
            return policy
        return policy_by_name(policy)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Initialize the incremental event state (idempotent)."""
        if self._began:
            return
        config = self.config
        if config.metrics_mode not in ("exact", "streaming"):
            raise SimulationError(
                f"metrics_mode must be 'exact' or 'streaming', "
                f"got {config.metrics_mode!r}"
            )
        if config.execution_backend not in ("inline", "sharded"):
            raise SimulationError(
                f"execution_backend must be 'inline' or 'sharded', "
                f"got {config.execution_backend!r}"
            )
        streaming = config.metrics_mode == "streaming"
        self._streaming = streaming
        self._num_partitions = self.catalog.num_partitions
        self._num_nodes = self.catalog.scheme.num_nodes
        self._num_clients = max(1, config.clients_per_partition * self._num_partitions)
        if config.tenancy is not None:
            self.scheduler = TenantScheduler(
                config.tenancy,
                self._make_policy(),
                cost_model=self.cost_model,
                streaming_waits=streaming,
            )
            self.tenancy = TenancyManager(config.tenancy)
        else:
            self.scheduler = TransactionScheduler(
                self._make_policy(),
                cost_model=self.cost_model,
                streaming_waits=streaming,
            )
            self.tenancy = None
        limits = config.admission_limits
        self.admission = AdmissionController(limits) if limits is not None else None

        self._partition_free = [0.0] * self._num_partitions
        # Batched accumulators, folded into a SimulationResult on demand.
        # Streaming mode swaps the unbounded lists for O(1)-memory sketches
        # that answer to the same ``append`` call sites.
        self._latencies: list[float] | LatencySketch = (
            LatencySketch() if streaming else []
        )
        self._completions: list[tuple[float, bool]] | CompletionWindow = (
            CompletionWindow() if streaming else []
        )
        self._breakdown_acc: dict[str, list] = {}
        self._counters = {
            "committed": 0, "user_aborted": 0, "restarts": 0, "escalations": 0,
            "undo_disabled": 0, "early_prepared": 0, "single_partition": 0,
            "distributed": 0, "rejected": 0,
        }
        self._submitted = 0
        self._budget: float = 0
        self._complete_seq = 0
        self._external_seq = 0
        #: Per-tenant accumulators (populated only by tenant-labeled
        #: submissions; unlabeled traffic never touches them).
        self._tenant_acc: dict[str, dict] = {}
        #: Earliest scheduled partition-release wakeup (deduplication).
        self._next_wakeup = [_INF]
        # The initial event list — every client ready at t=0, client-id
        # tie-break — is already heap-ordered.  Open-loop cores start with
        # no clients; activate_clients() can add them later.
        self._clients_started = not config.open_loop
        self._events: list[tuple] = (
            [(0.0, CLIENT_READY, c, None) for c in range(self._num_clients)]
            if self._clients_started else []
        )
        #: Clients that became ready while the submission budget was
        #: exhausted: ``(ready_time, client_id)``, revived on extension.
        self._parked: list[tuple[float, int]] = []
        #: Outstanding heap entries the FCFS fast path cannot interpret
        #: (TXN_COMPLETE / PARTITION_RELEASE / EXTERNAL_SUBMIT).
        self._general_events = 0
        #: Queued transactions the partition gate cannot block (no in-range
        #: predicted partitions).  When this is zero and every partition is
        #: busy, a drain scan cannot dispatch anything — ``_drain`` skips
        #: the pop/requeue pass entirely and just arms a release wake-up.
        self._ungated_queued = 0
        self._now = 0.0
        #: Submission/pop time of the transaction currently executing: the
        #: deterministic clock self-tuning retrain jobs run against.  Unlike
        #: ``_now`` it is set at every execute site (including sharded folds,
        #: which replay at the entry's pop time), so it reads identically
        #: across backends.
        self._txn_clock = 0.0
        if config.execution_backend == "sharded":
            if self._backend is None:
                from .backend import ShardedBackend

                self._backend = ShardedBackend(self, config.num_workers)
            # Once workers exist, every out-of-pipeline execution must
            # broadcast its writes to them.
            self._execute = self._backend.execute_local
        else:
            self._execute = self.coordinator.execute_transaction
        self._began = True

    @property
    def now_ms(self) -> float:
        """Current simulated time (the timestamp of the last processed event)."""
        return self._now if self._began else 0.0

    @property
    def txn_clock_ms(self) -> float:
        """Simulated submission time of the currently executing transaction.

        This is the clock the self-tuning subsystem schedules retrain jobs
        against: it advances identically under the inline and sharded
        backends (sharded folds replay in submission order at pop time), so
        time-driven decisions stay byte-deterministic across backends.
        """
        return self._txn_clock if self._began else 0.0

    @property
    def submitted(self) -> int:
        """Closed-loop submissions so far (including admission rejections)."""
        return self._submitted if self._began else 0

    @property
    def pending_events(self) -> int:
        return len(self._events) if self._began else 0

    # ------------------------------------------------------------------
    # Budget and clock control
    # ------------------------------------------------------------------
    def extend_budget(self, txns: float) -> None:
        """Grant the closed-loop clients ``txns`` further submissions."""
        self.begin()
        self._budget += txns

    def freeze_budget(self) -> None:
        """Stop new closed-loop submissions (in-flight work still finishes)."""
        self.begin()
        self._budget = self._submitted

    def advance_clock(self, to_ms: float) -> None:
        """Move the simulated clock forward to ``to_ms`` (never backwards)."""
        self.begin()
        if to_ms > self._now:
            self._now = to_ms

    # ------------------------------------------------------------------
    # Event injection
    # ------------------------------------------------------------------
    def inject(self, event: tuple) -> None:
        """Push one raw ``(time, kind, tiebreak, payload)`` event."""
        self.begin()
        if event[1] != CLIENT_READY:
            self._general_events += 1
        heappush(self._events, event)

    def submit_request(
        self,
        request: ProcedureRequest,
        *,
        at_ms: float | None = None,
        tenant: str | None = None,
    ) -> None:
        """Inject an out-of-loop request, processed when the core is driven.

        The request enters the scheduler at ``max(at_ms, now)`` (defaulting
        to the current simulated time) without consuming closed-loop budget.
        ``tenant`` labels the submission for the per-tenant metric
        breakdowns (``TenantSource`` streams).
        """
        self.begin()
        at = self._now if at_ms is None else max(at_ms, self._now)
        self._external_seq += 1
        self.inject((at, EXTERNAL_SUBMIT, self._external_seq, (request, tenant)))

    def activate_clients(self) -> None:
        """Start the closed-loop clients on a core that began open-loop.

        Idempotent; the clients become ready at the current simulated time
        and submit once budget is granted (:meth:`extend_budget`).  Used by
        live workload switches from an arrival source back to a closed loop.
        """
        self.begin()
        if self._clients_started:
            return
        self._clients_started = True
        now = self._now
        for client_id in range(self._num_clients):
            heappush(self._events, (now, CLIENT_READY, client_id, None))

    # ------------------------------------------------------------------
    # Live reconfiguration hooks (see repro.session.ClusterSession)
    # ------------------------------------------------------------------
    def set_policy(self, policy: SchedulingPolicy | str | None) -> None:
        """Swap the scheduling policy, re-keying every queued transaction."""
        self.begin()
        self.config.policy = policy
        self.scheduler.rekey(self._make_policy())

    def set_admission(self, limits: AdmissionLimits | None) -> None:
        """Swap admission limits on the live controller (or install/remove it).

        Transactions already in flight were admitted against the previous
        limits; their completions release capacity through
        :meth:`~repro.scheduling.admission.AdmissionController.release_if_admitted`,
        so installing a controller mid-run never underflows.
        """
        self.begin()
        self.config.admission_limits = limits
        if limits is None:
            self.admission = None
        elif self.admission is None:
            self.admission = AdmissionController(limits)
        else:
            self.admission.set_limits(limits)

    def set_generator(self, generator: WorkloadGenerator) -> None:
        """Swap the workload generator (takes effect on the next submission)."""
        self.generator = generator

    def set_tenancy(self, tenancy: TenancyConfig | None) -> None:
        """Install, swap, or remove the tenancy runtime on a live core.

        Attach transplants the shared queue into a :class:`TenantScheduler`
        (stats, caches and queued transactions carry over in dispatch order)
        and seeds the in-flight predicted-work signal from the outstanding
        completion events; detach transplants it back into a flat scheduler.
        Transactions admitted under quotas before a swap release the slots
        they actually hold (identity-keyed accounting), so no counter ever
        underflows.
        """
        self.begin()
        self.config.tenancy = tenancy
        if tenancy is None:
            if self.tenancy is None:
                return
            flat = TransactionScheduler(self._make_policy())
            flat.adopt_from(self.scheduler)
            self.scheduler = flat
            self.tenancy = None
            return
        if self.tenancy is None:
            layered = TenantScheduler(tenancy, self._make_policy())
            layered.adopt_from(self.scheduler)
            self.scheduler = layered
            self.tenancy = TenancyManager(tenancy)
            self.tenancy.seed_inflight(
                [when for when, kind, _, _p in self._events if kind == TXN_COMPLETE]
            )
            return
        self.scheduler.set_tenancy(tenancy)
        self.tenancy.set_config(tenancy)

    # ------------------------------------------------------------------
    # Driving the core
    # ------------------------------------------------------------------
    def _mode(self) -> tuple[bool, bool]:
        """(need_estimates, gate_on_partitions) for the current configuration."""
        policy = self.scheduler.policy
        predictive = policy is not None and policy.uses_predictions
        # Tenancy needs estimates even under FCFS: predicted service time
        # drives the fair-queuing charge and the shedding decision.  It also
        # partition-gates dispatch — overload must back up in the tenant
        # scheduler's weighted queues (where fairness and the backlog term of
        # the shed predictor operate), not inside the partitions.
        need_estimates = (
            predictive or self.admission is not None or self.tenancy is not None
        )
        return need_estimates, predictive or self.tenancy is not None

    def step(self) -> bool:
        """Process exactly one event; ``False`` when nothing can progress.

        Parked closed-loop clients count as progress when budget remains —
        the first step after :meth:`extend_budget` revives them, matching
        :meth:`run_until`'s semantics.
        """
        self.begin()
        if not self._events and not (self._parked and self._submitted < self._budget):
            return False
        self._run_events(_INF, limit=1)
        return True

    def run_until(self, *, deadline_ms: float = _INF) -> None:
        """Process events until the heap drains or the next event passes
        ``deadline_ms`` (simulated time)."""
        self.begin()
        self._run_events(deadline_ms)

    def reset(self) -> None:
        """Discard all incremental state; the next drive starts a fresh
        episode (the database and strategy keep their accumulated state,
        exactly as repeated legacy ``run()`` calls did — and so does the
        sharded backend's worker pool, whose database copies track the
        coordinator's)."""
        self._began = False

    def close(self) -> None:
        """Release backend resources (sharded worker processes).  Idempotent;
        the inline backend holds none."""
        if self._backend is not None:
            self._backend.shutdown()

    def run(self) -> SimulationResult:
        """One-shot batch entry point (``config.total_transactions`` txns).

        Each call is an independent episode: like the legacy closed loop it
        builds a fresh scheduler and fresh accumulators, so calling ``run()``
        twice yields two separate results (over the evolving database).
        Incremental driving uses :meth:`extend_budget`/:meth:`run_until`
        (see :class:`repro.session.ClusterSession`) instead.
        """
        if self._began and (self._submitted or self._budget or self._completions):
            self.reset()
        self.begin()
        self.extend_budget(self.config.total_transactions)
        self._run_events(_INF)
        return self._build_result(copy=False)

    # ------------------------------------------------------------------
    def _run_events(self, deadline_ms: float, limit: float = _INF) -> None:
        events = self._events
        # Revive parked closed-loop clients once budget is available again.
        # Revival happens at the current simulated time (never in the past)
        # so the completion stream stays ordered by end time.
        if self._parked and self._submitted < self._budget:
            now = self._now
            for ready, client_id in self._parked:
                heappush(
                    events,
                    (ready if ready > now else now, CLIENT_READY, client_id, None),
                )
            self._parked.clear()
        need_estimates, gate_on_partitions = self._mode()
        if (
            self.admission is None
            and self.tenancy is None
            and not gate_on_partitions
            and self._general_events == 0
            and deadline_ms == _INF
        ):
            # Pass-through fast path: dispatch follows submission immediately
            # (no capacity gate can block it), so each client's completion is
            # folded into its next CLIENT_READY event — one heap entry per
            # transaction.  Submissions still go through the scheduler, so
            # the policy orders them and the stats stay live.
            if self._backend is not None:
                self._backend.run_fast(limit)
            else:
                self._run_fast(limit)
        else:
            self._run_general(deadline_ms, limit, need_estimates, gate_on_partitions)

    def _run_fast(self, limit: float = _INF) -> None:
        events = self._events
        partition_free = self._partition_free
        breakdown_acc = self._breakdown_acc
        latencies = self._latencies
        completions = self._completions
        counters = self._counters
        parked = self._parked
        num_nodes = self._num_nodes
        think = self.config.client_think_time_ms
        budget = self._budget
        submitted = self._submitted
        now = self._now
        replay = self._replay_timing
        account = self._account_record
        scheduler_submit = self.scheduler.submit
        scheduler_pop = self.scheduler.pop
        record_zero_wait = self.scheduler.record_zero_wait
        next_request = self.generator.next_request
        execute = self._execute
        processed = 0
        while events and processed < limit:
            processed += 1
            now, _, client_id, payload = heappop(events)
            if payload is not None:
                completions.append(payload)
            if submitted >= budget:
                parked.append((now, client_id))
                continue
            submitted += 1
            raw = next_request()
            request = ProcedureRequest(
                raw.procedure, raw.parameters, client_id, client_id % num_nodes
            )
            # need_estimates is necessarily False here: this path runs
            # only without admission control and with a non-predictive
            # policy, so submissions carry no estimate.
            pending = scheduler_submit(request)
            pending.submit_time_ms = now
            pending = scheduler_pop()
            # Dispatch follows submission immediately on this path.
            record_zero_wait(pending.request.procedure)
            self._txn_clock = now
            record = execute(pending.request)
            end = replay(record, now, partition_free, breakdown_acc)
            latencies.append(end - pending.submit_time_ms)
            account(record, counters)
            heappush(
                events,
                (end + think, CLIENT_READY, pending.request.client_id,
                 (end, record.committed)),
            )
        self._submitted = submitted
        self._now = now

    def _run_general(
        self,
        deadline_ms: float,
        limit: float,
        need_estimates: bool,
        gate_on_partitions: bool,
    ) -> None:
        events = self._events
        scheduler = self.scheduler
        admission = self.admission
        completions = self._completions
        parked = self._parked
        next_wakeup = self._next_wakeup
        think = self.config.client_think_time_ms
        budget = self._budget
        submitted = self._submitted
        now = self._now
        processed = 0
        while events and processed < limit:
            if events[0][0] > deadline_ms:
                break
            processed += 1
            now, kind, tiebreak, payload = heappop(events)
            if kind == CLIENT_READY:
                # A fast-path CLIENT_READY carries its client's previous
                # completion folded into the payload; record it before the
                # budget check, exactly as the fast path does.
                if payload is not None:
                    completions.append(payload)
                if submitted >= budget:
                    parked.append((now, tiebreak))
                    continue
                submitted += 1
                raw = self.generator.next_request()
                request = ProcedureRequest(
                    raw.procedure, raw.parameters, tiebreak, tiebreak % self._num_nodes
                )
                self._submit_pending(request, now, need_estimates)
                self._drain(now, gate_on_partitions)
            elif kind == TXN_COMPLETE:
                self._general_events -= 1
                client_id, was_committed, pending, _record = payload
                if admission is not None:
                    admission.release_if_admitted(pending)
                if self.tenancy is not None:
                    self.tenancy.quota.release_if_admitted(pending)
                completions.append((now, was_committed))
                if not pending.external:
                    heappush(events, (now + think, CLIENT_READY, client_id, None))
                if scheduler:
                    self._drain(now, gate_on_partitions)
            elif kind == EXTERNAL_SUBMIT:
                self._general_events -= 1
                request, tenant = payload
                self._submit_pending(
                    request, now, need_estimates, external=True, tenant=tenant
                )
                self._drain(now, gate_on_partitions)
            else:  # PARTITION_RELEASE
                self._general_events -= 1
                if next_wakeup[0] <= now:
                    next_wakeup[0] = _INF
                if scheduler:
                    self._drain(now, gate_on_partitions)
        self._submitted = submitted
        self._now = now

    def _submit_pending(
        self,
        request: ProcedureRequest,
        now: float,
        need_estimates: bool,
        external: bool = False,
        tenant: str | None = None,
    ):
        estimate = self.strategy.preview_estimate(request) if need_estimates else None
        base_partition = 0
        if estimate is not None and not estimate.degenerate:
            base_partition = estimate.base_partition() or 0
        tenancy = self.tenancy
        if tenancy is not None and tenant is not None:
            tenancy.record_arrival(tenant)
            own_cost_ms = 0.0
            if estimate is not None and not estimate.degenerate:
                own_cost_ms = self.scheduler.predicted_cost_for(
                    request.procedure, estimate, base_partition
                ).service_ms
            if tenancy.should_shed(
                tenant, own_cost_ms, self.scheduler, now, self._num_partitions
            ):
                # Shed at the door: the arrival is predicted to land outside
                # its tenant's SLO, so rejecting it now is cheaper for
                # everyone than queueing work that will miss anyway.
                tenancy.record_shed(tenant)
                self._counters["rejected"] += 1
                acc = self._tenant_account(tenant)
                acc["submitted"] += 1
                acc["rejected"] += 1
                if not external:
                    heappush(
                        self._events,
                        (now + self.cost_model.redirect_ms, CLIENT_READY,
                         request.client_id, None),
                    )
                return None
        pending = self.scheduler.submit(request, estimate,
                                        base_partition=base_partition, tenant=tenant)
        if not any(p < self._num_partitions for p in pending.predicted_partitions):
            self._ungated_queued += 1
        pending.submit_time_ms = now
        pending.external = external
        if tenant is not None:
            self._tenant_account(tenant)["submitted"] += 1
        return pending

    def _tenant_account(self, tenant: str) -> dict:
        acc = self._tenant_acc.get(tenant)
        if acc is None:
            acc = {
                "submitted": 0, "committed": 0, "user_aborted": 0,
                "restarts": 0, "rejected": 0,
                "latencies": LatencySketch() if self._streaming else [],
            }
            self._tenant_acc[tenant] = acc
        return acc

    def _drain(self, now: float, gate_on_partitions: bool) -> None:
        """Dispatch every queued transaction that may start at ``now``."""
        scheduler = self.scheduler
        admission = self.admission
        events = self._events
        partition_free = self._partition_free
        num_partitions = self._num_partitions
        counters = self._counters
        latencies = self._latencies
        breakdown_acc = self._breakdown_acc
        next_wakeup = self._next_wakeup
        redirect_ms = self.cost_model.redirect_ms
        execute = self._execute
        tenancy = self.tenancy
        quota = tenancy.quota if tenancy is not None else None
        if gate_on_partitions and not self._ungated_queued:
            # Saturation short-circuit: with every partition busy and no
            # ungated work queued, the scan below would pop, block and
            # requeue every entry without dispatching — O(queue) churn per
            # event.  The partition gate precedes the quota and admission
            # checks, so skipping the scan observes nothing they would
            # have.  Waking at the first release is conservative (a drain
            # there re-arms the precise wake-up if still nothing fits).
            busy_until = min(partition_free)
            if busy_until > now:
                if busy_until < next_wakeup[0]:
                    next_wakeup[0] = busy_until
                    self._general_events += 1
                    heappush(events, (busy_until, PARTITION_RELEASE, 0, None))
                return
        blocked: list = []
        blocked_until = _INF
        while scheduler:
            pending = scheduler.pop()
            if gate_on_partitions and pending.predicted_partitions:
                ready_at = now
                for partition_id in pending.predicted_partitions:
                    if partition_id < num_partitions:
                        free_at = partition_free[partition_id]
                        if free_at > ready_at:
                            ready_at = free_at
                if ready_at > now:
                    blocked.append(pending)
                    if ready_at < blocked_until:
                        blocked_until = ready_at
                    continue
            if quota is not None and not quota.would_admit(pending):
                # Quota push-back: not an admission deferral (no wake-up
                # event needed either — a blocked tenant holds quota >= 1
                # slots, so a TXN_COMPLETE is outstanding and re-drains).
                quota.note_blocked(pending)
                blocked.append(pending)
                continue
            if admission is not None:
                decision = admission.decide(pending)
                if decision is AdmissionDecision.DEFER:
                    blocked.append(pending)
                    pending.deferrals += 1
                    continue
                if decision is AdmissionDecision.REJECT:
                    scheduler.note_rejected(pending)
                    if not any(
                        p < num_partitions for p in pending.predicted_partitions
                    ):
                        self._ungated_queued -= 1
                    counters["rejected"] += 1
                    if pending.tenant is not None:
                        self._tenant_account(pending.tenant)["rejected"] += 1
                    # The closed-loop client backs off one redirect
                    # round-trip, then issues a fresh request; a rejected
                    # external injection has no client to re-arm.
                    if not pending.external:
                        heappush(
                            events,
                            (now + redirect_ms, CLIENT_READY,
                             pending.request.client_id, None),
                        )
                    continue
            if quota is not None:
                quota.admit(pending)
            if not any(p < num_partitions for p in pending.predicted_partitions):
                self._ungated_queued -= 1
            scheduler.note_dispatched(pending)
            scheduler.record_wait(pending.request.procedure, now - pending.submit_time_ms)
            self._txn_clock = now
            record = execute(pending.request)
            end = self._replay_timing(record, now, partition_free, breakdown_acc)
            latency = end - pending.submit_time_ms
            latencies.append(latency)
            self._account_record(record, counters)
            if tenancy is not None:
                tenancy.note_dispatch(end)
                tenancy.slo.record(pending.tenant, latency)
            if pending.tenant is not None:
                acc = self._tenant_account(pending.tenant)
                acc["latencies"].append(latency)
                if record.committed:
                    acc["committed"] += 1
                else:
                    acc["user_aborted"] += 1
                acc["restarts"] += record.restarts
            self._complete_seq += 1
            self._general_events += 1
            heappush(
                events,
                (end, TXN_COMPLETE, self._complete_seq,
                 (pending.request.client_id, record.committed, pending, record)),
            )
            if gate_on_partitions and not self._ungated_queued and scheduler:
                # The dispatch may have re-saturated the cluster; once every
                # partition is busy again (and nothing ungated is queued)
                # no later entry can dispatch in this pass either, so stop
                # scanning.  The wake-up below stays conservative: the
                # earliest release bounds every unscanned entry's ready
                # time from below, and a too-early drain is a no-op that
                # re-arms precisely.
                earliest_release = min(partition_free)
                if earliest_release > now:
                    if earliest_release < blocked_until:
                        blocked_until = earliest_release
                    break
        for pending in blocked:
            scheduler.requeue(pending)
        if blocked_until != _INF and blocked_until < next_wakeup[0]:
            next_wakeup[0] = blocked_until
            self._general_events += 1
            heappush(events, (blocked_until, PARTITION_RELEASE, 0, None))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def in_flight(self) -> list[InFlightTransaction]:
        """Unfinished transactions at the paused clock (executing + queued).

        Executing entries are ``TXN_COMPLETE`` events whose simulated end
        lies at or beyond ``now`` (ordered by end time); queued entries are
        the scheduler's backlog in dispatch order.  Fast-path (pure FCFS)
        driving folds completions into client events and dispatches
        instantaneously, so it never leaves executing entries behind —
        pausing mid-flight happens through ``run_for(sim_seconds=...)``,
        which always runs the general loop.
        """
        self.begin()
        now = self._now
        num_partitions = self._num_partitions
        executing: list[tuple[float, InFlightTransaction]] = []
        for when, kind, _, payload in self._events:
            if kind != TXN_COMPLETE:
                continue
            _, __, pending, record = payload
            executing.append((when, InFlightTransaction(
                state="executing",
                procedure=record.procedure,
                tenant=pending.tenant,
                txn_id=record.txn_id,
                attempt=record.attempt_count,
                partitions=record.final_plan.lock_set(num_partitions).partitions,
                submitted_at_ms=pending.submit_time_ms,
                predicted_remaining_ms=max(0.0, when - now),
            )))
        executing.sort(key=lambda entry: entry[0])
        out = [entry[1] for entry in executing]
        if self.scheduler is not None:
            for pending in self.scheduler.pending_transactions():
                out.append(InFlightTransaction(
                    state="queued",
                    procedure=pending.request.procedure,
                    tenant=pending.tenant,
                    txn_id=None,
                    attempt=0,
                    partitions=tuple(pending.predicted_partitions),
                    submitted_at_ms=pending.submit_time_ms,
                    predicted_remaining_ms=pending.predicted_cost_ms,
                ))
        return out

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def snapshot(self) -> SimulationResult:
        """Materialize the metrics accumulated so far (repeatable, on demand).

        The warm-up window is finalized over the completions recorded up to
        now; driving the core further and snapshotting again recomputes it.
        """
        self.begin()
        return self._build_result(copy=True)

    def _build_result(self, *, copy: bool) -> SimulationResult:
        result = SimulationResult(
            strategy=self.strategy.name,
            benchmark=self.benchmark_name,
            num_partitions=self._num_partitions,
            simulated_duration_ms=0.0,
            metrics_mode=self.config.metrics_mode,
        )
        if self._streaming:
            result.latency_sketch = (
                self._latencies.copy() if copy else self._latencies
            )
        else:
            result.latencies_ms = list(self._latencies) if copy else self._latencies
        counters = self._counters
        result.committed = counters["committed"]
        result.user_aborted = counters["user_aborted"]
        result.restarts = counters["restarts"]
        result.escalations = counters["escalations"]
        result.undo_disabled = counters["undo_disabled"]
        result.early_prepared = counters["early_prepared"]
        result.single_partition = counters["single_partition"]
        result.distributed = counters["distributed"]
        result.rejected = counters["rejected"]
        for procedure, acc in self._breakdown_acc.items():
            result.breakdowns[procedure] = ProcedureBreakdown(
                procedure=procedure,
                transactions=acc[_TXNS],
                estimation_ms=acc[_EST],
                planning_ms=acc[_PLAN],
                execution_ms=acc[_EXEC],
                coordination_ms=acc[_COORD],
                other_ms=acc[_OTHER],
            )
        # Snapshots own their stats: a copy freezes the counters at this
        # point, so phase-over-phase comparisons of saved snapshots stay
        # valid while the session keeps running.  The one-shot run() hands
        # over the live objects, as the legacy loop did.
        scheduler_stats = self.scheduler.stats
        admission_stats = self.admission.stats if self.admission is not None else None
        if copy:
            scheduler_stats = dataclasses.replace(scheduler_stats)
            if admission_stats is not None:
                admission_stats = dataclasses.replace(admission_stats)
        # The wait summary is rebuilt fresh for every snapshot, so assigning
        # it never shares state between a frozen copy and the live stats.
        scheduler_stats.queue_wait_by_class = self.scheduler.wait_summary()
        result.scheduler_stats = scheduler_stats
        result.admission_stats = admission_stats
        self._finalize_window(self._completions, result)
        for tenant in sorted(self._tenant_acc):
            acc = self._tenant_acc[tenant]
            breakdown = TenantBreakdown(
                tenant=tenant,
                submitted=acc["submitted"],
                committed=acc["committed"],
                user_aborted=acc["user_aborted"],
                restarts=acc["restarts"],
                rejected=acc["rejected"],
                duration_ms=result.simulated_duration_ms,
            )
            if self._streaming:
                breakdown.latency_sketch = (
                    acc["latencies"].copy() if copy else acc["latencies"]
                )
            else:
                breakdown.latencies_ms = (
                    list(acc["latencies"]) if copy else acc["latencies"]
                )
            result.tenants[tenant] = breakdown
        # Maintenance (§4.5) and self-tuning activity, surfaced per snapshot.
        # Built here — shared by run()/snapshot()/sharded folds — so session
        # and batch results stay byte-identical.
        houdini = getattr(self.strategy, "houdini", None)
        if houdini is not None:
            result.maintenance = houdini.maintenance.stats_by_procedure()
        if self.selftune is not None:
            result.selftune = self.selftune.snapshot()
        if self.tenancy is not None:
            result.tenancy = self.tenancy.snapshot(self.scheduler)
        return result

    # ------------------------------------------------------------------
    def _replay_timing(
        self,
        record: TransactionRecord,
        submit_time: float,
        partition_free: list[float],
        breakdown_acc: dict[str, list],
    ) -> float:
        """Schedule every attempt of a transaction onto the partitions."""
        num_partitions = self.catalog.num_partitions
        attempt_timing = self.cost_model.attempt_timing
        clock = submit_time
        acc = breakdown_acc.get(record.procedure)
        if acc is None:
            acc = [0, 0.0, 0.0, 0.0, 0.0, 0.0]
            breakdown_acc[record.procedure] = acc
        pairs = record.attempt_pairs()
        last_index = len(pairs) - 1
        if last_index > 0:
            # Restarted transaction: batch the schedule-cache probes — one
            # per distinct plan shape instead of one per attempt.
            timings = self.cost_model.attempt_timings(pairs, num_partitions)
        else:
            timings = None
        for attempt_index, (plan, attempt) in enumerate(pairs):
            timing = (
                timings[attempt_index]
                if timings is not None
                else attempt_timing(plan, attempt, num_partitions)
            )
            lock_set = plan.lock_set(num_partitions).partitions
            ready = clock + plan.estimation_ms + timing.planning_ms
            start = ready
            for partition_id in lock_set:
                free_at = partition_free[partition_id]
                if free_at > start:
                    start = free_at
            release_offsets = timing.release_offsets
            for partition_id in lock_set:
                partition_free[partition_id] = start + release_offsets[partition_id]
            # Escalated partitions (OP3 safety valve) are acquired late: the
            # transaction stalls until they are free, on top of its own work.
            stall = 0.0
            escalated = attempt.escalated_partitions
            if escalated:
                lock_members = set(lock_set)
                for partition_id in escalated:
                    if partition_id not in lock_members:
                        acquire_at = max(start, partition_free[partition_id])
                        stall = max(stall, acquire_at - start)
                        partition_free[partition_id] = start + timing.total_ms + stall
            end = start + timing.total_ms + stall
            clock = end
            if attempt_index < last_index:
                # The attempt was thrown away; the next one starts after a
                # redirect round-trip.
                clock += self.cost_model.redirect_ms
            acc[_TXNS] += 1
            acc[_EST] += timing.estimation_ms
            acc[_PLAN] += timing.planning_ms
            acc[_EXEC] += timing.execution_ms
            acc[_COORD] += timing.coordination_ms
            acc[_OTHER] += timing.setup_ms
        return clock

    # ------------------------------------------------------------------
    @staticmethod
    def _account_record(record: TransactionRecord, counters: dict) -> None:
        if record.committed:
            counters["committed"] += 1
        else:
            counters["user_aborted"] += 1
        counters["restarts"] += record.restarts
        escalations = 0
        for attempt in record.attempts:
            if attempt.escalated_partitions:
                escalations += 1
        counters["escalations"] += escalations
        if record.undo_disabled:
            counters["undo_disabled"] += 1
        if record.early_prepared_partitions:
            counters["early_prepared"] += 1
        if record.single_partitioned:
            counters["single_partition"] += 1
        else:
            counters["distributed"] += 1

    def _finalize_window(
        self, completions: list[tuple[float, bool]], result: SimulationResult
    ) -> None:
        """Compute the post-warm-up measurement window (paper: 60s warm-up).

        ``completions`` is produced by ``TXN_COMPLETE`` events, i.e. already
        ordered by end time — one linear pass, no sort.  The one exception:
        the FCFS fast path records a completion when its *folded* follow-up
        event pops (at ``end + think``), so switching from fast to general
        mode mid-heap with a non-zero think time can interleave a general
        completion (recorded at ``end``) before an earlier folded one.  A
        linear scan detects that rare case and restores order with a stable
        sort on end time (batch runs never take it, keeping them exact).

        In streaming mode the completions live in a bounded
        :class:`CompletionWindow` histogram (order-insensitive), which
        reproduces the same window to within one bucket.
        """
        if isinstance(completions, CompletionWindow):
            duration, window, window_committed = completions.window(
                self.config.warmup_fraction
            )
            result.simulated_duration_ms = duration
            result.window_duration_ms = window
            result.window_committed = window_committed
            return
        if not completions:
            result.simulated_duration_ms = 0.0
            return
        previous = 0.0
        for entry in completions:
            end = entry[0]
            if end < previous:
                completions = sorted(completions, key=lambda c: c[0])
                break
            previous = end
        last_end = completions[-1][0]
        result.simulated_duration_ms = last_end
        warmup_index = min(
            int(len(completions) * self.config.warmup_fraction), len(completions) - 1
        )
        warmup_time = completions[warmup_index][0] if warmup_index > 0 else 0.0
        window = last_end - warmup_time
        if window <= 0:
            # Degenerate (single transaction): fall back to the full run.
            result.window_duration_ms = last_end
            result.window_committed = sum(1 for _, committed in completions if committed)
            return
        result.window_duration_ms = window
        result.window_committed = sum(
            1 for end, committed in completions if committed and end > warmup_time
        )
