"""Closed-loop cluster simulator: a discrete-event runtime.

Reproduces the paper's throughput experiments without the Wisconsin cluster:
transactions are executed *functionally* against the real in-memory database
through the transaction coordinator (so mispredictions, restarts, aborts and
optimization updates all really happen), and their *timing* is replayed
through the cost model onto a set of single-threaded partition resources.

The run loop is a single binary event heap (see :mod:`repro.sim.events`)
processing client-ready, transaction-complete and partition-release events
in timestamp order.  The workload driver is closed-loop, matching the
paper's setup of "four client threads per partition to ensure that the
workload queues at each node are always full": each simulated client submits
its next request the moment its previous one completes.  Every submission is
routed through a :class:`~repro.scheduling.scheduler.TransactionScheduler`,
so queue policies and admission control are exercised by throughput runs:

* under the default FCFS policy with no admission limits the scheduler is
  pass-through and the runtime reproduces the legacy greedy driver's results
  exactly (``tests/sim`` holds them equal metric-by-metric);
* a prediction-aware policy annotates each request with its Houdini path
  estimate (:meth:`~repro.txn.strategy.ExecutionStrategy.preview_estimate`),
  dispatches by predicted cost/partition profile, and *partition-gates*
  dispatch — a transaction whose predicted partitions are busy waits for a
  ``PARTITION_RELEASE`` event while ready work behind it runs;
* admission limits defer or reject transactions whose predicted resource
  usage would overload the node, with capacity released on completion.

A transaction starts once every partition in its lock set is free;
partitions are released at commit — or earlier when the early-prepare
optimization (OP4) declared the transaction finished with them, which is how
speculative execution shows up in the timing model.

Metric updates are batched: the loop appends to flat accumulator arrays and
the :class:`~repro.sim.metrics.SimulationResult` is materialized once per
run.  Completions are recorded at ``TXN_COMPLETE`` events, i.e. already
ordered by end time, so the warm-up window needs one linear pass instead of
a sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush

from ..catalog.schema import Catalog
from ..scheduling.admission import AdmissionController, AdmissionDecision, AdmissionLimits
from ..scheduling.policies import SchedulingPolicy, policy_by_name
from ..scheduling.scheduler import TransactionScheduler
from ..storage.partition_store import Database
from ..txn.coordinator import TransactionCoordinator
from ..txn.record import TransactionRecord
from ..txn.strategy import ExecutionStrategy
from ..types import ProcedureRequest
from ..workload.generator import WorkloadGenerator
from .cost_model import CostModel
from .events import CLIENT_READY, PARTITION_RELEASE, TXN_COMPLETE
from .metrics import ProcedureBreakdown, SimulationResult

#: Accumulator slots per procedure (see ``_replay_timing``).
_TXNS, _EST, _PLAN, _EXEC, _COORD, _OTHER = range(6)


@dataclass
class SimulatorConfig:
    """Knobs for one simulator run."""

    #: Closed-loop clients per partition (the paper uses four).
    clients_per_partition: int = 4
    #: Total transactions to execute (split across clients).
    total_transactions: int = 2000
    #: Fraction of the earliest-completing transactions treated as warm-up
    #: and excluded from the throughput window (the paper warms up for 60s).
    warmup_fraction: float = 0.1
    #: Think time between a client's transactions (0 = saturated, as in the paper).
    client_think_time_ms: float = 0.0
    #: Queue policy for the node scheduler: a registry name, a policy
    #: instance, or ``None`` for first-come first-served.
    policy: SchedulingPolicy | str | None = None
    #: Admission-control limits; ``None`` disables admission control.
    admission_limits: AdmissionLimits | None = None


class ClusterSimulator:
    """Runs one (benchmark, strategy, cluster size) configuration."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        generator: WorkloadGenerator,
        strategy: ExecutionStrategy,
        *,
        cost_model: CostModel | None = None,
        config: SimulatorConfig | None = None,
        benchmark_name: str = "",
    ) -> None:
        self.catalog = catalog
        self.database = database
        self.generator = generator
        self.strategy = strategy
        self.cost_model = cost_model or CostModel()
        self.config = config or SimulatorConfig()
        self.benchmark_name = benchmark_name or generator.benchmark
        self.coordinator = TransactionCoordinator(catalog, database, strategy)
        #: Populated by :meth:`run` (scheduler + admission introspection).
        self.scheduler: TransactionScheduler | None = None
        self.admission: AdmissionController | None = None

    # ------------------------------------------------------------------
    def _make_policy(self) -> SchedulingPolicy | None:
        policy = self.config.policy
        if policy is None or isinstance(policy, SchedulingPolicy):
            return policy
        return policy_by_name(policy)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        config = self.config
        num_partitions = self.catalog.num_partitions
        num_nodes = self.catalog.scheme.num_nodes
        num_clients = max(1, config.clients_per_partition * num_partitions)
        total = config.total_transactions
        think = config.client_think_time_ms

        policy = self._make_policy()
        scheduler = TransactionScheduler(policy, cost_model=self.cost_model)
        limits = config.admission_limits
        admission = AdmissionController(limits) if limits is not None else None
        self.scheduler = scheduler
        self.admission = admission
        # Prediction-aware configurations annotate submissions with path
        # estimates and gate dispatch on predicted partition availability.
        need_estimates = (
            policy is not None and policy.uses_predictions
        ) or admission is not None
        gate_on_partitions = policy is not None and policy.uses_predictions

        partition_free = [0.0] * num_partitions
        result = SimulationResult(
            strategy=self.strategy.name,
            benchmark=self.benchmark_name,
            num_partitions=num_partitions,
            simulated_duration_ms=0.0,
        )

        # Batched accumulators, folded into `result` once at the end.
        latencies: list[float] = []
        completions: list[tuple[float, bool]] = []
        breakdown_acc: dict[str, list] = {}
        counters = {
            "committed": 0, "user_aborted": 0, "restarts": 0, "escalations": 0,
            "undo_disabled": 0, "early_prepared": 0, "single_partition": 0,
            "distributed": 0, "rejected": 0,
        }

        generator = self.generator
        coordinator = self.coordinator
        strategy = self.strategy
        redirect_ms = self.cost_model.redirect_ms
        submitted = 0
        complete_seq = 0
        #: Earliest scheduled partition-release wakeup (deduplication).
        next_wakeup = [float("inf")]

        # The initial event list — every client ready at t=0, client-id
        # tie-break — is already heap-ordered.
        events: list[tuple] = [(0.0, CLIENT_READY, c, None) for c in range(num_clients)]

        def drain(now: float) -> None:
            """Dispatch every queued transaction that may start at ``now``."""
            nonlocal complete_seq
            blocked: list = []
            blocked_until = float("inf")
            while scheduler:
                pending = scheduler.pop()
                if gate_on_partitions and pending.predicted_partitions:
                    ready_at = now
                    for partition_id in pending.predicted_partitions:
                        if partition_id < num_partitions:
                            free_at = partition_free[partition_id]
                            if free_at > ready_at:
                                ready_at = free_at
                    if ready_at > now:
                        blocked.append(pending)
                        if ready_at < blocked_until:
                            blocked_until = ready_at
                        continue
                if admission is not None:
                    decision = admission.decide(pending)
                    if decision is AdmissionDecision.DEFER:
                        blocked.append(pending)
                        pending.deferrals += 1
                        continue
                    if decision is AdmissionDecision.REJECT:
                        scheduler.note_rejected(pending)
                        counters["rejected"] += 1
                        # The closed-loop client backs off one redirect
                        # round-trip, then issues a fresh request.
                        heappush(
                            events,
                            (now + redirect_ms, CLIENT_READY,
                             pending.request.client_id, None),
                        )
                        continue
                record = coordinator.execute_transaction(pending.request)
                end = self._replay_timing(record, now, partition_free, breakdown_acc)
                latencies.append(end - pending.submit_time_ms)
                self._account_record(record, counters)
                complete_seq += 1
                heappush(
                    events,
                    (end, TXN_COMPLETE, complete_seq,
                     (pending.request.client_id, record.committed, pending)),
                )
            for pending in blocked:
                scheduler.requeue(pending)
            if blocked_until != float("inf") and blocked_until < next_wakeup[0]:
                next_wakeup[0] = blocked_until
                heappush(events, (blocked_until, PARTITION_RELEASE, 0, None))

        if admission is None and not gate_on_partitions:
            # Pass-through fast path: dispatch follows submission immediately
            # (no capacity gate can block it), so each client's completion is
            # folded into its next CLIENT_READY event — one heap entry per
            # transaction.  Submissions still go through the scheduler, so
            # the policy orders them and the stats stay live.
            replay = self._replay_timing
            scheduler_submit = scheduler.submit
            scheduler_pop = scheduler.pop
            next_request = generator.next_request
            execute = coordinator.execute_transaction
            while events:
                now, _, client_id, payload = heappop(events)
                if payload is not None:
                    completions.append(payload)
                if submitted >= total:
                    continue
                submitted += 1
                raw = next_request()
                request = ProcedureRequest(
                    raw.procedure, raw.parameters, client_id, client_id % num_nodes
                )
                # need_estimates is necessarily False here: this path runs
                # only without admission control and with a non-predictive
                # policy, so submissions carry no estimate.
                pending = scheduler_submit(request)
                pending.submit_time_ms = now
                pending = scheduler_pop()
                record = execute(pending.request)
                end = replay(record, now, partition_free, breakdown_acc)
                latencies.append(end - pending.submit_time_ms)
                self._account_record(record, counters)
                heappush(
                    events,
                    (end + think, CLIENT_READY, pending.request.client_id,
                     (end, record.committed)),
                )
        else:
            while events:
                now, kind, tiebreak, payload = heappop(events)
                if kind == CLIENT_READY:
                    if submitted >= total:
                        continue
                    submitted += 1
                    raw = generator.next_request()
                    request = ProcedureRequest(
                        raw.procedure, raw.parameters, tiebreak, tiebreak % num_nodes
                    )
                    estimate = (
                        strategy.preview_estimate(request) if need_estimates else None
                    )
                    base_partition = 0
                    if estimate is not None and not estimate.degenerate:
                        base_partition = estimate.base_partition() or 0
                    pending = scheduler.submit(
                        request, estimate, base_partition=base_partition
                    )
                    pending.submit_time_ms = now
                    drain(now)
                elif kind == TXN_COMPLETE:
                    client_id, was_committed, pending = payload
                    if admission is not None:
                        admission.release(pending)
                    completions.append((now, was_committed))
                    heappush(events, (now + think, CLIENT_READY, client_id, None))
                    if scheduler:
                        drain(now)
                else:  # PARTITION_RELEASE
                    if next_wakeup[0] <= now:
                        next_wakeup[0] = float("inf")
                    if scheduler:
                        drain(now)

        # Fold the accumulators into the result object.
        result.latencies_ms = latencies
        result.committed = counters["committed"]
        result.user_aborted = counters["user_aborted"]
        result.restarts = counters["restarts"]
        result.escalations = counters["escalations"]
        result.undo_disabled = counters["undo_disabled"]
        result.early_prepared = counters["early_prepared"]
        result.single_partition = counters["single_partition"]
        result.distributed = counters["distributed"]
        result.rejected = counters["rejected"]
        for procedure, acc in breakdown_acc.items():
            result.breakdowns[procedure] = ProcedureBreakdown(
                procedure=procedure,
                transactions=acc[_TXNS],
                estimation_ms=acc[_EST],
                planning_ms=acc[_PLAN],
                execution_ms=acc[_EXEC],
                coordination_ms=acc[_COORD],
                other_ms=acc[_OTHER],
            )
        result.scheduler_stats = scheduler.stats
        result.admission_stats = admission.stats if admission is not None else None
        self._finalize_window(completions, result)
        return result

    # ------------------------------------------------------------------
    def _replay_timing(
        self,
        record: TransactionRecord,
        submit_time: float,
        partition_free: list[float],
        breakdown_acc: dict[str, list],
    ) -> float:
        """Schedule every attempt of a transaction onto the partitions."""
        num_partitions = self.catalog.num_partitions
        attempt_timing = self.cost_model.attempt_timing
        clock = submit_time
        acc = breakdown_acc.get(record.procedure)
        if acc is None:
            acc = [0, 0.0, 0.0, 0.0, 0.0, 0.0]
            breakdown_acc[record.procedure] = acc
        pairs = record.attempt_pairs()
        last_index = len(pairs) - 1
        for attempt_index, (plan, attempt) in enumerate(pairs):
            timing = attempt_timing(plan, attempt, num_partitions)
            lock_set = plan.lock_set(num_partitions).partitions
            ready = clock + plan.estimation_ms + timing.planning_ms
            start = ready
            for partition_id in lock_set:
                free_at = partition_free[partition_id]
                if free_at > start:
                    start = free_at
            release_offsets = timing.release_offsets
            for partition_id in lock_set:
                partition_free[partition_id] = start + release_offsets[partition_id]
            # Escalated partitions (OP3 safety valve) are acquired late: the
            # transaction stalls until they are free, on top of its own work.
            stall = 0.0
            escalated = attempt.escalated_partitions
            if escalated:
                lock_members = set(lock_set)
                for partition_id in escalated:
                    if partition_id not in lock_members:
                        acquire_at = max(start, partition_free[partition_id])
                        stall = max(stall, acquire_at - start)
                        partition_free[partition_id] = start + timing.total_ms + stall
            end = start + timing.total_ms + stall
            clock = end
            if attempt_index < last_index:
                # The attempt was thrown away; the next one starts after a
                # redirect round-trip.
                clock += self.cost_model.redirect_ms
            acc[_TXNS] += 1
            acc[_EST] += timing.estimation_ms
            acc[_PLAN] += timing.planning_ms
            acc[_EXEC] += timing.execution_ms
            acc[_COORD] += timing.coordination_ms
            acc[_OTHER] += timing.setup_ms
        return clock

    # ------------------------------------------------------------------
    @staticmethod
    def _account_record(record: TransactionRecord, counters: dict) -> None:
        if record.committed:
            counters["committed"] += 1
        else:
            counters["user_aborted"] += 1
        counters["restarts"] += record.restarts
        escalations = 0
        for attempt in record.attempts:
            if attempt.escalated_partitions:
                escalations += 1
        counters["escalations"] += escalations
        if record.undo_disabled:
            counters["undo_disabled"] += 1
        if record.early_prepared_partitions:
            counters["early_prepared"] += 1
        if record.single_partitioned:
            counters["single_partition"] += 1
        else:
            counters["distributed"] += 1

    def _finalize_window(
        self, completions: list[tuple[float, bool]], result: SimulationResult
    ) -> None:
        """Compute the post-warm-up measurement window (paper: 60s warm-up).

        ``completions`` is produced by ``TXN_COMPLETE`` events, i.e. already
        ordered by end time — one linear pass, no sort.
        """
        if not completions:
            result.simulated_duration_ms = 0.0
            return
        last_end = completions[-1][0]
        result.simulated_duration_ms = last_end
        warmup_index = min(
            int(len(completions) * self.config.warmup_fraction), len(completions) - 1
        )
        warmup_time = completions[warmup_index][0] if warmup_index > 0 else 0.0
        window = last_end - warmup_time
        if window <= 0:
            # Degenerate (single transaction): fall back to the full run.
            result.window_duration_ms = last_end
            result.window_committed = sum(1 for _, committed in completions if committed)
            return
        result.window_duration_ms = window
        result.window_committed = sum(
            1 for end, committed in completions if committed and end > warmup_time
        )
