"""Closed-loop cluster simulator.

Reproduces the paper's throughput experiments without the Wisconsin cluster:
transactions are executed *functionally* against the real in-memory database
through the transaction coordinator (so mispredictions, restarts, aborts and
optimization updates all really happen), and their *timing* is replayed
through the cost model onto a set of single-threaded partition resources.

The workload driver is closed-loop, matching the paper's setup of "four
client threads per partition to ensure that the workload queues at each node
are always full": each simulated client submits its next request the moment
its previous one completes.  A transaction starts once every partition in its
lock set is free; partitions are released at commit — or earlier when the
early-prepare optimization (OP4) declared the transaction finished with them,
which is how speculative execution shows up in the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.schema import Catalog
from ..storage.partition_store import Database
from ..txn.coordinator import TransactionCoordinator
from ..txn.record import TransactionRecord
from ..txn.strategy import ExecutionStrategy
from ..types import ProcedureRequest
from ..workload.generator import WorkloadGenerator
from .cost_model import CostModel
from .metrics import SimulationResult


@dataclass
class SimulatorConfig:
    """Knobs for one simulator run."""

    #: Closed-loop clients per partition (the paper uses four).
    clients_per_partition: int = 4
    #: Total transactions to execute (split across clients).
    total_transactions: int = 2000
    #: Fraction of the earliest-completing transactions treated as warm-up
    #: and excluded from the throughput window (the paper warms up for 60s).
    warmup_fraction: float = 0.1
    #: Think time between a client's transactions (0 = saturated, as in the paper).
    client_think_time_ms: float = 0.0


class ClusterSimulator:
    """Runs one (benchmark, strategy, cluster size) configuration."""

    def __init__(
        self,
        catalog: Catalog,
        database: Database,
        generator: WorkloadGenerator,
        strategy: ExecutionStrategy,
        *,
        cost_model: CostModel | None = None,
        config: SimulatorConfig | None = None,
        benchmark_name: str = "",
    ) -> None:
        self.catalog = catalog
        self.database = database
        self.generator = generator
        self.strategy = strategy
        self.cost_model = cost_model or CostModel()
        self.config = config or SimulatorConfig()
        self.benchmark_name = benchmark_name or generator.benchmark
        self.coordinator = TransactionCoordinator(catalog, database, strategy)

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        num_partitions = self.catalog.num_partitions
        num_nodes = self.catalog.scheme.num_nodes
        num_clients = max(1, self.config.clients_per_partition * num_partitions)
        partition_free = [0.0] * num_partitions
        client_ready = [0.0] * num_clients
        completions: list[tuple[float, bool]] = []
        result = SimulationResult(
            strategy=self.strategy.name,
            benchmark=self.benchmark_name,
            num_partitions=num_partitions,
            simulated_duration_ms=0.0,
        )
        for index in range(self.config.total_transactions):
            client_id = min(range(num_clients), key=lambda c: client_ready[c])
            submit_time = client_ready[client_id]
            request = self.generator.next_request()
            request = ProcedureRequest(
                procedure=request.procedure,
                parameters=request.parameters,
                client_id=client_id,
                arrival_node=client_id % num_nodes,
            )
            record = self.coordinator.execute_transaction(request)
            end_time = self._replay_timing(record, submit_time, partition_free, result)
            latency = end_time - submit_time
            result.latencies_ms.append(latency)
            completions.append((end_time, record.committed))
            client_ready[client_id] = end_time + self.config.client_think_time_ms
            self._account_record(record, result)
        self._finalize_window(completions, result)
        return result

    # ------------------------------------------------------------------
    def _replay_timing(
        self,
        record: TransactionRecord,
        submit_time: float,
        partition_free: list[float],
        result: SimulationResult,
    ) -> float:
        """Schedule every attempt of a transaction onto the partitions."""
        num_partitions = self.catalog.num_partitions
        clock = submit_time
        breakdown = result.breakdown_for(record.procedure)
        for attempt_index, (plan, attempt) in enumerate(record.attempt_pairs()):
            timing = self.cost_model.attempt_timing(plan, attempt, num_partitions)
            lock_set = list(plan.lock_set(num_partitions))
            ready = clock + plan.estimation_ms + timing.planning_ms
            start = max([ready] + [partition_free[p] for p in lock_set])
            for partition_id in lock_set:
                partition_free[partition_id] = start + timing.release_offsets[partition_id]
            # Escalated partitions (OP3 safety valve) are acquired late: the
            # transaction stalls until they are free, on top of its own work.
            stall = 0.0
            for partition_id in attempt.escalated_partitions:
                if partition_id not in lock_set:
                    acquire_at = max(start, partition_free[partition_id])
                    stall = max(stall, acquire_at - start)
                    partition_free[partition_id] = start + timing.total_ms + stall
            end = start + timing.total_ms + stall
            clock = end
            if attempt_index < len(record.attempts) - 1:
                # The attempt was thrown away; the next one starts after a
                # redirect round-trip.
                clock += self.cost_model.redirect_ms
            breakdown.transactions += 1
            breakdown.estimation_ms += timing.estimation_ms
            breakdown.planning_ms += timing.planning_ms
            breakdown.execution_ms += timing.execution_ms
            breakdown.coordination_ms += timing.coordination_ms
            breakdown.other_ms += timing.setup_ms
        return clock

    # ------------------------------------------------------------------
    def _account_record(self, record: TransactionRecord, result: SimulationResult) -> None:
        if record.committed:
            result.committed += 1
        else:
            result.user_aborted += 1
        result.restarts += record.restarts
        result.escalations += sum(
            1 for attempt in record.attempts if attempt.escalated_partitions
        )
        if record.undo_disabled:
            result.undo_disabled += 1
        if record.early_prepared_partitions:
            result.early_prepared += 1
        if record.single_partitioned:
            result.single_partition += 1
        else:
            result.distributed += 1

    def _finalize_window(
        self, completions: list[tuple[float, bool]], result: SimulationResult
    ) -> None:
        """Compute the post-warm-up measurement window (paper: 60s warm-up)."""
        if not completions:
            result.simulated_duration_ms = 0.0
            return
        finished = sorted(completions)
        result.simulated_duration_ms = finished[-1][0]
        warmup_index = min(
            int(len(finished) * self.config.warmup_fraction), len(finished) - 1
        )
        warmup_time = finished[warmup_index][0] if warmup_index > 0 else 0.0
        window = finished[-1][0] - warmup_time
        if window <= 0:
            # Degenerate (single transaction): fall back to the full run.
            result.window_duration_ms = finished[-1][0]
            result.window_committed = sum(1 for _, committed in finished if committed)
            return
        result.window_duration_ms = window
        result.window_committed = sum(
            1 for end, committed in finished if committed and end > warmup_time
        )
