"""Worker-process entry point for the sharded execution backend.

A worker is a *pure executor*: it owns a copy-on-write fork of the whole
database, is considered authoritative only for the partitions of its
shard, and runs dispatched transactions with no clock, no RNG, no
strategy state and no simulated-time accounting — all of that stays on
the coordinator.  The protocol over the duplex pipe (FIFO both ways):

coordinator → worker
    ``("B", [submessage, ...])``
        An ordered batch (the unit of transfer: per-message pipe writes
        cost a context switch each, so the coordinator coalesces).  Each
        submessage is one of:

        ``("d", did, request, base, locked, watermark)``
            Execute ``request`` with the given base partition and lock
            set (undo logging always on, so any result remains
            unwindable) and queue a report.  ``watermark`` is the
            highest dispatch id the coordinator has durably folded;
            held undo state at or below it is garbage-collected.
        ``("x", ops)``
            Replay a write-effect stream from a transaction executed
            elsewhere (coordinator-local execution, or another shard's
            spillover).  The worker filters the stream to its own
            shard.
    ``("r", boundary)``
        Roll back every held dispatch with ``did >= boundary`` (newest
        first) and acknowledge.  Used when a fold rejects a speculative
        execution or an earlier transaction's outcome changed state
        that in-flight dispatches already read.
    ``("q",)``
        Exit.

worker → coordinator
    ``("R", [report, ...])`` — one entry per dispatch of the batch just
    processed.  A report is ``("ok", did, result, effects, op_counts)``
    — the attempt's :class:`~repro.engine.engine.AttemptResult`, its
    replayable write effects, and the cumulative effect count after
    each query invocation (so the coordinator can reconstruct how many
    undo records an OP3-disabled inline execution would have written) —
    or ``("err", did, message)`` when the attempt raised; the worker
    exits after an error report and the coordinator fails the session
    loudly.
    ``("rb", boundary)`` — rollback acknowledged; sent after all
    still-buffered reports, so the coordinator can drain the pipe up to
    this marker to discard stale reports.
"""

from __future__ import annotations

from ...engine.engine import ExecutionEngine
from ...storage.undo_log import UndoAction
from .effects import CapturingUndoLog, apply_ops
from .protocol import (
    MSG_BATCH,
    MSG_QUIT,
    MSG_REPORT,
    MSG_ROLLBACK,
    MSG_ROLLBACK_ACK,
    REPORT_ERR,
    REPORT_OK,
    SUB_DISPATCH,
)


def worker_main(conn, catalog, database, shard_partitions) -> None:
    """Serve dispatch batches until told to quit or the pipe closes."""
    engine = ExecutionEngine(catalog, database)
    shard = frozenset(shard_partitions)
    held: dict[int, list] = {}  # did -> undo records of that dispatch
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == MSG_BATCH:
                reports: list[tuple] = []
                failed = False
                for sub in message[1]:
                    if sub[0] == SUB_DISPATCH:
                        _, did, request, base, locked, watermark = sub
                        for old_did in [d for d in held if d <= watermark]:
                            del held[old_did]
                        log = CapturingUndoLog(enabled=True)
                        op_counts: list[int] = []
                        effects = log.effects

                        def listener(
                            _context, _invocation, _e=effects, _c=op_counts
                        ):
                            _c.append(len(_e))

                        try:
                            result = engine.execute_attempt(
                                request,
                                base_partition=base,
                                locked_partitions=locked,
                                undo_enabled=True,
                                listeners=(listener,),
                                undo_log=log,
                            )
                        except Exception as error:  # noqa: BLE001
                            reports.append(
                                (
                                    REPORT_ERR,
                                    did,
                                    f"{type(error).__name__}: {error}",
                                )
                            )
                            failed = True
                            break
                        held[did] = log.held_records
                        reports.append((REPORT_OK, did, result, effects, op_counts))
                    else:  # SUB_EFFECTS
                        apply_ops(database, sub[1], shard)
                if reports:
                    conn.send((MSG_REPORT, reports))
                if failed:
                    return
            elif tag == MSG_ROLLBACK:
                boundary = message[1]
                _rollback_from(database, held, boundary)
                conn.send((MSG_ROLLBACK_ACK, boundary))
            elif tag == MSG_QUIT:
                return
            else:  # unknown tag: protocol bug, exit rather than wedge
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return


def _rollback_from(database, held, boundary) -> None:
    """Unwind every held dispatch with ``did >= boundary``, newest first.

    Undoing an insert does not move a heap's ``_next_row_id`` counter
    back, so after the unwind each touched heap's counter is restored to
    what it was before the *oldest* discarded dispatch ran — that is the
    row id its first discarded insert was assigned (dispatches executed
    back-to-back with no interleaved replays, so the minimum over all
    discarded INSERT records is exact).  This keeps future organic
    inserts allocating the same row ids as the coordinator's timeline.
    """
    restore: dict[tuple[str, int], int] = {}
    for did in sorted((d for d in held if d >= boundary), reverse=True):
        for record in reversed(held.pop(did)):
            heap = database.partition(record.partition_id).heap(record.table)
            if record.action is UndoAction.INSERT:
                heap.delete(record.row_id)
                key = (record.table, record.partition_id)
                current = restore.get(key)
                if current is None or record.row_id < current:
                    restore[key] = record.row_id
            elif record.action is UndoAction.UPDATE:
                heap.update(
                    record.row_id,
                    {
                        column: record.before_image[column]
                        for column in heap.row(record.row_id)
                    },
                    validate=False,
                    capture_before=False,
                )
            else:  # DELETE
                heap.insert_raw(dict(record.before_image), record.row_id)
    for (table, partition_id), row_id in restore.items():
        database.partition(partition_id).heap(table)._next_row_id = row_id
