"""Sharded execution backend: partition workers over OS processes.

The discrete-event core — clock, scheduler, admission, client model and
every metric accumulator — stays on the single coordinator process.  What
moves off it is the *functional* execution of transaction logic: the
partitions are sharded across ``num_workers`` forked OS processes, and a
single-partition transaction whose plan can be predicted from the
estimate cache is dispatched whole to the worker owning its home
partition.  The coordinator keeps popping later arrivals while workers
execute, then *folds* each result back into the simulated timeline in
submission order.

Determinism contract
--------------------

Simulated results are byte-identical to the inline backend under the
same seed.  The fold path guarantees this by keeping every simulated
decision on the coordinator:

* arrivals are popped from the event heap in exactly the inline order
  (the pipeline-depth condition only ever *delays* a pop relative to
  work that the inline loop would have interleaved, never reorders it),
  and the workload generator, scheduler and RNG are consumed at pop
  time;
* the *authoritative* plan for each transaction is produced at fold
  time by the real strategy (``plan_initial``), in submission order,
  against coordinator state that reflects every earlier transaction —
  the worker's execution is merely a speculative materialization of it;
* a fold first checks that the worker executed under exactly the
  authoritative plan's arguments, then replays the plan's run-time
  monitor over the worker's invocation stream (OP3/OP4 bookkeeping);
  any divergence rejects the speculation and re-executes the
  transaction locally, after unwinding the worker's state;
* simulated timing, latency accounting and the client's next-arrival
  event are all derived at fold time from the same record the inline
  loop would have produced.

Workers never see the clock or the RNG; they are pure executors whose
only observable product is an :class:`~repro.engine.engine.AttemptResult`
plus a replayable write-effect stream.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from collections import deque
from heapq import heappop, heappush

from ...errors import MispredictionAbort, SessionError
from ...houdini.runtime import HoudiniRuntime
from ...strategies.houdini_strategy import HoudiniStrategy
from ...types import ProcedureRequest
from ..events import CLIENT_READY
from .effects import CapturingUndoLog, apply_ops
from .protocol import (
    MSG_BATCH,
    MSG_QUIT,
    MSG_REPORT,
    MSG_ROLLBACK,
    MSG_ROLLBACK_ACK,
    REPORT_ERR,
    REPORT_OK,
    SUB_DISPATCH,
    SUB_EFFECTS,
)
from .worker import worker_main

_INF = float("inf")

#: Local-execution entry (no dispatch), dispatched-in-flight, and
#: dispatch-eligible-but-deferred pipeline entry kinds.
_LOCAL, _INFLIGHT, _DEFERRED = "l", "w", "q"


class _Entry:
    """One submitted-but-not-yet-folded transaction in the pipeline."""

    __slots__ = ("pop_time", "request", "client_id", "kind", "did", "worker", "spec")

    def __init__(self, pop_time, request, client_id, did):
        self.pop_time = pop_time
        self.request = request
        self.client_id = client_id
        self.did = did
        self.kind = _LOCAL
        self.worker = -1
        self.spec = None


class ShardedBackend:
    """Coordinator-side driver of the worker pool."""

    #: Maximum submitted-but-unfolded transactions (bounds coordinator
    #: memory and the re-execution cost of a cascade).
    MAX_PIPELINE = 96
    #: Maximum in-flight dispatches per worker.  Keeps the request pipe's
    #: kernel buffer from filling (a blocking coordinator ``send`` would
    #: deadlock against a worker blocked on its report ``send``).
    MAX_PER_WORKER = 16
    #: Coalesce this many buffered messages into one pipe write.  Every
    #: ``send`` is a syscall plus (on a busy host) a context switch, and
    #: at tens of microseconds each they dominate the dispatch cost; the
    #: buffer is otherwise flushed on demand, right before the
    #: coordinator blocks on a report it needs.
    FLUSH_BATCH = 8

    def __init__(self, sim, num_workers: int) -> None:
        self.sim = sim
        self.num_workers = max(1, min(int(num_workers), sim._num_partitions))
        strategy = sim.strategy
        self._houdini = strategy if isinstance(strategy, HoudiniStrategy) else None
        self._procs: list = []
        self._conns: list = []
        self._started = False
        self._pending: list[_Entry] = []
        self._seq = 0  # next dispatch id; assigned at pop to *every* entry
        self._watermark = -1  # highest folded (durable) dispatch id
        self._outstanding = [0] * self.num_workers
        self._outbox: list[list] = [[] for _ in range(self.num_workers)]
        self._inbox: list[deque] = [deque() for _ in range(self.num_workers)]
        #: Highest dispatch id buffered / actually flushed, per worker.
        #: A fold only forces a flush when the dispatch it waits on is
        #: still buffered; otherwise the outbox keeps accumulating into
        #: a bigger (cheaper) batch.
        self._buffered_high = [-1] * self.num_workers
        self._flushed_high = [-1] * self.num_workers
        self._queued_total = 0
        self._barrier = 0  # local entries currently pending
        #: Observability counters (not part of any simulated metric).
        self.stats = {"dispatched": 0, "accepted": 0, "rejected": 0, "cascades": 0, "local": 0}

    # ------------------------------------------------------------------
    # Shard topology
    # ------------------------------------------------------------------
    def worker_of(self, partition_id: int) -> int:
        """Contiguous range sharding: partition → owning worker."""
        return partition_id * self.num_workers // self.sim._num_partitions

    def shard_partitions(self, worker: int) -> tuple[int, ...]:
        return tuple(
            p
            for p in range(self.sim._num_partitions)
            if self.worker_of(p) == worker
        )

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Fork the worker pool (lazily, at the first dispatch).

        Dispatch eligibility requires an empty pipeline barrier, so at
        first-dispatch time every earlier transaction has been folded and
        the coordinator database is a consistent snapshot for the
        copy-on-write fork.
        """
        if self._started:
            return
        if "fork" not in multiprocessing.get_all_start_methods():
            raise SessionError(
                "execution_backend='sharded' requires the 'fork' process "
                "start method, which this platform does not provide"
            )
        sim = self.sim
        ctx = multiprocessing.get_context("fork")
        for worker in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=worker_main,
                args=(
                    child_conn,
                    sim.coordinator.engine.catalog,
                    sim.database,
                    self.shard_partitions(worker),
                ),
                daemon=True,
                name=f"repro-shard-{worker}",
            )
            process.start()
            child_conn.close()
            self._procs.append(process)
            self._conns.append(parent_conn)
        self._started = True

    def shutdown(self) -> None:
        """Stop the worker pool (idempotent)."""
        if not self._started:
            return
        for conn in self._conns:
            try:
                conn.send((MSG_QUIT,))
            except (BrokenPipeError, OSError):
                pass
        for process in self._procs:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._procs = []
        self._conns = []
        self._started = False
        self._outstanding = [0] * self.num_workers
        self._outbox = [[] for _ in range(self.num_workers)]
        self._inbox = [deque() for _ in range(self.num_workers)]
        self._buffered_high = [-1] * self.num_workers
        self._flushed_high = [-1] * self.num_workers

    # ------------------------------------------------------------------
    # Pipe plumbing (fail loudly on worker death)
    # ------------------------------------------------------------------
    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError) as error:
            raise SessionError(
                f"sharded backend worker {worker} died "
                f"(request pipe closed: {error}); the session must be reopened"
            ) from error

    def _enqueue(self, worker: int, message) -> None:
        """Buffer an ordered submessage; flush once the batch is full."""
        outbox = self._outbox[worker]
        outbox.append(message)
        if len(outbox) >= self.FLUSH_BATCH:
            self._flush(worker)

    def _flush(self, worker: int) -> None:
        outbox = self._outbox[worker]
        if outbox:
            self._outbox[worker] = []
            self._flushed_high[worker] = self._buffered_high[worker]
            self._send(worker, (MSG_BATCH, outbox))

    def _recv(self, worker: int):
        conn = self._conns[worker]
        process = self._procs[worker]
        while not conn.poll(0.05):
            if not process.is_alive():
                raise SessionError(
                    f"sharded backend worker {worker} died unexpectedly "
                    f"(exit code {process.exitcode}); the session must be "
                    "reopened"
                )
        try:
            return conn.recv()
        except (EOFError, OSError) as error:
            raise SessionError(
                f"sharded backend worker {worker} died mid-report "
                f"({error!r}); the session must be reopened"
            ) from error

    def _recv_report(self, entry: _Entry):
        worker = entry.worker
        inbox = self._inbox[worker]
        while not inbox:
            if entry.did > self._flushed_high[worker]:
                # The dispatch we are waiting on is still buffered.
                self._flush(worker)
            message = self._recv(worker)
            if message[0] != MSG_REPORT:
                raise SessionError(
                    "sharded backend protocol error: expected report "
                    f"batch, got {message[:2]!r}"
                )
            inbox.extend(message[1])
        report = inbox.popleft()
        tag = report[0]
        if tag == REPORT_ERR:
            raise SessionError(
                f"sharded backend worker {worker} failed executing "
                f"{entry.request.procedure}: {report[2]}"
            )
        if tag != REPORT_OK or report[1] != entry.did:
            raise SessionError(
                "sharded backend protocol error: expected report for "
                f"dispatch {entry.did}, got {report[:2]!r}"
            )
        return report

    # ------------------------------------------------------------------
    # Speculation and dispatch
    # ------------------------------------------------------------------
    def _speculate(self, request):
        """Predict the authoritative plan without touching any state.

        Only estimate-cache hits are predictable (the cached decision *is*
        what ``plan_initial`` will produce as long as the cache entry
        survives until fold time — and the fold verifies that).  Only
        single-partition plans whose lock set is exactly the home
        partition are dispatched: their execution cannot touch another
        shard, and their run-time monitor provably cannot abort the walk.
        """
        strategy = self._houdini
        if strategy is None:
            return None
        plan = strategy.houdini.plan_speculative(request)
        if plan is None:
            return None
        locked = plan.locked_partitions
        if (
            locked is None
            or len(locked.partitions) != 1
            or locked.partitions[0] != plan.base_partition
        ):
            return None
        return plan

    def _dispatch(self, entry: _Entry) -> None:
        if not self._started:
            self.start()
        worker = entry.worker
        entry.kind = _INFLIGHT
        self.stats["dispatched"] += 1
        self._outstanding[worker] += 1
        self._buffered_high[worker] = entry.did
        self._enqueue(
            worker,
            (
                SUB_DISPATCH,
                entry.did,
                entry.request,
                entry.spec.base_partition,
                entry.spec.locked_partitions,
                self._watermark,
            ),
        )

    def _admit(self, entry: _Entry) -> None:
        """Classify a freshly popped entry and dispatch it if possible."""
        plan = self._speculate(entry.request)
        if plan is None:
            entry.kind = _LOCAL
            self._barrier += 1
            return
        entry.spec = plan
        worker = self.worker_of(plan.base_partition)
        entry.worker = worker
        if (
            self._barrier
            or self._queued_total
            or self._outstanding[worker] >= self.MAX_PER_WORKER
        ):
            # Order constraints: a pending local execution bars every
            # later dispatch (it may change state the dispatch would
            # read), and dispatches must leave strictly in submission
            # order — in-flight dispatches always form a contiguous
            # prefix of the pipeline.  That prefix invariant is what
            # makes a write broadcast during a fold reach every worker
            # *before* any dispatch popped after it (both travel the same
            # ordered per-worker stream), and what lets a cascade treat
            # ``boundary`` as covering the whole in-flight set.
            entry.kind = _DEFERRED
            self._queued_total += 1
        else:
            self._dispatch(entry)

    def _release_deferred(self) -> None:
        """Dispatch deferred entries freed up by the fold that just ran.

        Walks the pipeline front to back and stops at the first entry it
        cannot dispatch (a local execution, or a worker at capacity) to
        preserve the contiguous-prefix invariant — see :meth:`_admit`.
        """
        if not self._queued_total:
            return
        for entry in self._pending:
            kind = entry.kind
            if kind == _INFLIGHT:
                continue
            if (
                kind == _LOCAL
                or self._outstanding[entry.worker] >= self.MAX_PER_WORKER
            ):
                break
            self._queued_total -= 1
            self._dispatch(entry)

    # ------------------------------------------------------------------
    # Folding results back into the simulated timeline
    # ------------------------------------------------------------------
    def _broadcast(self, ops) -> None:
        """Queue a write-effect stream for every worker that needs it.

        Ops are pre-filtered per shard (op index 2 is the partition id),
        so a worker whose shard the transaction never touched — the
        common case for a single-partition write — receives nothing.
        """
        if not ops or not self._started:
            return
        if self.num_workers == 1:
            self._enqueue(0, (SUB_EFFECTS, ops))
            return
        shard_ops: list[list | None] = [None] * self.num_workers
        for op in ops:
            worker = self.worker_of(op[2])
            if shard_ops[worker] is None:
                shard_ops[worker] = []
            shard_ops[worker].append(op)
        for worker, ops_for_worker in enumerate(shard_ops):
            if ops_for_worker is not None:
                self._enqueue(worker, (SUB_EFFECTS, ops_for_worker))

    def _execute_capturing(self, request):
        """Execute locally on the coordinator, returning (record, ops)."""
        sim = self.sim
        engine = _CapturingEngine(sim.coordinator.engine)
        record = sim.coordinator.execute_transaction(request, engine=engine)
        return record, engine.ops

    def execute_local(self, request: ProcedureRequest):
        """Coordinator-local execution used by the general event loop.

        Once workers exist, *every* transaction executed outside the fold
        pipeline must broadcast its writes to them, or their database
        copies would silently rot.
        """
        if not self._started:
            return self.sim.coordinator.execute_transaction(request)
        record, ops = self._execute_capturing(request)
        self._broadcast(ops)
        return record

    def _cascade(self, boundary: int, local_ops) -> None:
        """Unwind speculative state from ``boundary`` on and resync.

        Every in-flight dispatch (all have ``did >= boundary``: dispatch
        ids are assigned in submission order and folds run in submission
        order) executed against worker state that the triggering fold just
        invalidated, so all of them are discarded and re-dispatched.  The
        drain-until-ack consumes their stale reports; the pipe is FIFO, so
        every report a worker sent precedes its rollback ack.
        """
        self.stats["cascades"] += 1
        for worker in range(self.num_workers):
            # Still-buffered dispatches never reached the worker; their
            # entries are re-queued below, so just drop the messages.
            # Buffered write replays stay: they are authoritative state
            # from already-folded transactions, and no rolled-back
            # dispatch on this worker can have executed after them (a
            # dispatch is only ever flushed after every replay buffered
            # before it), so replay-then-rollback ordering is safe.
            outbox = self._outbox[worker]
            if outbox:
                self._outbox[worker] = [m for m in outbox if m[0] != SUB_DISPATCH]
                self._flush(worker)
            # Re-dispatches reuse the dids just discarded, so the flush
            # high-water marks must not claim to cover them anymore.
            self._buffered_high[worker] = -1
            self._flushed_high[worker] = -1
            self._send(worker, (MSG_ROLLBACK, boundary))
        for worker in range(self.num_workers):
            # Reports already received, and any still in the pipe before
            # the ack, all belong to discarded dispatches.
            self._inbox[worker].clear()
            while True:
                message = self._recv(worker)
                tag = message[0]
                if tag == MSG_ROLLBACK_ACK and message[1] == boundary:
                    break
                if tag != MSG_REPORT:
                    raise SessionError(
                        "sharded backend protocol error during rollback "
                        f"cascade: got {message[:2]!r}"
                    )
                for report in message[1]:
                    if report[0] == REPORT_ERR:
                        raise SessionError(
                            f"sharded backend worker {worker} failed "
                            f"during rollback cascade: {report[2]}"
                        )
        self._outstanding = [0] * self.num_workers
        for entry in self._pending:
            if entry.kind == _INFLIGHT:
                entry.kind = _DEFERRED
                self._queued_total += 1
        self._broadcast(local_ops)

    def _fold_dispatched(self, entry: _Entry):
        report = self._recv_report(entry)
        self._outstanding[entry.worker] -= 1
        sim = self.sim
        fold = _FoldEngine(self, entry, report)
        record = sim.coordinator.execute_transaction(entry.request, engine=fold)
        if fold.accepted:
            self.stats["accepted"] += 1
            if len(record.attempts) == 1:
                # Clean speculative success — the overwhelmingly common
                # case: nothing to unwind, workers may GC up to here.
                self._watermark = entry.did
            else:
                # Attempt 0 stands, but local restart attempts changed
                # state behind every in-flight dispatch.
                self._cascade(entry.did + 1, fold.local_ops)
                self._watermark = entry.did
        else:
            # Speculation rejected: unwind the worker's execution of this
            # very dispatch too, then resync with the authoritative ops.
            self.stats["rejected"] += 1
            self._cascade(entry.did, fold.local_ops)
        return record

    def _fold_one(self) -> None:
        sim = self.sim
        entry = self._pending.pop(0)
        # Folds replay in submission order, so pinning the transaction clock
        # to the entry's pop time reproduces the inline backend's clock
        # exactly (inline executes at pop).
        sim._txn_clock = entry.pop_time
        if entry.kind == _INFLIGHT:
            record = self._fold_dispatched(entry)
        else:
            if entry.kind == _DEFERRED:
                self._queued_total -= 1
            else:
                self._barrier -= 1
            self.stats["local"] += 1
            if self._started:
                record, ops = self._execute_capturing(entry.request)
                self._broadcast(ops)
            else:
                record = sim.coordinator.execute_transaction(entry.request)
        end = sim._replay_timing(
            record, entry.pop_time, sim._partition_free, sim._breakdown_acc
        )
        sim._latencies.append(end - entry.pop_time)
        sim._account_record(record, sim._counters)
        heappush(
            sim._events,
            (
                end + sim.config.client_think_time_ms,
                CLIENT_READY,
                entry.client_id,
                (end, record.committed),
            ),
        )
        self._release_deferred()

    # ------------------------------------------------------------------
    # The pipelined fast loop
    # ------------------------------------------------------------------
    def run_fast(self, limit: float = _INF) -> None:
        """Fast-path event loop with dispatch/fold pipelining.

        Replicates :meth:`ClusterSimulator._run_fast` exactly, except that
        between popping an arrival and folding its result, later arrivals
        may be popped and dispatched.  The pop-ahead horizon is
        ``planning_ms + setup_ms``: an arrival is only popped early if its
        event time still precedes the oldest unfolded transaction's
        earliest possible completion, which keeps the pop sequence
        identical to the inline interleaving of arrivals and completions
        (every transaction's simulated duration is at least the horizon).
        """
        sim = self.sim
        events = sim._events
        completions = sim._completions
        parked = sim._parked
        num_nodes = sim._num_nodes
        budget = sim._budget
        submitted = sim._submitted
        now = sim._now
        scheduler_submit = sim.scheduler.submit
        scheduler_pop = sim.scheduler.pop
        record_zero_wait = sim.scheduler.record_zero_wait
        next_request = sim.generator.next_request
        horizon = sim.cost_model.planning_ms + sim.cost_model.setup_ms
        pending = self._pending
        processed = 0
        while True:
            if (
                events
                and processed < limit
                and (
                    not pending
                    or (
                        len(pending) < self.MAX_PIPELINE
                        and events[0][0] < pending[0].pop_time + horizon
                    )
                )
            ):
                processed += 1
                now, _, client_id, payload = heappop(events)
                if payload is not None:
                    completions.append(payload)
                if submitted >= budget:
                    parked.append((now, client_id))
                    continue
                submitted += 1
                raw = next_request()
                request = ProcedureRequest(
                    raw.procedure, raw.parameters, client_id, client_id % num_nodes
                )
                pend = scheduler_submit(request)
                pend.submit_time_ms = now
                pend = scheduler_pop()
                record_zero_wait(pend.request.procedure)
                entry = _Entry(now, pend.request, pend.request.client_id, self._seq)
                self._seq += 1
                self._admit(entry)
                pending.append(entry)
            elif pending:
                self._fold_one()
            else:
                break
        # A step/limit boundary must not leave unfolded work behind: the
        # caller may inspect metrics (or switch to the general loop) next.
        while pending:
            self._fold_one()
        sim._submitted = submitted
        sim._now = now


class _CapturingEngine:
    """Engine proxy that records every attempt's write effects."""

    __slots__ = ("engine", "ops")

    def __init__(self, engine) -> None:
        self.engine = engine
        self.ops: list[tuple] = []

    def execute_attempt(self, request, **kwargs):
        log = CapturingUndoLog(enabled=kwargs.get("undo_enabled", True))
        result = self.engine.execute_attempt(request, undo_log=log, **kwargs)
        self.ops.extend(log.effects)
        return result


class _ValidatingContext:
    """Minimal stand-in for :class:`TransactionContext` during a fold walk.

    The run-time monitor only reads ``base_partition`` and
    ``locked_partitions`` and calls ``disable_undo_logging`` /
    ``mark_partition_finished``; this records those calls so the fold can
    derive what the monitor *would have done* to a live context.
    """

    __slots__ = ("base_partition", "locked_partitions", "finished")

    def __init__(self, base_partition, locked_partitions) -> None:
        self.base_partition = base_partition
        self.locked_partitions = locked_partitions
        self.finished: set[int] = set()

    def disable_undo_logging(self) -> None:
        pass  # the monitor's own stats record the disable point

    def mark_partition_finished(self, partition_id) -> None:
        self.finished.add(partition_id)


class _FoldEngine:
    """Engine proxy the coordinator hands to ``execute_transaction`` when
    folding a dispatched result.

    The first ``execute_attempt`` call tries to *accept* the worker's
    speculative execution: verify the authoritative plan matches the
    dispatched one, replay the plan's monitor over the worker's invocation
    stream, apply the worker's writes to the coordinator database, and
    return a (possibly patched) copy of the worker's result.  Any
    divergence falls back to local execution — with a fresh monitor clone
    when the original already consumed part of the stream.  Restart
    attempts always execute locally.
    """

    __slots__ = ("backend", "entry", "report", "local_ops", "accepted", "_first", "_walked", "_runtime")

    def __init__(self, backend: ShardedBackend, entry: _Entry, report) -> None:
        self.backend = backend
        self.entry = entry
        self.report = report
        self.local_ops: list[tuple] = []
        self.accepted = False
        self._first = True
        self._walked = False
        self._runtime = None

    def execute_attempt(self, request, **kwargs):
        if self._first:
            self._first = False
            result = self._try_accept(kwargs)
            if result is not None:
                self.accepted = True
                return result
            if self._walked:
                kwargs = dict(kwargs)
                kwargs["listeners"] = self._swap_runtime(
                    kwargs.get("listeners", ()), kwargs.get("undo_enabled", True)
                )
        log = CapturingUndoLog(enabled=kwargs.get("undo_enabled", True))
        result = self.backend.sim.coordinator.engine.execute_attempt(
            request, undo_log=log, **kwargs
        )
        self.local_ops.extend(log.effects)
        return result

    # ------------------------------------------------------------------
    def _try_accept(self, kwargs):
        spec = self.entry.spec
        base = kwargs.get("base_partition", 0)
        locked = kwargs.get("locked_partitions")
        undo_enabled = kwargs.get("undo_enabled", True)
        if (
            base != spec.base_partition
            or locked != spec.locked_partitions
            or undo_enabled != spec.undo_logging
        ):
            # The authoritative plan diverged from the speculation (cache
            # entry evicted/replaced between pop and fold).  The monitor
            # has not been walked yet, so the local re-execution can use
            # the original listeners untouched.
            return None
        _tag, _did, result, effects, op_counts = self.report
        listeners = kwargs.get("listeners", ())
        context = _ValidatingContext(base, locked)
        runtime = None
        if listeners:
            # Replay the run-time monitor (OP3/OP4 bookkeeping + model
            # learning) over the worker's invocation stream, exactly as it
            # would have observed a local execution.
            self._walked = True
            runtime = listeners[0]
            self._runtime = runtime
            try:
                for invocation in result.invocations:
                    for listener in listeners:
                        listener(context, invocation)
            except MispredictionAbort:
                # The monitor would have aborted the attempt mid-stream
                # (cannot happen for a singleton lock set, but kept as a
                # defensive rejection rather than an assertion).
                return None
        disabled_from = None
        if not undo_enabled:
            disabled_from = 0
        elif runtime is not None and runtime.stats.undo_disabled_at_query is not None:
            disabled_from = runtime.stats.undo_disabled_at_query
        if disabled_from is not None and not result.committed:
            # Inline, the attempt would have run (at least partly) without
            # undo logging, and it did not commit: the inline engine's
            # behaviour then differs from the worker's always-logged run
            # (lock escalation instead of abort, or an unrecoverable
            # rollback).  Reject and reproduce it locally.
            return None
        # Accepted: the worker executed exactly what the inline engine
        # would have.  Apply its writes and patch the undo accounting to
        # what an OP3-disabled execution would have reported.
        apply_ops(self.backend.sim.database, effects)
        patch = {}
        if disabled_from is not None:
            written = op_counts[disabled_from - 1] if disabled_from >= 1 else 0
            patch["undo_records_written"] = written
            patch["undo_records_skipped"] = len(effects) - written
        finished = frozenset(context.finished)
        if finished != result.finished_partitions:
            patch["finished_partitions"] = finished
        if patch:
            result = dataclasses.replace(result, **patch)
        return result

    def _swap_runtime(self, listeners, undo_enabled):
        """Replace a partially-walked monitor with a fresh clone."""
        runtime = self._runtime
        clone = HoudiniRuntime(
            runtime.model,
            runtime.estimate,
            runtime.config,
            predicted_single_partition=runtime.predicted_single_partition,
            undo_initially_disabled=not undo_enabled,
            learn=runtime.learn,
            footprint=runtime.footprint,
            allow_early_prepare=runtime.allow_early_prepare,
            never_finish=runtime.never_finish,
        )
        self.backend._houdini.replace_current_runtime(clone)
        return tuple(
            clone if listener is runtime else listener for listener in listeners
        )
