"""Pipe-protocol tags shared by the sharded coordinator and its workers.

Both :mod:`repro.sim.backend.sharded` (coordinator side) and
:mod:`repro.sim.backend.worker` (worker side) import these constants, so
the two ends of the pipe agree on every message tag *by construction* —
an inline literal in one peer can silently disagree with the other's.
``repro analyze``'s process-hygiene rule enforces that no speaker module
spells a tag out inline, and that the values below stay pairwise
distinct.

Coordinator -> worker messages::

    (MSG_BATCH, [sub, ...])      batched sub-messages, each one of:
        (SUB_DISPATCH, did, request, base, locked, watermark)
        (SUB_EFFECTS, ops)       remote write effects to apply
    (MSG_ROLLBACK, boundary)     rewind storage to the boundary snapshot
    (MSG_QUIT,)                  drain and exit

Worker -> coordinator messages::

    (MSG_REPORT, [report, ...])  batched per-dispatch reports, each:
        (REPORT_OK, did, result, effects, op_counts)
        (REPORT_ERR, did, message)
    (MSG_ROLLBACK_ACK, boundary) rollback applied through the boundary
"""

from __future__ import annotations

# Coordinator -> worker.
MSG_BATCH = "B"
MSG_ROLLBACK = "r"
MSG_QUIT = "q"

# Sub-messages inside a MSG_BATCH payload.
SUB_DISPATCH = "d"
SUB_EFFECTS = "x"

# Worker -> coordinator.
MSG_REPORT = "R"
MSG_ROLLBACK_ACK = "rb"

# Per-dispatch reports inside a MSG_REPORT payload.
REPORT_OK = "ok"
REPORT_ERR = "err"
