"""Pluggable execution backends for the cluster simulator.

The simulator's event core (clock, scheduler, admission, metrics) always
runs on a single coordinator; what varies is *where transaction logic
executes*:

* ``inline`` — the coordinator executes every transaction in-loop (the
  original behaviour, and the default);
* ``sharded`` — partition stores are sharded across OS worker processes
  and single-partition transactions are dispatched whole to the worker
  owning their home partition, overlapping functional query execution
  across cores while the coordinator folds results back into the
  discrete-event timeline in submission order.

The sharded backend's contract is that **simulated results are
byte-identical to the inline backend under the same seed** — only
wall-clock throughput changes.  See :mod:`repro.sim.backend.sharded` for
how that is enforced.
"""

from .sharded import ShardedBackend

__all__ = ["ShardedBackend"]
