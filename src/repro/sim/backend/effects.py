"""Write-effect capture and replay for the sharded backend.

A transaction executed on a worker process mutates only that worker's
copy of the database; the coordinator (and every other worker) must be
able to replay exactly the same physical writes without re-running the
transaction.  :class:`CapturingUndoLog` makes the statement executor
record one replayable *op* per physical write, and :func:`apply_ops`
replays such a stream against any database copy.

Ops are plain tuples so they pickle cheaply over the worker pipes:

* ``("i", table, partition, row_id, row)`` — insert ``row`` (the full
  post-insert image, including defaults) under a pre-assigned ``row_id``;
* ``("u", table, partition, row_id, assignments)`` — apply the already
  resolved column assignments;
* ``("d", table, partition, row_id)`` — delete the row.

Replaying inserts through :meth:`RowHeap.insert_raw` keeps every copy's
``_next_row_id`` counter in sync with the copy that executed the
transaction, so later organically-executed inserts allocate identical
row ids everywhere.
"""

from __future__ import annotations

from ...errors import UnrecoverableError
from ...storage.undo_log import UndoAction, UndoLog, UndoRecord


class CapturingUndoLog(UndoLog):
    """An undo log that additionally captures replayable write effects.

    Two extensions over the base class:

    * :attr:`effects` is a live list the statement executor appends one op
      to per physical write (see :meth:`repro.engine.executor` ``_write``) —
      including the *inverse* ops appended by :meth:`rollback`, so after an
      aborted attempt the stream still replays to the attempt's net effect
      (zero writes, but with the same transient row-id allocations);
    * :attr:`held_records` preserves the undo records past commit:
      :meth:`clear` moves them aside instead of dropping them, so a worker
      can later unwind an already-committed speculative attempt when the
      coordinator's fold rejects it (or an earlier transaction's outcome
      invalidates it).
    """

    def __init__(self, enabled: bool = True) -> None:
        super().__init__(enabled=enabled)
        self.effects: list[tuple] = []
        self.held_records: list[UndoRecord] = []

    def clear(self) -> None:
        # Commit path: keep the records so the attempt stays unwindable.
        self.held_records = self._records
        self._records = []
        self._skipped = 0

    def rollback(self, store_resolver) -> int:
        """Roll back like the base class, capturing the inverse writes."""
        if self._skipped:
            raise UnrecoverableError(
                f"abort requested but {self._skipped} changes were made"
                " without undo logging"
            )
        effects = self.effects
        undone = 0
        for record in reversed(self._records):
            store = store_resolver(record.partition_id)
            heap = store.heap(record.table)
            if record.action is UndoAction.INSERT:
                heap.delete(record.row_id)
                effects.append(("d", record.table, record.partition_id, record.row_id))
            elif record.action is UndoAction.UPDATE:
                current = heap.row(record.row_id)
                restored = {
                    column: record.before_image[column] for column in current
                }
                heap.update(
                    record.row_id, restored, validate=False, capture_before=False
                )
                effects.append(
                    ("u", record.table, record.partition_id, record.row_id, restored)
                )
            else:  # DELETE
                heap.insert_raw(dict(record.before_image), record.row_id)
                effects.append(
                    (
                        "i",
                        record.table,
                        record.partition_id,
                        record.row_id,
                        dict(record.before_image),
                    )
                )
            undone += 1
        self._records.clear()
        return undone


def apply_ops(database, ops, only_partitions=None) -> None:
    """Replay an effect stream against ``database``.

    ``only_partitions`` restricts replay to a shard (workers ignore writes
    to partitions they do not own); the coordinator replays unfiltered.
    """
    for op in ops:
        partition_id = op[2]
        if only_partitions is not None and partition_id not in only_partitions:
            continue
        heap = database.partition(partition_id).heap(op[1])
        tag = op[0]
        if tag == "u":
            heap.update(op[3], op[4], validate=False, capture_before=False)
        elif tag == "i":
            heap.insert_raw(dict(op[4]), op[3])
        else:  # "d"
            heap.delete(op[3])
