"""Simulation metrics: throughput, latency and the Fig. 11 time breakdown.

The event-driven simulator accumulates these figures in flat per-procedure
arrays while it runs and materializes one :class:`SimulationResult` (plus
its :class:`ProcedureBreakdown` entries) when the run finishes; the classes
here are the stable, introspectable surface the experiments consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean
from typing import TYPE_CHECKING

from .sketch import LatencySketch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..scheduling.admission import AdmissionStats
    from ..scheduling.scheduler import SchedulerStats


@dataclass
class ProcedureBreakdown:
    """Accumulated per-procedure time breakdown (Fig. 11 categories)."""

    procedure: str
    transactions: int = 0
    estimation_ms: float = 0.0
    planning_ms: float = 0.0
    execution_ms: float = 0.0
    coordination_ms: float = 0.0
    other_ms: float = 0.0

    def to_dict(self) -> dict:
        """Stable plain-dict form (see :meth:`SimulationResult.to_dict`)."""
        return {
            "procedure": self.procedure,
            "transactions": self.transactions,
            "estimation_ms": self.estimation_ms,
            "planning_ms": self.planning_ms,
            "execution_ms": self.execution_ms,
            "coordination_ms": self.coordination_ms,
            "other_ms": self.other_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProcedureBreakdown":
        return cls(**data)

    @property
    def total_ms(self) -> float:
        return (
            self.estimation_ms + self.planning_ms + self.execution_ms
            + self.coordination_ms + self.other_ms
        )

    def percentages(self) -> dict[str, float]:
        """Share of each category as percentages (summing to ~100)."""
        total = self.total_ms
        if total <= 0:
            return {k: 0.0 for k in ("estimation", "execution", "planning", "coordination", "other")}
        return {
            "estimation": 100.0 * self.estimation_ms / total,
            "execution": 100.0 * self.execution_ms / total,
            "planning": 100.0 * self.planning_ms / total,
            "coordination": 100.0 * self.coordination_ms / total,
            "other": 100.0 * self.other_ms / total,
        }

    @property
    def average_latency_ms(self) -> float:
        if self.transactions == 0:
            return 0.0
        return self.total_ms / self.transactions


@dataclass
class TenantBreakdown:
    """Per-tenant slice of one simulation (``TenantSource`` sessions).

    Counters cover the tenant's whole stream (no warm-up window): summed
    over every tenant they equal the global counters for traffic that was
    entirely tenant-labeled, and the latency lists concatenate (reordered)
    to the global latency list.  ``duration_ms`` is the parent run's
    simulated duration, so per-tenant throughputs are computed over one
    shared wall clock and therefore sum to the global full-duration rate.
    """

    tenant: str
    submitted: int = 0
    committed: int = 0
    user_aborted: int = 0
    restarts: int = 0
    rejected: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    duration_ms: float = 0.0
    #: Streaming-mode latency summary (``metrics_mode="streaming"``); when
    #: set, ``latencies_ms`` stays empty and latency queries go through it.
    latency_sketch: LatencySketch | None = None

    @property
    def total_transactions(self) -> int:
        return self.committed + self.user_aborted

    @property
    def throughput_txn_per_sec(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return 1000.0 * self.committed / self.duration_ms

    @property
    def average_latency_ms(self) -> float:
        if self.latency_sketch is not None:
            return self.latency_sketch.mean
        if not self.latencies_ms:
            return 0.0
        return mean(self.latencies_ms)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "committed": self.committed,
            "user_aborted": self.user_aborted,
            "restarts": self.restarts,
            "rejected": self.rejected,
            "latencies_ms": list(self.latencies_ms),
            "duration_ms": self.duration_ms,
            "latency_summary": self.latency_sketch.to_dict()
            if self.latency_sketch is not None else None,
            "derived": {
                "throughput_txn_per_sec": self.throughput_txn_per_sec,
                "average_latency_ms": self.average_latency_ms,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantBreakdown":
        fields_ = {
            k: v for k, v in data.items() if k not in ("derived", "latency_summary")
        }
        breakdown = cls(**fields_)
        if data.get("latency_summary") is not None:
            breakdown.latency_sketch = LatencySketch.from_dict(data["latency_summary"])
        return breakdown


@dataclass
class SimulationResult:
    """Outcome of one simulator run."""

    strategy: str
    benchmark: str
    num_partitions: int
    simulated_duration_ms: float
    committed: int = 0
    user_aborted: int = 0
    restarts: int = 0
    escalations: int = 0
    undo_disabled: int = 0
    early_prepared: int = 0
    single_partition: int = 0
    distributed: int = 0
    latencies_ms: list[float] = field(default_factory=list)
    #: How latency/window metrics were accumulated: ``"exact"`` stores
    #: every latency in :attr:`latencies_ms`; ``"streaming"`` keeps an
    #: O(1)-memory :attr:`latency_sketch` instead (scale mode).
    metrics_mode: str = "exact"
    #: Streaming-mode latency summary; ``None`` in exact mode.
    latency_sketch: LatencySketch | None = None
    breakdowns: dict[str, ProcedureBreakdown] = field(default_factory=dict)
    #: Post-warm-up measurement window used for throughput.
    window_committed: int = 0
    window_duration_ms: float = 0.0
    #: Transactions rejected outright by admission control (0 when admission
    #: control is disabled, the default).
    rejected: int = 0
    #: Scheduler / admission activity for the run (filled by the simulator).
    scheduler_stats: "SchedulerStats | None" = None
    admission_stats: "AdmissionStats | None" = None
    #: Per-tenant breakdowns for tenant-labeled traffic (``TenantSource``);
    #: empty for unlabeled workloads.
    tenants: dict[str, TenantBreakdown] = field(default_factory=dict)
    #: Per-procedure §4.5 maintenance counters (transitions_observed,
    #: accuracy_checks, recomputations, last_accuracy); empty for
    #: non-Houdini strategies.
    maintenance: dict[str, dict] = field(default_factory=dict)
    #: Self-tuning loop snapshot (drift/retrain/swap counters and
    #: per-procedure verdicts); ``None`` when self-tuning is not enabled.
    selftune: dict | None = None
    #: Multi-tenant SLO snapshot (per-tenant arrivals/sheds, SLO compliance
    #: and burn rate, quota occupancy, fair-queuing virtual times); ``None``
    #: when tenancy is not enabled.
    tenancy: dict | None = None

    # ------------------------------------------------------------------
    @property
    def total_transactions(self) -> int:
        return self.committed + self.user_aborted

    @property
    def throughput_txn_per_sec(self) -> float:
        committed = self.window_committed or self.committed
        duration = self.window_duration_ms or self.simulated_duration_ms
        if duration <= 0:
            return 0.0
        return 1000.0 * committed / duration

    @property
    def average_latency_ms(self) -> float:
        if self.latency_sketch is not None:
            return self.latency_sketch.mean
        if not self.latencies_ms:
            return 0.0
        return mean(self.latencies_ms)

    def latency_quantile(self, q: float) -> float:
        """Nearest-rank latency quantile for ``q`` in ``[0, 1]``.

        Exact over the stored latencies in exact mode; in streaming mode the
        sketch answers (within its documented error bound, see
        :mod:`repro.sim.sketch`).
        """
        if self.latency_sketch is not None:
            return self.latency_sketch.quantile(q)
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(0, math.ceil(len(ordered) * q) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    @property
    def restart_rate(self) -> float:
        if self.total_transactions == 0:
            return 0.0
        return self.restarts / self.total_transactions

    # ------------------------------------------------------------------
    def breakdown_for(self, procedure: str) -> ProcedureBreakdown:
        breakdown = self.breakdowns.get(procedure)
        if breakdown is None:
            breakdown = ProcedureBreakdown(procedure)
            self.breakdowns[procedure] = breakdown
        return breakdown

    def overall_estimation_share(self) -> float:
        """Average share of transaction time spent estimating (Fig. 11 claim)."""
        total = sum(b.total_ms for b in self.breakdowns.values())
        if total <= 0:
            return 0.0
        estimation = sum(b.estimation_ms for b in self.breakdowns.values())
        return 100.0 * estimation / total

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Stable, JSON-friendly dict form of the full result.

        Contains every accumulated field (latencies, counters, warm-up
        window, per-procedure breakdowns, scheduler/admission stats) plus a
        ``derived`` block of convenience metrics.  :meth:`from_dict` inverts
        it exactly (``derived`` is recomputed, never read back), which is
        what the CLI's ``simulate --json`` output and the benchmark
        baselines rely on instead of ad-hoc field plucking.

        Payload size is bounded by the metrics mode: in exact mode
        ``latencies_ms`` carries every accumulated latency and
        ``latency_summary`` is ``None``; in streaming mode ``latencies_ms``
        is empty and ``latency_summary`` carries the constant-size sketch
        summary instead, so a million-transaction result serializes in a
        few hundred bytes.  Round-trip contract: every counter, window
        field, breakdown and stats block restores exactly in both modes;
        in streaming mode the restored :attr:`latency_sketch` is a frozen
        summary — count/total/min/max and the tracked percentiles
        (p50/p95/p99) survive, raw samples do not (see
        :meth:`~repro.sim.sketch.LatencySketch.from_dict`).
        """
        from dataclasses import asdict

        return {
            "strategy": self.strategy,
            "benchmark": self.benchmark,
            "num_partitions": self.num_partitions,
            "metrics_mode": self.metrics_mode,
            "simulated_duration_ms": self.simulated_duration_ms,
            "committed": self.committed,
            "user_aborted": self.user_aborted,
            "restarts": self.restarts,
            "escalations": self.escalations,
            "undo_disabled": self.undo_disabled,
            "early_prepared": self.early_prepared,
            "single_partition": self.single_partition,
            "distributed": self.distributed,
            "rejected": self.rejected,
            "window_committed": self.window_committed,
            "window_duration_ms": self.window_duration_ms,
            "latencies_ms": list(self.latencies_ms),
            "latency_summary": self.latency_sketch.to_dict()
            if self.latency_sketch is not None else None,
            "breakdowns": {
                name: breakdown.to_dict()
                for name, breakdown in sorted(self.breakdowns.items())
            },
            "scheduler_stats": asdict(self.scheduler_stats)
            if self.scheduler_stats is not None else None,
            "admission_stats": asdict(self.admission_stats)
            if self.admission_stats is not None else None,
            "tenants": {
                name: breakdown.to_dict()
                for name, breakdown in sorted(self.tenants.items())
            },
            "maintenance": {
                name: dict(entry)
                for name, entry in sorted(self.maintenance.items())
            },
            "selftune": self.selftune,
            "tenancy": self.tenancy,
            "derived": {
                "throughput_txn_per_sec": self.throughput_txn_per_sec,
                "average_latency_ms": self.average_latency_ms,
                "restart_rate": self.restart_rate,
                "estimation_share_pct": self.overall_estimation_share(),
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (baseline replay)."""
        from ..scheduling.admission import AdmissionStats
        from ..scheduling.scheduler import SchedulerStats

        result = cls(
            strategy=data["strategy"],
            benchmark=data["benchmark"],
            num_partitions=data["num_partitions"],
            simulated_duration_ms=data["simulated_duration_ms"],
            # Documents predating the scale mode are always exact.
            metrics_mode=data.get("metrics_mode", "exact"),
        )
        for name in (
            "committed", "user_aborted", "restarts", "escalations",
            "undo_disabled", "early_prepared", "single_partition",
            "distributed", "rejected", "window_committed", "window_duration_ms",
        ):
            setattr(result, name, data[name])
        result.latencies_ms = list(data["latencies_ms"])
        if data.get("latency_summary") is not None:
            result.latency_sketch = LatencySketch.from_dict(data["latency_summary"])
        result.breakdowns = {
            name: ProcedureBreakdown.from_dict(entry)
            for name, entry in data["breakdowns"].items()
        }
        if data.get("scheduler_stats") is not None:
            result.scheduler_stats = SchedulerStats(**data["scheduler_stats"])
        if data.get("admission_stats") is not None:
            result.admission_stats = AdmissionStats(**data["admission_stats"])
        result.tenants = {
            name: TenantBreakdown.from_dict(entry)
            for name, entry in data.get("tenants", {}).items()
        }
        result.maintenance = {
            name: dict(entry)
            for name, entry in data.get("maintenance", {}).items()
        }
        result.selftune = data.get("selftune")
        result.tenancy = data.get("tenancy")
        return result

    def summary_row(self) -> dict:
        row = {
            "strategy": self.strategy,
            "benchmark": self.benchmark,
            "partitions": self.num_partitions,
            "throughput_txn_s": round(self.throughput_txn_per_sec, 1),
            "avg_latency_ms": round(self.average_latency_ms, 3),
            "committed": self.committed,
            "restarts": self.restarts,
            "restart_rate": round(self.restart_rate, 4),
            "undo_disabled": self.undo_disabled,
            "early_prepared": self.early_prepared,
            "estimation_share_pct": round(self.overall_estimation_share(), 2),
        }
        if self.scheduler_stats is not None:
            row["max_queue_wait_ms"] = round(self.scheduler_stats.max_queue_wait_ms, 3)
        if self.tenants:
            row["tenants"] = {
                name: round(breakdown.throughput_txn_per_sec, 1)
                for name, breakdown in sorted(self.tenants.items())
            }
        if self.selftune is not None:
            row["selftune_swaps"] = self.selftune.get("swaps", 0)
        if self.tenancy is not None:
            row["shed"] = sum(
                entry["shed"] for entry in self.tenancy.get("arrivals", {}).values()
            )
        return row

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SimulationResult {self.benchmark}/{self.strategy} P={self.num_partitions} "
            f"{self.throughput_txn_per_sec:.0f} txn/s>"
        )
