"""Cluster simulator: a discrete-event runtime over a cost model.

The package has four pieces:

* :mod:`~repro.sim.events` — the event vocabulary.  The run loop is a single
  binary heap of ``(time, kind, tiebreak, payload)`` entries with three
  kinds: ``CLIENT_READY`` (a closed-loop client submits its next request to
  the node scheduler), ``TXN_COMPLETE`` (an in-flight transaction reached
  its simulated end: admission capacity is released and the completion is
  recorded — the completion stream is therefore produced already ordered by
  end time) and ``PARTITION_RELEASE`` (a partition's busy window ended,
  waking partition-blocked dispatches).  Kind codes double as
  same-timestamp priorities.
* :class:`~repro.sim.simulator.ClusterSimulator` — the closed-loop driver,
  an incrementally steppable event core: ``begin()`` initializes the heap
  and accumulators on the instance, ``inject()``/``submit_request()`` push
  events, ``step()``/``run_until()`` process them, ``extend_budget()``
  grants closed-loop submissions and ``snapshot()`` materializes windowed
  metrics on demand.  ``run()`` remains the one-shot batch entry point, and
  :class:`repro.session.ClusterSession` is the long-lived façade.  Every
  submission is routed through a
  :class:`~repro.scheduling.scheduler.TransactionScheduler`; under the
  default FCFS policy the runtime reproduces the legacy greedy driver's
  results exactly (held by ``tests/sim/test_event_runtime.py``), while
  prediction-aware policies and admission control run inside the same loop.
* :class:`~repro.sim.cost_model.CostModel` — simulated-time constants plus
  the per-(procedure, plan-shape) *cost-schedule cache*: everything except a
  plan's estimation overhead depends only on the attempt's shape (base
  partition, lock set, invocation partition sequence, undo count, commit
  flag, early-prepared partitions), so it is derived once per shape.
  Invalidation contract: cached schedules bake in the model's constants —
  call :meth:`~repro.sim.cost_model.CostModel.clear_schedule_cache` after
  mutating any constant on a live instance (the ablation benchmarks build a
  fresh ``CostModel`` per configuration instead).  Workloads whose shapes
  are near-unique bypass the cache automatically after a probation window.
* :class:`~repro.sim.metrics.SimulationResult` — metrics, accumulated in
  flat arrays during the run and materialized once at the end.  Under
  ``metrics_mode="streaming"`` the unbounded accumulators are replaced by
  the O(1)-memory sketches in :mod:`~repro.sim.sketch`
  (:class:`~repro.sim.sketch.LatencySketch`,
  :class:`~repro.sim.sketch.CompletionWindow`) — the million-user scale
  mode; exact mode stays the default and byte-identical.
"""

from .cost_model import AttemptTiming, CostModel
from .events import CLIENT_READY, EXTERNAL_SUBMIT, PARTITION_RELEASE, TXN_COMPLETE
from .metrics import ProcedureBreakdown, SimulationResult, TenantBreakdown
from .simulator import ClusterSimulator, InFlightTransaction, SimulatorConfig
from .sketch import CompletionWindow, LatencySketch

__all__ = [
    "CostModel",
    "AttemptTiming",
    "ClusterSimulator",
    "SimulatorConfig",
    "SimulationResult",
    "ProcedureBreakdown",
    "TenantBreakdown",
    "LatencySketch",
    "CompletionWindow",
    "InFlightTransaction",
    "CLIENT_READY",
    "TXN_COMPLETE",
    "PARTITION_RELEASE",
    "EXTERNAL_SUBMIT",
]
