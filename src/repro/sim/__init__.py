"""Cluster simulator: cost model, closed-loop driver, metrics."""

from .cost_model import AttemptTiming, CostModel
from .metrics import ProcedureBreakdown, SimulationResult
from .simulator import ClusterSimulator, SimulatorConfig

__all__ = [
    "CostModel",
    "AttemptTiming",
    "ClusterSimulator",
    "SimulatorConfig",
    "SimulationResult",
    "ProcedureBreakdown",
]
