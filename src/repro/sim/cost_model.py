"""Cost model for the cluster simulator.

The paper's throughput numbers come from a real H-Store deployment; this
reproduction replaces the testbed with a deterministic cost model expressed
in simulated milliseconds.  The constants are calibrated so that the
*relationships* the paper depends on hold:

* a single-partition transaction is dominated by its query work,
* remote queries pay a network round-trip,
* a distributed transaction pays two-phase-commit coordination unless the
  early-prepare (OP4) optimization removed the explicit prepare round,
* undo-log maintenance adds a small per-record cost that OP3 removes,
* estimation overhead (Houdini) is charged per transaction.

Every constant can be overridden, and the ablation benchmark
``benchmarks/bench_ablation_costmodel.py`` sweeps the most influential ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.engine import AttemptResult
from ..txn.plan import ExecutionPlan
from ..types import PartitionId, PartitionSet


@dataclass
class CostModel:
    """Simulated-time constants (all in milliseconds)."""

    #: CPU cost of executing one query at the partition running the control code.
    query_local_ms: float = 0.20
    #: Additional cost of dispatching a query to a remote partition
    #: (serialization + network round trip).
    query_remote_ms: float = 0.90
    #: Per-partition execution cost of a broadcast query (charged at every
    #: partition it touches, beyond the dispatch cost above).
    broadcast_per_partition_ms: float = 0.10
    #: Cost of writing one undo-log record (what OP3 saves).
    undo_record_ms: float = 0.040
    #: One round of the two-phase-commit prepare exchange (coordinator to all
    #: remaining participants, in parallel).
    two_phase_prepare_ms: float = 1.20
    #: The commit/acknowledge round of two-phase commit.
    two_phase_commit_ms: float = 0.80
    #: Per-transaction planning cost (query plan lookup, routing).
    planning_ms: float = 0.20
    #: Per-transaction setup/miscellaneous cost ("other" in Fig. 11).
    setup_ms: float = 0.30
    #: Cost of aborting an attempt (rolling back, notifying the client).
    abort_ms: float = 0.30
    #: Cost of redirecting a restarted transaction to a different node.
    redirect_ms: float = 1.00
    #: Extra coordination paid per transaction when it locks partitions it
    #: never uses (resources held idle; keeps "lock everything" honest).
    unused_lock_ms: float = 0.05

    #: Cost-schedule cache, keyed by (procedure-independent) *plan shape* —
    #: base partition, lock set, the sequence of per-invocation partition
    #: sets, undo records, commit flag and early-prepared partitions — the
    #: same normalization the compiled estimator uses for its footprints.
    #: Cached values bake in the model's constants, so assigning any
    #: ``*_ms`` constant on a live instance clears the cache automatically
    #: (see :meth:`__setattr__`); :meth:`clear_schedule_cache` remains for
    #: callers that mutate state some other way.
    _schedule_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    #: Adaptive bypass: workloads whose plan shapes are near-unique (e.g.
    #: TPC-C NewOrder item arrays) would pay key construction on every call
    #: and hit never; after a probation window with a poor hit rate the
    #: cache stops being consulted.
    _cache_checks: int = field(default=0, init=False, repr=False, compare=False)
    _cache_hits: int = field(default=0, init=False, repr=False, compare=False)
    _cache_bypassed: bool = field(default=False, init=False, repr=False, compare=False)

    #: Probation length and minimum hit rate for the schedule cache.
    _CACHE_PROBATION = 512
    _CACHE_MIN_HIT_RATE = 0.25

    def __setattr__(self, name: str, value) -> None:
        """Assigning a ``*_ms`` constant invalidates every cached schedule.

        Cached schedules bake the constants in, so a mutated live instance
        must not keep serving them.  During ``__init__`` the cache does not
        exist yet (the constants are assigned first), so construction skips
        the guard; the bypass probation is also restarted because its hit
        statistics described the old constants.
        """
        object.__setattr__(self, name, value)
        if name.endswith("_ms") and "_schedule_cache" in self.__dict__:
            self.clear_schedule_cache()

    def clear_schedule_cache(self) -> None:
        """Drop cached cost schedules (automatic on ``*_ms`` assignment)."""
        self._schedule_cache.clear()
        self._cache_checks = 0
        self._cache_hits = 0
        self._cache_bypassed = False

    # ------------------------------------------------------------------
    def query_cost(self, partitions, base_partition: PartitionId) -> float:
        """Simulated cost of one query given the partitions it touches."""
        if type(partitions) is PartitionSet:
            partition_list = partitions.partitions
        else:
            partition_list = tuple(partitions)
        if not partition_list:
            return self.query_local_ms
        cost = 0.0
        local = False
        remote = 0
        for partition_id in partition_list:
            if partition_id == base_partition:
                local = True
            else:
                remote += 1
        if local:
            cost += self.query_local_ms
        if remote:
            cost += self.query_remote_ms
            cost += self.broadcast_per_partition_ms * (remote - 1)
        return cost

    # ------------------------------------------------------------------
    def attempt_timing(
        self,
        plan: ExecutionPlan,
        attempt: AttemptResult,
        num_partitions: int,
    ) -> "AttemptTiming":
        """Break one execution attempt down into simulated time components.

        Everything except the plan's estimation overhead depends only on the
        attempt's *shape*; that part is computed once per shape and cached,
        so a saturated simulation run pays the full derivation only for the
        first transaction of each (procedure, plan-shape) class.
        """
        lock_set = plan.lock_set(num_partitions)
        if self._cache_bypassed:
            schedule = self._compute_schedule(plan.base_partition, lock_set, attempt)
        else:
            key = (
                plan.base_partition,
                lock_set,
                tuple(invocation.partitions for invocation in attempt.invocations),
                attempt.undo_records_written,
                attempt.committed,
                attempt.finished_partitions,
            )
            schedule = self._schedule_cache.get(key)
            self._cache_checks += 1
            if schedule is None:
                schedule = self._compute_schedule(plan.base_partition, lock_set, attempt)
                self._schedule_cache[key] = schedule
                if (
                    self._cache_checks >= self._CACHE_PROBATION
                    and self._cache_hits < self._cache_checks * self._CACHE_MIN_HIT_RATE
                ):
                    self._cache_bypassed = True
                    self._schedule_cache.clear()
            else:
                self._cache_hits += 1
        return self._timing_from(schedule, plan.estimation_ms)

    def attempt_timings(
        self,
        pairs,
        num_partitions: int,
    ) -> list["AttemptTiming"]:
        """Timings for every ``(plan, attempt)`` pair of one transaction.

        Restarted transactions often repeat the same plan shape (a fully
        distributed retry re-executes the same invocation sequence), so the
        shape key is built and the schedule cache probed **once per distinct
        shape per transaction** instead of once per attempt; repeated shapes
        reuse the schedule via a tiny per-transaction memo.  Field-identical
        to calling :meth:`attempt_timing` per pair (the cache stores the
        same schedules either way; only probe counts differ, and those only
        steer the wall-clock bypass heuristic, never a simulated value).
        """
        if self._cache_bypassed:
            return [
                self._timing_from(
                    self._compute_schedule(
                        plan.base_partition, plan.lock_set(num_partitions), attempt
                    ),
                    plan.estimation_ms,
                )
                for plan, attempt in pairs
            ]
        memo: dict = {}
        timings = []
        for plan, attempt in pairs:
            lock_set = plan.lock_set(num_partitions)
            key = (
                plan.base_partition,
                lock_set,
                tuple(invocation.partitions for invocation in attempt.invocations),
                attempt.undo_records_written,
                attempt.committed,
                attempt.finished_partitions,
            )
            schedule = memo.get(key)
            if schedule is None:
                schedule = self._schedule_cache.get(key)
                self._cache_checks += 1
                if schedule is None:
                    schedule = self._compute_schedule(
                        plan.base_partition, lock_set, attempt
                    )
                    self._schedule_cache[key] = schedule
                    if (
                        self._cache_checks >= self._CACHE_PROBATION
                        and self._cache_hits
                        < self._cache_checks * self._CACHE_MIN_HIT_RATE
                    ):
                        self._cache_bypassed = True
                        self._schedule_cache.clear()
                else:
                    self._cache_hits += 1
                memo[key] = schedule
            timings.append(self._timing_from(schedule, plan.estimation_ms))
        return timings

    def _timing_from(self, schedule, estimation_ms: float) -> "AttemptTiming":
        """Attach a plan's estimation cost to a shape-derived schedule."""
        execution_ms, coordination_ms, base_total_ms, release_plan = schedule
        total_ms = base_total_ms + estimation_ms
        release_offsets: dict[PartitionId, float] = {}
        for partition_id, early_release in release_plan:
            if early_release is None:
                release_offsets[partition_id] = total_ms
            else:
                release_offsets[partition_id] = min(early_release, total_ms)
        return AttemptTiming(
            estimation_ms=estimation_ms,
            planning_ms=self.planning_ms,
            execution_ms=execution_ms,
            coordination_ms=coordination_ms,
            setup_ms=self.setup_ms,
            total_ms=total_ms,
            release_offsets=release_offsets,
        )

    def _compute_schedule(
        self,
        base: PartitionId,
        lock_set,
        attempt: AttemptResult,
    ) -> tuple[float, float, float, tuple]:
        """Derive the estimation-independent cost schedule of one shape."""
        execution_ms = 0.0
        per_partition_last_use: dict[PartitionId, float] = {}
        elapsed = 0.0
        for invocation in attempt.invocations:
            cost = self.query_cost(invocation.partitions, base)
            elapsed += cost
            execution_ms += cost
            for partition_id in invocation.partitions.partitions:
                per_partition_last_use[partition_id] = elapsed
        undo_ms = self.undo_record_ms * attempt.undo_records_written
        execution_ms += undo_ms

        distributed = len(lock_set) > 1
        coordination_ms = 0.0
        if distributed and attempt.committed:
            remote_participants = [p for p in lock_set if p != base]
            explicit = [
                p for p in remote_participants if p not in attempt.finished_partitions
            ]
            if explicit:
                coordination_ms += self.two_phase_prepare_ms
            coordination_ms += self.two_phase_commit_ms
        unused = [p for p in lock_set if p not in per_partition_last_use]
        coordination_ms += self.unused_lock_ms * len(unused)
        if not attempt.committed:
            coordination_ms += self.abort_ms

        base_total_ms = execution_ms + coordination_ms + self.planning_ms + self.setup_ms
        # Per-partition release plan: early-prepared partitions (OP4) are
        # released right after their last use plus the commit round; held
        # partitions (None) only at the end of the attempt.
        release_plan = tuple(
            (
                partition_id,
                per_partition_last_use.get(partition_id, 0.0) + self.two_phase_commit_ms
                if (partition_id in attempt.finished_partitions and attempt.committed)
                else None,
            )
            for partition_id in lock_set
        )
        return (execution_ms, coordination_ms, base_total_ms, release_plan)


@dataclass
class AttemptTiming:
    """Simulated time breakdown of one execution attempt (Fig. 11 categories)."""

    estimation_ms: float
    planning_ms: float
    execution_ms: float
    coordination_ms: float
    setup_ms: float
    total_ms: float
    release_offsets: dict[PartitionId, float] = field(default_factory=dict)

    def as_breakdown(self) -> dict[str, float]:
        return {
            "estimation": self.estimation_ms,
            "planning": self.planning_ms,
            "execution": self.execution_ms,
            "coordination": self.coordination_ms,
            "other": self.setup_ms,
        }
