"""Bounded-memory metric accumulators for the million-user scale mode.

Exact mode stores every completed latency in a Python list — perfect for
thousands of transactions, fatal for overload studies where a single probe
completes millions.  ``metrics_mode="streaming"`` swaps those lists for the
two accumulators here, both O(1) in memory no matter how many observations
arrive:

* :class:`LatencySketch` — count / sum / min / max exactly, plus quantile
  estimates from a P² (piecewise-parabolic) estimator per tracked quantile
  (p50/p95/p99) backed by a deterministic reservoir sample for every other
  quantile.  While the population still fits in the reservoir the sketch is
  *exact*; past that, the documented accuracy contract is
  :data:`QUANTILE_RTOL` (relative error on TATP/TPC-C-shaped latency
  populations, held by ``tests/property/test_property_sketch.py``).
* :class:`CompletionWindow` — a doubling-width histogram of completion
  times (committed and total counts per bucket) that reproduces the
  simulator's post-warm-up measurement window to within one bucket
  (≤ 1/:data:`WINDOW_BUCKETS` of the run) without storing per-completion
  tuples.

Both deliberately answer to ``append(...)`` so the simulator's hot loops
feed a list or a sketch through the same call site.
"""

from __future__ import annotations

import math
import random
from bisect import insort
from typing import Iterable, Mapping

from ..errors import SimulationError

#: Quantiles maintained by dedicated P² estimators.
TRACKED_QUANTILES = (0.5, 0.95, 0.99)

#: Documented relative-error bound for streaming quantiles once the
#: population has outgrown the exact reservoir (see module docstring).
QUANTILE_RTOL = 0.10

#: Reservoir capacity: below this many observations quantiles are exact.
RESERVOIR_SIZE = 2048

#: Bucket count of the completion-time histogram.
WINDOW_BUCKETS = 4096

#: Fixed seed for the deterministic reservoir (results must be replayable).
_RESERVOIR_SEED = 0x5EED


class _P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator (one quantile).

    Five markers track the running quantile without storing observations;
    marker heights are adjusted with a piecewise-parabolic fit as counts
    grow.  Exact until five observations have arrived.
    """

    __slots__ = ("q", "heights", "positions", "desired", "increments", "count")

    def __init__(self, q: float) -> None:
        self.q = q
        self.heights: list[float] = []
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self.increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        heights = self.heights
        if self.count <= 5:
            insort(heights, x)
            return
        positions = self.positions
        # Locate the cell containing x and clamp the extreme markers.
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while cell < 3 and x >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self.desired
        increments = self.increments
        for index in range(5):
            desired[index] += increments[index]
        # Adjust the three interior markers toward their desired positions.
        for index in range(1, 4):
            delta = desired[index] - positions[index]
            if (delta >= 1.0 and positions[index + 1] - positions[index] > 1.0) or (
                delta <= -1.0 and positions[index - 1] - positions[index] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self.heights, self.positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self.heights, self.positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        heights = self.heights
        if not heights:
            return 0.0
        if self.count <= 5:
            rank = max(0, -(-self.count * int(self.q * 100) // 100) - 1)
            return heights[min(rank, len(heights) - 1)]
        return heights[2]


class LatencySketch:
    """O(1)-memory latency summary: exact moments, estimated quantiles.

    ``count``/``total``/``min``/``max`` are exact.  Quantiles are exact
    while ``count <= RESERVOIR_SIZE``; beyond that, tracked quantiles
    (p50/p95/p99) come from P² estimators and arbitrary quantiles from a
    deterministic reservoir sample, within :data:`QUANTILE_RTOL` relative
    error on the latency shapes this simulator produces.

    ``append`` aliases ``observe`` so list-shaped accumulator call sites
    work unchanged.  A sketch restored by :meth:`from_dict` is a frozen
    summary (count, total, min, max, and the tracked quantiles survive the
    round-trip; raw samples do not) and refuses further observations.
    """

    __slots__ = ("count", "total", "_min", "_max", "_p2", "_reservoir", "_rng", "_frozen")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self._min = 0.0
        self._max = 0.0
        self._p2 = {q: _P2Quantile(q) for q in TRACKED_QUANTILES}
        self._reservoir: list[float] = []
        self._rng = random.Random(_RESERVOIR_SEED)
        self._frozen: dict[float, float] | None = None

    # ------------------------------------------------------------------
    def observe(self, value_ms: float) -> None:
        if self._frozen is not None:
            raise SimulationError(
                "cannot observe into a LatencySketch restored from a summary "
                "dict (it carries no sample state); build a fresh sketch"
            )
        if self.count == 0:
            self._min = self._max = value_ms
        elif value_ms < self._min:
            self._min = value_ms
        elif value_ms > self._max:
            self._max = value_ms
        self.count += 1
        self.total += value_ms
        for estimator in self._p2.values():
            estimator.add(value_ms)
        reservoir = self._reservoir
        if len(reservoir) < RESERVOIR_SIZE:
            reservoir.append(value_ms)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                reservoir[slot] = value_ms

    #: List-compatible alias: the simulator's hot loops call ``.append``.
    append = observe

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min

    @property
    def max(self) -> float:
        return self._max

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate for ``q`` in ``[0, 1]``."""
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        if self._frozen is not None:
            # Restored summary: snap to the nearest preserved quantile.
            nearest = min(self._frozen, key=lambda tracked: abs(tracked - q))
            return self._frozen[nearest]
        if self.count <= len(self._reservoir):
            return self._rank_of(sorted(self._reservoir), q)  # still exact
        for tracked, estimator in self._p2.items():
            if abs(q - tracked) < 1e-9:
                return estimator.value()
        return self._rank_of(sorted(self._reservoir), q)

    @staticmethod
    def _rank_of(ordered: list[float], q: float) -> float:
        rank = max(0, math.ceil(len(ordered) * q) - 1)
        return ordered[min(rank, len(ordered) - 1)]

    # ------------------------------------------------------------------
    def copy(self) -> "LatencySketch":
        """An independent snapshot (the live sketch keeps accumulating)."""
        twin = LatencySketch.__new__(LatencySketch)
        twin.count = self.count
        twin.total = self.total
        twin._min = self._min
        twin._max = self._max
        twin._frozen = dict(self._frozen) if self._frozen is not None else None
        twin._reservoir = list(self._reservoir)
        twin._rng = random.Random(_RESERVOIR_SEED)
        twin._rng.setstate(self._rng.getstate())
        twin._p2 = {}
        for q, estimator in self._p2.items():
            clone = _P2Quantile(q)
            clone.heights = list(estimator.heights)
            clone.positions = list(estimator.positions)
            clone.desired = list(estimator.desired)
            clone.increments = list(estimator.increments)
            clone.count = estimator.count
            twin._p2[q] = clone
        return twin

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Compact summary (constant size regardless of observation count).

        Round-trip contract: :meth:`from_dict` restores ``count``,
        ``total_ms``, ``min_ms``, ``max_ms`` and the tracked quantiles
        exactly; sample state (reservoir, P² markers) is *not* serialized,
        so a restored sketch is frozen — it answers summary queries but
        cannot absorb new observations.
        """
        return {
            "count": self.count,
            "total_ms": self.total,
            "min_ms": self._min,
            "max_ms": self._max,
            "quantiles": {
                f"p{round(q * 100)}": self.quantile(q) for q in TRACKED_QUANTILES
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LatencySketch":
        sketch = cls()
        try:
            sketch.count = int(data["count"])
            sketch.total = float(data["total_ms"])
            sketch._min = float(data["min_ms"])
            sketch._max = float(data["max_ms"])
            quantiles = data["quantiles"]
            sketch._frozen = {
                q: float(quantiles[f"p{round(q * 100)}"]) for q in TRACKED_QUANTILES
            }
        except (KeyError, TypeError, ValueError) as error:
            raise SimulationError(f"malformed latency summary: {data!r}") from error
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LatencySketch n={self.count} mean={self.mean:.3f}ms "
            f"p95={self.quantile(0.95):.3f}ms>"
        )


class CompletionWindow:
    """Bounded histogram of completion times for warm-up windowing.

    Replaces the exact-mode ``list[(end_ms, committed)]``: the simulator
    appends every completion, and :meth:`finalize` reproduces
    ``_finalize_window``'s post-warm-up measurement window from bucket
    counts.  The bucket width doubles (adjacent buckets merging) whenever a
    completion lands past the current range, so memory stays at
    :data:`WINDOW_BUCKETS` buckets while resolution tracks the run length —
    the warm-up boundary is located to within one bucket, i.e. a relative
    window error of at most ``1/WINDOW_BUCKETS`` of the simulated duration.
    """

    __slots__ = ("_counts", "_committed", "_width", "count", "committed", "last_end_ms")

    def __init__(self, initial_width_ms: float = 1.0) -> None:
        self._counts = [0] * WINDOW_BUCKETS
        self._committed = [0] * WINDOW_BUCKETS
        self._width = float(initial_width_ms)
        self.count = 0
        self.committed = 0
        self.last_end_ms = 0.0

    # ------------------------------------------------------------------
    def append(self, completion: tuple[float, bool]) -> None:
        end_ms, committed = completion
        if end_ms > self.last_end_ms:
            self.last_end_ms = end_ms
        while end_ms >= self._width * WINDOW_BUCKETS:
            self._double()
        bucket = int(end_ms / self._width)
        self._counts[bucket] += 1
        self.count += 1
        if committed:
            self._committed[bucket] += 1
            self.committed += 1

    def extend(self, completions: Iterable[tuple[float, bool]]) -> None:
        for completion in completions:
            self.append(completion)

    def _double(self) -> None:
        counts, committed = self._counts, self._committed
        half = WINDOW_BUCKETS // 2
        for index in range(half):
            double = 2 * index
            counts[index] = counts[double] + counts[double + 1]
            committed[index] = committed[double] + committed[double + 1]
        for index in range(half, WINDOW_BUCKETS):
            counts[index] = 0
            committed[index] = 0
        self._width *= 2.0

    def __len__(self) -> int:
        return self.count

    def __bool__(self) -> bool:
        return self.count > 0

    # ------------------------------------------------------------------
    def window(self, warmup_fraction: float) -> tuple[float, float, int]:
        """(duration_ms, window_duration_ms, window_committed).

        Mirrors the exact path: the first ``warmup_fraction`` of
        completions (by end time) are warm-up; the window spans from the
        warm-up completion's end time to the last completion, and counts
        the committed transactions inside it.  The boundary is interpolated
        inside its bucket, so the result converges to the exact window as
        bucket width shrinks relative to the run.
        """
        if self.count == 0:
            return 0.0, 0.0, 0
        duration = self.last_end_ms
        warmup_index = min(int(self.count * warmup_fraction), self.count - 1)
        if warmup_index <= 0:
            return duration, duration, self.committed
        counts, committed = self._counts, self._committed
        cumulative = 0
        for bucket in range(WINDOW_BUCKETS):
            in_bucket = counts[bucket]
            if cumulative + in_bucket > warmup_index:
                within = (warmup_index + 1 - cumulative) / in_bucket
                warmup_time = (bucket + within) * self._width
                window = duration - warmup_time
                if window <= 0:
                    return duration, duration, self.committed
                tail_committed = sum(committed[bucket + 1:])
                # Pro-rate the boundary bucket's commits past the boundary.
                tail_committed += round(committed[bucket] * (1.0 - within))
                return duration, window, tail_committed
            cumulative += in_bucket
        return duration, duration, self.committed  # pragma: no cover - unreachable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompletionWindow n={self.count} committed={self.committed} "
            f"width={self._width}ms last={self.last_end_ms:.1f}ms>"
        )


__all__ = [
    "TRACKED_QUANTILES",
    "QUANTILE_RTOL",
    "RESERVOIR_SIZE",
    "WINDOW_BUCKETS",
    "LatencySketch",
    "CompletionWindow",
]
