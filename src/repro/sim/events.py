"""Event types for the discrete-event cluster simulator.

The simulator's event core is a single binary heap of timestamped events
that can be driven incrementally: :meth:`~repro.sim.simulator.ClusterSimulator.inject`
pushes an event, :meth:`~repro.sim.simulator.ClusterSimulator.step` processes
exactly one, and :meth:`~repro.sim.simulator.ClusterSimulator.run_until`
processes events up to a simulated deadline (or until the heap drains).
Four event kinds exist:

* ``PARTITION_RELEASE`` — a partition's simulated busy window ended.  Only
  scheduled while a prediction-aware policy holds partition-blocked
  transactions (their predicted partitions are busy); it wakes the
  dispatcher at the earliest predicted release so blocked work starts as
  soon as its partitions free — possibly before the blocking transaction
  fully completes (early-prepared partitions release early).
  Admission-deferred transactions are retried by ``TXN_COMPLETE`` draining
  instead, since admission capacity only changes at completions.
* ``TXN_COMPLETE`` — an in-flight transaction reached its simulated end
  time: admission capacity is released, the completion is recorded (the
  completion stream is therefore produced already ordered by end time), and
  the issuing closed-loop client is scheduled to become ready again.  The
  payload carries the executed :class:`~repro.txn.record.TransactionRecord`
  so a paused core can report its in-flight transactions
  (:meth:`~repro.sim.simulator.ClusterSimulator.in_flight`).
* ``CLIENT_READY`` — a closed-loop client submits its next request to the
  node's :class:`~repro.scheduling.scheduler.TransactionScheduler`.
* ``EXTERNAL_SUBMIT`` — a request injected from outside the closed loop
  (``ClusterSession.submit``, or a compiled
  :class:`~repro.workload.sources.WorkloadSource` arrival stream — open
  loops, trace replay, tenant streams): it is routed through the scheduler
  like any other submission but does not consume closed-loop budget and
  does not re-arm a client when it completes.  The payload carries the
  request plus its tenant label (``None`` for unlabeled traffic).

Heap entries are ``(time, kind, tiebreak, payload)`` tuples.  The kind codes
double as same-timestamp priorities: releases and completions are processed
before new submissions at the same instant, so capacity freed at time *t* is
usable by a client that becomes ready at *t*; externally injected requests
queue behind the closed-loop client that became ready at the same instant.
``CLIENT_READY`` ties break on the client id, which reproduces the legacy
driver's "lowest-index ready client submits first" order exactly.
"""

from __future__ import annotations

#: A partition's busy window ended (payload: ``None``).
PARTITION_RELEASE = 0
#: An in-flight transaction finished (payload: ``(client_id, committed,
#: pending, record)``).
TXN_COMPLETE = 1
#: A closed-loop client submits its next request (payload: ``None``, or the
#: folded ``(end, committed)`` completion record on the FCFS fast path).
CLIENT_READY = 2
#: An externally injected request enters the scheduler (payload:
#: ``(request, tenant)`` — the :class:`~repro.types.ProcedureRequest` plus
#: its workload-stream tenant label, ``None`` when unlabeled).
EXTERNAL_SUBMIT = 3

__all__ = ["PARTITION_RELEASE", "TXN_COMPLETE", "CLIENT_READY", "EXTERNAL_SUBMIT"]
