"""Ablation — estimate caching for single-partition procedures (paper §6.3).

The paper notes that very short single-partition transactions can spend a
large share of their time inside Houdini (46.5% for AuctionMark's
``NewComment``) and that caching the estimates of non-abortable,
always-single-partition procedures would remove that overhead entirely.

Cached/compiled planning is the *default operating mode* now, so this
benchmark checks three things on TATP (whose workload is dominated by
exactly such procedures):

* **decision equivalence** — all three planning modes (stepwise walks,
  chain-compiled walks, compiled walks + §6.3 cache) must produce
  byte-identical optimization decisions and identical charged (simulated)
  estimation costs; this is what the CI smoke job asserts on every PR;
* **overhead** — wall-clock planning latency drops versus stepwise
  per-request walks;
* **§6.3 what-if** — the ``estimate_cache_simulated_savings`` mode
  reproduces the paper's simulated estimation-cost reduction.
"""

import os
import time

from repro import pipeline
from repro.houdini import Houdini, HoudiniConfig


def _houdini(artifacts, **config_kwargs) -> Houdini:
    return Houdini(
        artifacts.benchmark.catalog,
        artifacts.global_provider(),
        artifacts.mappings,
        HoudiniConfig(
            disabled_procedures=artifacts.benchmark.bundle.houdini_disabled_procedures,
            **config_kwargs,
        ),
        learning=False,
    )


def _decision_fields(decision):
    return (
        decision.base_partition,
        decision.locked_partitions,
        decision.predicted_single_partition,
        decision.disable_undo,
        sorted(decision.finish_after_query.items()),
        decision.abort_probability,
        decision.confidence,
    )


def test_estimate_cache_reduces_planning_overhead(benchmark, scale, save_result):
    artifacts = pipeline.train(
        "tatp",
        scale.accuracy_partitions,
        trace_transactions=scale.trace_transactions,
        seed=scale.seed,
    )
    requests = artifacts.benchmark.generator.generate(
        max(300, scale.accuracy_test_transactions // 2)
    )

    def plan_all(houdini: Houdini):
        for request in requests[: len(requests) // 3]:
            houdini.plan(request)  # warm caches and intern tables
        started = time.perf_counter()
        plans = [houdini.plan(request) for request in requests]
        wall_ms = (time.perf_counter() - started) * 1000.0
        charged = sum(plan.plan.estimation_ms for plan in plans)
        return plans, charged / len(requests), wall_ms / len(requests)

    default_houdini = _houdini(artifacts)  # compiled walks + estimate cache
    (default_plans, default_cost, default_wall) = benchmark.pedantic(
        plan_all, args=(default_houdini,), rounds=1, iterations=1
    )
    stepwise_plans, stepwise_cost, stepwise_wall = plan_all(
        _houdini(artifacts, enable_estimate_caching=False, compiled_walks=False)
    )
    walks_plans, walks_cost, walks_wall = plan_all(
        _houdini(artifacts, enable_estimate_caching=False)
    )
    _, savings_cost, _ = plan_all(
        _houdini(artifacts, estimate_cache_simulated_savings=True)
    )
    cache = default_houdini.estimate_cache
    assert cache is not None

    # Decision equivalence: every planning mode must agree on every single
    # decision and on the charged estimation cost (default neutral charging
    # keeps simulated metrics byte-identical however a plan was produced).
    for default_plan, stepwise_plan, walks_plan in zip(
        default_plans, stepwise_plans, walks_plans
    ):
        fields = _decision_fields(default_plan.decision)
        assert fields == _decision_fields(stepwise_plan.decision)
        assert fields == _decision_fields(walks_plan.decision)
        assert default_plan.plan.estimation_ms == stepwise_plan.plan.estimation_ms
        assert default_plan.plan.estimation_ms == walks_plan.plan.estimation_ms
    assert default_cost == stepwise_cost == walks_cost

    stats = cache.stats
    save_result(
        "ablation_estimate_cache",
        "Cached/compiled planning (TATP; default mode charges hits neutrally)\n"
        f"  wall-clock planning:  {stepwise_wall:.4f} ms/txn stepwise walks, "
        f"{walks_wall:.4f} ms/txn compiled walks, "
        f"{default_wall:.4f} ms/txn default (walks + cache) — "
        f"{100.0 * (1 - default_wall / stepwise_wall):.1f}% less than stepwise\n"
        f"  simulated (neutral):  {default_cost:.4f} ms/txn — identical in all "
        f"modes (decision equivalence holds for all {len(requests)} requests)\n"
        f"  simulated (§6.3 what-if): {savings_cost:.4f} ms/txn vs "
        f"{stepwise_cost:.4f} ms/txn uncached "
        f"({100.0 * (1 - savings_cost / stepwise_cost):.1f}% less)\n"
        f"  cache: hit rate {stats.hit_rate:.1%} over {stats.lookups} lookups "
        f"({stats.hits} hits, {stats.misses} misses, "
        f"{stats.uncacheable} uncacheable), {len(cache)} entries",
    )
    # TATP repeats a small set of single-partition procedures over a bounded
    # subscriber key space: the cache must get hits and the §6.3 what-if mode
    # must show the simulated savings the paper describes.  Both are
    # deterministic, so they gate CI.  The wall-clock comparison is only
    # asserted on hosts opted in via REPRO_BENCH_STRICT=1 — shared CI
    # runners are too noisy for a hard timing gate.
    assert cache.stats.hits > 0
    assert savings_cost < stepwise_cost
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert default_wall < stepwise_wall
