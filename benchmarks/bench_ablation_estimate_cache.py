"""Ablation — estimate caching for single-partition procedures (paper §6.3).

The paper notes that very short single-partition transactions can spend a
large share of their time inside Houdini (46.5% for AuctionMark's
``NewComment``) and that caching the estimates of non-abortable,
always-single-partition procedures would remove that overhead entirely.
This benchmark compares the simulated per-transaction estimation cost and
the wall-clock planning latency on TATP (whose workload is dominated by
exactly such procedures) with the cache disabled and enabled.
"""

from repro import pipeline
from repro.houdini import Houdini, HoudiniConfig


def _houdini(artifacts, *, caching: bool) -> Houdini:
    return Houdini(
        artifacts.benchmark.catalog,
        artifacts.global_provider(),
        artifacts.mappings,
        HoudiniConfig(
            enable_estimate_caching=caching,
            disabled_procedures=artifacts.benchmark.bundle.houdini_disabled_procedures,
        ),
        learning=False,
    )


def test_estimate_cache_reduces_planning_overhead(benchmark, scale, save_result):
    artifacts = pipeline.train(
        "tatp",
        scale.accuracy_partitions,
        trace_transactions=scale.trace_transactions,
        seed=scale.seed,
    )
    requests = artifacts.benchmark.generator.generate(
        max(300, scale.accuracy_test_transactions // 2)
    )

    def plan_all(caching: bool):
        houdini = _houdini(artifacts, caching=caching)
        charged = 0.0
        for request in requests:
            plan = houdini.plan(request)
            charged += plan.plan.estimation_ms
        return houdini, charged / len(requests)

    (cached_houdini, cached_cost) = benchmark.pedantic(
        plan_all, args=(True,), rounds=1, iterations=1
    )
    _, uncached_cost = plan_all(False)
    cache = cached_houdini.estimate_cache
    assert cache is not None
    save_result(
        "ablation_estimate_cache",
        "Estimate caching (TATP, simulated estimation cost per transaction)\n"
        f"  without cache: {uncached_cost:.4f} ms/txn\n"
        f"  with cache:    {cached_cost:.4f} ms/txn "
        f"(hit rate {cache.stats.hit_rate:.1%}, {len(cache)} entries)\n"
        f"  reduction:     {100.0 * (1 - cached_cost / uncached_cost):.1f}%",
    )
    # TATP repeats a small set of single-partition procedures over a bounded
    # subscriber key space, so the cache must get hits and must not cost more
    # than the uncached path.
    assert cache.stats.hits > 0
    assert cached_cost <= uncached_cost
