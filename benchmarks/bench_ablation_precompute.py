"""Ablation — pre-computed probability tables (paper §3.2).

The paper credits pre-computing the per-vertex probability tables with a
~24% reduction in on-line estimation time.  This benchmark measures the
model processing-phase cost with and without table pre-computation and the
resulting on-line estimation latency.
"""

import time

from repro import pipeline
from repro.houdini import GlobalModelProvider, HoudiniConfig, PathEstimator
from repro.markov import MarkovModelBuilder


def _train(scale):
    return pipeline.train(
        "tpcc", scale.accuracy_partitions,
        trace_transactions=scale.trace_transactions, seed=scale.seed,
    )


def test_processing_phase_cost_with_and_without_tables(benchmark, scale, save_result):
    artifacts = _train(scale)
    trace = artifacts.trace

    def process(precompute: bool) -> float:
        builder = MarkovModelBuilder(
            artifacts.benchmark.catalog, precompute_tables=precompute
        )
        started = time.perf_counter()
        builder.build(trace)
        return time.perf_counter() - started

    with_tables = benchmark.pedantic(process, args=(True,), rounds=1, iterations=1)
    without_tables = process(False)
    save_result(
        "ablation_precompute_processing",
        "Processing phase cost (seconds)\n"
        f"  with pre-computed tables:    {with_tables:.3f}\n"
        f"  without pre-computed tables: {without_tables:.3f}",
    )
    # Building the tables costs extra during the (off-line) processing phase.
    assert with_tables >= without_tables * 0.5


def test_estimation_latency_benefits_from_tables(benchmark, scale, save_result):
    artifacts = _train(scale)
    requests = artifacts.benchmark.generator.generate(300)
    estimator = PathEstimator(
        artifacts.benchmark.catalog,
        GlobalModelProvider(artifacts.models),
        artifacts.mappings,
        HoudiniConfig(),
    )

    def estimate_all():
        for request in requests:
            estimator.estimate(request)

    benchmark.pedantic(estimate_all, rounds=1, iterations=1)
    per_txn_ms = 1000.0 * benchmark.stats.stats.mean / len(requests)
    save_result(
        "ablation_precompute_estimation",
        f"On-line estimation latency with pre-computed tables: {per_txn_ms:.3f} ms/txn "
        f"(paper reports 0.01-4.2 ms depending on the procedure)",
    )
    assert per_txn_ms < 50.0
