"""Table 3 — accuracy of the Markov models' optimization estimates.

Paper expectation: ~91% of transactions receive fully correct estimates with
global models, ~93% with partitioned models, and the abort optimization (OP3)
is never mispredicted.
"""

from repro.experiments import run_table03


def test_table03_model_accuracy(benchmark, scale, save_result):
    result = benchmark.pedantic(run_table03, args=(scale,), rounds=1, iterations=1)
    save_result("table03", result.format())

    for benchmark_name, reports in result.reports.items():
        for configuration in ("global", "partitioned"):
            report = reports[configuration]
            # OP3 (disabling undo logging for a transaction that later
            # aborts) must never be mispredicted — the paper's hard claim.
            assert report.op3 > 99.0, (benchmark_name, configuration)
            # Overall accuracy stays in the paper's neighbourhood.
            assert report.total > 50.0, (benchmark_name, configuration)
        # Partitioned models must not be dramatically worse than global ones.
        assert reports["partitioned"].total >= reports["global"].total - 10.0
