"""Figure 3 — NewOrder throughput under three execution scenarios.

Paper expectation: "assume distributed" stays flat as partitions are added,
"proper selection" scales, "assume single-partition" sits in between.
"""

from repro.experiments import run_figure03


def test_figure03_motivating_experiment(benchmark, scale, save_result):
    result = benchmark.pedantic(run_figure03, args=(scale,), rounds=1, iterations=1)
    save_result("figure03", result.format())

    smallest = min(result.throughput)
    largest = max(result.throughput)
    # Proper selection must beat the distributed assumption everywhere and
    # must scale with the cluster.
    for partitions, values in result.throughput.items():
        assert values["oracle"] > values["assume-distributed"]
    assert (
        result.throughput[largest]["oracle"]
        >= result.throughput[smallest]["oracle"] * 0.9
    )
    # The distributed assumption does not scale: its largest-cluster
    # throughput stays within a small factor of its smallest-cluster one.
    assert (
        result.throughput[largest]["assume-distributed"]
        <= result.throughput[smallest]["assume-distributed"] * 2.0
    )
