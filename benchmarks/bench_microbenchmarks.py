"""Micro-benchmarks of the hot on-line code paths.

These measure the raw per-call cost of the pieces Houdini executes for every
transaction (path estimation, optimization selection, run-time monitoring)
and of the substrate underneath (statement execution, trace-to-model
construction).  They are not paper figures but guard against performance
regressions in the reproduction itself.
"""

import pytest

from repro import pipeline
from repro.houdini import GlobalModelProvider, Houdini, HoudiniConfig
from repro.markov import MarkovModelBuilder
from repro.types import ProcedureRequest


@pytest.fixture(scope="module")
def artifacts(scale):
    return pipeline.train(
        "tpcc", 4, trace_transactions=min(scale.trace_transactions, 1500), seed=scale.seed
    )


def test_path_estimation_latency(benchmark, artifacts):
    houdini = Houdini(
        artifacts.benchmark.catalog,
        GlobalModelProvider(artifacts.models),
        artifacts.mappings,
        HoudiniConfig(),
        learning=False,
    )
    request = ProcedureRequest.of(
        "neworder", (1, 0, 3, (5, 9, 12, 14, 2), (1, 1, 1, 1, 1), (2, 1, 4, 3, 1))
    )
    benchmark(houdini.estimate, request)


def test_full_plan_latency(benchmark, artifacts):
    houdini = Houdini(
        artifacts.benchmark.catalog,
        GlobalModelProvider(artifacts.models),
        artifacts.mappings,
        HoudiniConfig(),
        learning=False,
    )
    request = ProcedureRequest.of("payment", (0, 0, 2, 1, 5, 42.0))
    benchmark(houdini.plan, request)


def test_transaction_execution_latency(benchmark, artifacts):
    from repro.engine import ExecutionEngine

    engine = ExecutionEngine(artifacts.benchmark.catalog, artifacts.benchmark.database)
    request = ProcedureRequest.of("payment", (0, 0, 0, 0, 5, 1.0))
    benchmark(engine.execute_attempt, request, base_partition=0)


def test_model_construction_throughput(benchmark, artifacts):
    builder = MarkovModelBuilder(artifacts.benchmark.catalog)
    neworder_trace = artifacts.trace.for_procedure("neworder")
    benchmark.pedantic(
        builder.build_for_procedure, args=(neworder_trace, "neworder"), rounds=2, iterations=1
    )


# ----------------------------------------------------------------------
# Machine-readable estimation-throughput tracking (BENCH_estimation.json)
# ----------------------------------------------------------------------

def _plan_throughput(artifacts, *, compiled: bool, requests, rounds: int = 5):
    """Best-of-``rounds`` planning throughput with the §6.3 estimate cache
    disabled (chain-compiled walk records stay on when ``compiled`` is set —
    they are part of the default planning mode being tracked).

    CPU time (``process_time``) with the garbage collector paused keeps the
    number stable on busy hosts; the effective CPU speed of the machine can
    still drift between runs, which is why the committed baseline records a
    median and the assertions below keep a safety margin.
    """
    import gc
    import time

    from repro.houdini import Houdini, HoudiniConfig

    houdini = Houdini(
        artifacts.benchmark.catalog,
        artifacts.global_provider(),
        artifacts.mappings,
        HoudiniConfig(
            enable_estimate_caching=False,
            compiled_estimation=compiled,
            disabled_procedures=artifacts.benchmark.bundle.houdini_disabled_procedures,
        ),
        learning=False,
    )
    for request in requests[:300]:
        houdini.plan(request)
    gc.collect()
    gc.disable()
    try:
        best = 0.0
        best_estimation_ms = 0.0
        for _ in range(rounds):
            estimation_ms = 0.0
            started = time.process_time()
            for request in requests:
                plan = houdini.plan(request)
                estimation_ms += plan.estimate.estimation_ms
            elapsed = time.process_time() - started
            throughput = len(requests) / elapsed
            if throughput > best:
                # Keep both metrics from the same (best) round.
                best = throughput
                best_estimation_ms = estimation_ms
    finally:
        gc.enable()
    return {
        "plans_per_sec": round(best, 1),
        "mean_estimation_ms": round(best_estimation_ms / len(requests), 6),
    }


def test_estimation_throughput_tracking(scale, save_result):
    """Emit BENCH_estimation.json: the perf trajectory of the planning path.

    Records plans/sec and mean wall-clock estimation time on TATP and TPC-C
    (estimate caching disabled), the speedup against the committed pre-change
    baseline, and an in-process ablation of the compiled statement resolvers.
    """
    import json
    import os
    from pathlib import Path

    from repro import pipeline

    baseline_path = (
        Path(__file__).resolve().parent / "baselines" / "estimation_pre_compiled.json"
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    report = {
        "protocol": baseline["protocol"],
        "baseline": {
            "description": baseline["description"],
            "tatp": baseline["tatp"],
            "tpcc": baseline["tpcc"],
        },
    }
    for name in ("tatp", "tpcc"):
        artifacts = pipeline.train(
            name, 4, trace_transactions=min(scale.trace_transactions, 1500),
            seed=scale.seed,
        )
        requests = artifacts.benchmark.generator.generate(2000)
        current = _plan_throughput(artifacts, compiled=True, requests=requests)
        interpreted = _plan_throughput(artifacts, compiled=False, requests=requests)
        speedup = current["plans_per_sec"] / baseline[name]["plans_per_sec"]
        estimation_speedup = (
            baseline[name]["mean_estimation_ms"] / current["mean_estimation_ms"]
        )
        report[name] = {
            **current,
            "speedup_vs_pre_change_baseline": round(speedup, 2),
            "estimation_ms_speedup_vs_baseline": round(estimation_speedup, 2),
            "interpreted_uncompiled": interpreted,
            "compiled_vs_interpreted": round(
                current["plans_per_sec"] / interpreted["plans_per_sec"], 2
            ),
        }
        # The compiled resolvers must beat the interpreted path in-process.
        # The two measurement windows are adjacent but not simultaneous, so
        # CPU-speed drift between them can still skew the ratio (typical
        # measured values are 1.4-1.8x); the floor only guards against the
        # fast path actually losing to the interpreted one.  The absolute
        # speedup against the committed baseline is only asserted on hosts
        # comparable to the one that measured the baseline (opt in via
        # REPRO_BENCH_STRICT=1); on arbitrary CI hardware the baseline's
        # plans/sec are not commensurable and the ratio is reported only.
        assert report[name]["compiled_vs_interpreted"] >= 1.05
        if os.environ.get("REPRO_BENCH_STRICT") == "1":
            assert speedup >= 2.0
    out_path = Path(__file__).resolve().parent.parent / "BENCH_estimation.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    save_result(
        "estimation_throughput",
        "Planning throughput (plans/sec, estimate caching disabled)\n"
        + "\n".join(
            f"  {name}: {report[name]['plans_per_sec']:.0f} plans/s "
            f"({report[name]['speedup_vs_pre_change_baseline']:.2f}x pre-change baseline, "
            f"{report[name]['compiled_vs_interpreted']:.2f}x vs interpreted resolvers, "
            f"{report[name]['mean_estimation_ms']:.4f} ms/estimate)"
            for name in ("tatp", "tpcc")
        ),
    )
