"""Micro-benchmarks of the hot on-line code paths.

These measure the raw per-call cost of the pieces Houdini executes for every
transaction (path estimation, optimization selection, run-time monitoring)
and of the substrate underneath (statement execution, trace-to-model
construction).  They are not paper figures but guard against performance
regressions in the reproduction itself.
"""

import pytest

from repro import pipeline
from repro.houdini import GlobalModelProvider, Houdini, HoudiniConfig
from repro.markov import MarkovModelBuilder
from repro.types import ProcedureRequest


@pytest.fixture(scope="module")
def artifacts(scale):
    return pipeline.train(
        "tpcc", 4, trace_transactions=min(scale.trace_transactions, 1500), seed=scale.seed
    )


def test_path_estimation_latency(benchmark, artifacts):
    houdini = Houdini(
        artifacts.benchmark.catalog,
        GlobalModelProvider(artifacts.models),
        artifacts.mappings,
        HoudiniConfig(),
        learning=False,
    )
    request = ProcedureRequest.of(
        "neworder", (1, 0, 3, (5, 9, 12, 14, 2), (1, 1, 1, 1, 1), (2, 1, 4, 3, 1))
    )
    benchmark(houdini.estimate, request)


def test_full_plan_latency(benchmark, artifacts):
    houdini = Houdini(
        artifacts.benchmark.catalog,
        GlobalModelProvider(artifacts.models),
        artifacts.mappings,
        HoudiniConfig(),
        learning=False,
    )
    request = ProcedureRequest.of("payment", (0, 0, 2, 1, 5, 42.0))
    benchmark(houdini.plan, request)


def test_transaction_execution_latency(benchmark, artifacts):
    from repro.engine import ExecutionEngine

    engine = ExecutionEngine(artifacts.benchmark.catalog, artifacts.benchmark.database)
    request = ProcedureRequest.of("payment", (0, 0, 0, 0, 5, 1.0))
    benchmark(engine.execute_attempt, request, base_partition=0)


def test_model_construction_throughput(benchmark, artifacts):
    builder = MarkovModelBuilder(artifacts.benchmark.catalog)
    neworder_trace = artifacts.trace.for_procedure("neworder")
    benchmark.pedantic(
        builder.build_for_procedure, args=(neworder_trace, "neworder"), rounds=2, iterations=1
    )
