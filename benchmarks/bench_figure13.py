"""Figure 13 — sensitivity to the confidence-coefficient threshold.

Paper expectation: throughput collapses at threshold 0 (every transaction is
treated as touching every partition) and plateaus once the threshold clears
the relevant branch probabilities.
"""

from repro.experiments import run_figure13


def test_figure13_confidence_threshold_sweep(benchmark, scale, save_result):
    result = benchmark.pedantic(run_figure13, args=(scale,), rounds=1, iterations=1)
    save_result("figure13", result.format())

    for benchmark_name, series in result.throughput.items():
        thresholds = sorted(series)
        lowest = series[thresholds[0]]
        best = max(series.values())
        if thresholds[0] == 0.0 and len(thresholds) > 2:
            # Threshold zero forces every transaction to run distributed, so
            # it must be far below the best configuration.
            assert lowest < best, benchmark_name
            assert best > 1.5 * lowest, benchmark_name
