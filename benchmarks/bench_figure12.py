"""Figure 12 — full-benchmark throughput under three execution modes.

Paper expectation: Houdini (particularly with partitioned models) delivers
higher throughput than the DB2-style redirect baseline, with the gap growing
as the cluster gets larger; the average improvement across benchmarks is the
paper's ~41% headline.
"""

from repro.experiments import run_figure12


def test_figure12_throughput_scaling(benchmark, scale, save_result):
    result = benchmark.pedantic(run_figure12, args=(scale,), rounds=1, iterations=1)
    save_result("figure12", result.format())

    for benchmark_name, by_partitions in result.throughput.items():
        largest = max(by_partitions)
        values = by_partitions[largest]
        # At the largest evaluated cluster size the Houdini configurations
        # must beat the redirect baseline (the paper's central comparison).
        best_houdini = max(values["houdini-partitioned"], values["houdini-global"])
        assert best_houdini > values["assume-single-partition"], benchmark_name
    # Averaged across cluster sizes, Houdini-partitioned improves on the
    # baseline (paper: ~41% across the three benchmarks).
    improvements = [
        result.improvement_over_baseline(name) for name in result.throughput
    ]
    assert sum(improvements) / len(improvements) > 0.0
