"""Figure 11 and Table 4 — Houdini's run-time overhead and enabled optimizations.

Paper expectations: estimation consumes ~5.8% of total transaction time on
average (Fig. 11), and Houdini successfully enables OP1/OP2 for the vast
majority of transactions while OP3/OP4 apply to the subsets where they are
safe (Table 4).
"""

from repro.experiments import run_figure11, run_table04


def test_figure11_estimation_overhead(benchmark, scale, save_result):
    result = benchmark.pedantic(run_figure11, args=(scale,), rounds=1, iterations=1)
    save_result("figure11", result.format())

    # The headline claim: estimation overhead is a small fraction of the
    # transaction time (paper: ~5.8%); allow generous slack for the
    # scaled-down configuration but it must stay well below execution time.
    assert 0.0 < result.average_estimation_share < 25.0
    for shares_by_procedure in result.breakdowns.values():
        for shares in shares_by_procedure.values():
            assert abs(sum(shares.values()) - 100.0) < 1.0
            assert shares["execution"] > shares["estimation"] * 0.5


def test_table04_optimizations_enabled(benchmark, scale, save_result):
    result = benchmark.pedantic(run_table04, args=(scale,), rounds=1, iterations=1)
    save_result("table04", result.format())

    tpcc = result.procedures["tpcc"]
    # The heavily-executed TPC-C procedures must get correct OP1/OP2
    # decisions for the large majority of their transactions.
    for procedure in ("neworder", "payment"):
        if procedure in tpcc and tpcc[procedure].transactions >= 20:
            assert tpcc[procedure].op1_rate > 70.0
            assert tpcc[procedure].op2_rate > 70.0
    # Estimation times stay in the sub-millisecond-to-few-millisecond range
    # the paper reports (its Table 4 spans 0.01 ms - 4.2 ms).
    for stats_by_procedure in result.procedures.values():
        for stats in stats_by_procedure.values():
            if stats.estimates:
                assert stats.average_estimation_ms < 20.0
