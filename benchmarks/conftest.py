"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
default ``REPRO_SCALE`` is ``small`` so the whole suite finishes in minutes;
set ``REPRO_SCALE=medium`` (or ``large`` / ``paper``) to run closer to the
paper's configuration.  Each benchmark writes its formatted result table to
``benchmarks/results/<name>.txt`` so the numbers remain inspectable after the
run (pytest captures stdout by default).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentScale

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """Experiment scale selected via the REPRO_SCALE environment variable."""
    return ExperimentScale.from_env()


@pytest.fixture(scope="session")
def save_result():
    """Persist a formatted experiment table under benchmarks/results/."""

    def _save(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n[{name}]\n{text}\n")
        return path

    return _save
