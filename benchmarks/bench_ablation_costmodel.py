"""Ablation — sensitivity of the throughput results to the cost model.

The simulator replaces the paper's physical cluster with a calibrated cost
model; this benchmark sweeps its two most influential constants (remote-query
cost and the two-phase-commit round cost) and checks that the paper's
qualitative ordering — oracle above the redirect baseline — holds across the
sweep, i.e. that the reproduction's conclusions are not an artifact of one
particular constant choice.
"""

from repro import pipeline
from repro.experiments.common import format_table
from repro.sim import CostModel


def test_costmodel_sensitivity(benchmark, scale, save_result):
    partitions = scale.accuracy_partitions
    variants = {
        "default": CostModel(),
        "slow-network": CostModel(query_remote_ms=2.0, two_phase_prepare_ms=3.0,
                                  two_phase_commit_ms=2.0),
        "fast-network": CostModel(query_remote_ms=0.3, two_phase_prepare_ms=0.4,
                                  two_phase_commit_ms=0.3),
    }

    def sweep():
        rows = []
        for label, cost_model in variants.items():
            throughput = {}
            for mode in ("oracle", "assume-single-partition"):
                artifacts = pipeline.train(
                    "tpcc", partitions,
                    trace_transactions=min(scale.trace_transactions, 1200),
                    seed=scale.seed,
                )
                strategy = pipeline.make_strategy(mode, artifacts)
                result = pipeline.simulate(
                    artifacts, strategy,
                    transactions=min(scale.simulated_transactions, 600),
                    cost_model=cost_model,
                )
                throughput[mode] = result.throughput_txn_per_sec
            rows.append((label, throughput))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["Cost model", "Proper selection (txn/s)", "Assume single-partition (txn/s)"],
        [[label, round(t["oracle"], 1), round(t["assume-single-partition"], 1)]
         for label, t in rows],
    )
    save_result("ablation_costmodel", "Cost-model sensitivity (TPC-C)\n" + table)

    for label, throughput in rows:
        assert throughput["oracle"] > throughput["assume-single-partition"], label
