"""Simulator-throughput tracking (BENCH_simulator.json).

Measures end-to-end simulated transactions per wall second through the
event-driven runtime — closed-loop clients, scheduler routing, functional
execution through the coordinator, cost-model replay, metric finalization —
under the default FCFS configuration, and tracks the result against the
committed pre-change baseline in ``benchmarks/baselines/``.

Runs go through the public session API (``Cluster.open`` →
``ClusterSession.run_for``), so the measured path is exactly what clients
of the redesigned surface pay; the timed region excludes training and
session assembly, matching the baseline protocol's timed region
(``ClusterSimulator.run()`` alone).

Protocol (must match the committed baseline's):

* TATP and TPC-C at 16 partitions (the paper's fixed-size cluster), four
  clients per partition;
* Houdini strategy with global models (``learning=False`` so repeated
  rounds are comparable), default :class:`HoudiniConfig` / ``CostModel``;
* 2000 transactions per run, best of three rounds with fresh artifacts,
  CPU time (GC paused).

The absolute speedup against the committed baseline is only asserted on
hosts comparable to the one that measured the baseline (opt in via
``REPRO_BENCH_STRICT=1``) — wall-clock throughput is not commensurable
across machines, so on arbitrary CI hardware the ratio is reported only.
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro import pipeline
from repro.session import Cluster, ClusterSpec
from repro.strategies import HoudiniStrategy

PARTITIONS = 16
TRANSACTIONS = 2000
ROUNDS = 3


def _measure(benchmark_name: str, scale) -> dict:
    """Best-of-``ROUNDS`` wall throughput of one simulator configuration."""
    best = 0.0
    simulated = 0.0
    for _ in range(ROUNDS):
        artifacts = pipeline.train(
            benchmark_name, PARTITIONS,
            trace_transactions=min(scale.trace_transactions, 1500), seed=0,
        )
        strategy = HoudiniStrategy(pipeline.make_houdini(artifacts, learning=False))
        session = Cluster.open(
            ClusterSpec(benchmark=benchmark_name, num_partitions=PARTITIONS),
            artifacts=artifacts,
            strategy=strategy,
        )
        gc.collect()
        gc.disable()
        started = time.process_time()
        result = session.run_for(txns=TRANSACTIONS)
        elapsed = time.process_time() - started
        gc.enable()
        session.close()
        report = result.to_dict()
        assert report["committed"] + report["user_aborted"] == TRANSACTIONS
        throughput = TRANSACTIONS / elapsed
        if throughput > best:
            best = throughput
            simulated = report["derived"]["throughput_txn_per_sec"]
    return {
        "wall_txns_per_sec": round(best, 1),
        "simulated_throughput_txn_s": round(simulated, 1),
    }


def test_simulator_throughput_tracking(scale, save_result):
    """Emit BENCH_simulator.json: the perf trajectory of the event runtime."""
    baseline_path = (
        Path(__file__).resolve().parent / "baselines" / "simulator_pre_walk_cache.json"
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    report = {
        "protocol": baseline["protocol"],
        "baseline": {
            "description": baseline["description"],
            "tatp": baseline["tatp"],
            "tpcc": baseline["tpcc"],
        },
    }
    for name in ("tatp", "tpcc"):
        current = _measure(name, scale)
        speedup = current["wall_txns_per_sec"] / baseline[name]["wall_txns_per_sec"]
        report[name] = {
            **current,
            "speedup_vs_pre_change_baseline": round(speedup, 2),
        }
        if os.environ.get("REPRO_BENCH_STRICT") == "1":
            assert speedup >= 1.5
    out_path = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    save_result(
        "simulator_throughput",
        f"Simulator throughput (wall txns/s, {PARTITIONS} partitions, houdini strategy)\n"
        + "\n".join(
            f"  {name}: {report[name]['wall_txns_per_sec']:.0f} txns/s "
            f"({report[name]['speedup_vs_pre_change_baseline']:.2f}x pre-change baseline, "
            f"simulated {report[name]['simulated_throughput_txn_s']:.0f} txn/s)"
            for name in ("tatp", "tpcc")
        ),
    )
