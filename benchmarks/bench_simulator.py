"""Simulator-throughput tracking (BENCH_simulator.json).

Measures end-to-end simulated transactions per wall second through the
event-driven runtime — closed-loop clients, scheduler routing, functional
execution through the coordinator, cost-model replay, metric finalization —
under the default FCFS configuration, and tracks the result against the
committed pre-change baseline in ``benchmarks/baselines/``.

Runs go through the public session API (``Cluster.open`` →
``ClusterSession.run_for``), so the measured path is exactly what clients
of the redesigned surface pay; the timed region excludes training and
session assembly, matching the baseline protocol's timed region
(``ClusterSimulator.run()`` alone).

Protocol (must match the committed baseline's):

* TATP and TPC-C at 16 partitions (the paper's fixed-size cluster), four
  clients per partition;
* Houdini strategy with global models (``learning=False`` so repeated
  rounds are comparable), default :class:`HoudiniConfig` / ``CostModel``;
* 2000 transactions per run, best of three rounds with fresh artifacts,
  CPU time (GC paused).

The absolute speedup against the committed baseline is only asserted on
hosts comparable to the one that measured the baseline (opt in via
``REPRO_BENCH_STRICT=1``) — wall-clock throughput is not commensurable
across machines, so on arbitrary CI hardware the ratio is reported only.

Scale mode (million-user PR) adds three more tracked sections, measured
against ``baselines/simulator_pre_scale_mode.json``:

* ``arrival_generation`` — the 1M-arrival micro-benchmark: the vectorized
  kernel against the scalar one-gap-at-a-time fallback, interleaved in the
  same session (the acceptance floor is 5x on baseline-comparable hosts,
  2x anywhere numpy runs);
* ``chunked_consumption`` — batched ``CompiledSource.take_until`` against
  the per-element peek/pop loop it replaced;
* ``scale_mode`` — the >= 1,000,000-user overload knee study under
  ``metrics_mode="streaming"`` (bounded memory asserted), plus the exact-
  vs-streaming metrics-footprint comparison on one overload probe.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from pathlib import Path

from repro import pipeline
from repro.session import Cluster, ClusterSpec
from repro.strategies import HoudiniStrategy
from repro.workload import ClientCohortSource, Cohort, arrival_times

PARTITIONS = 16
TRANSACTIONS = 2000
ROUNDS = 3

#: The 1M-arrival micro-benchmark (vectorized vs scalar generation).
ARRIVALS = 1_000_000
ARRIVAL_RATE = 1000.0

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
BASELINES = Path(__file__).resolve().parent / "baselines"


def _merge_sections(**sections) -> dict:
    """Read-modify-write BENCH_simulator.json so every test contributes its
    section regardless of which subset of this module runs."""
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    report.update(sections)
    BENCH_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def _best_of(rounds: int, run) -> float:
    """Best wall rate (units/sec) over ``rounds`` calls of ``run() -> rate``."""
    best = 0.0
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            best = max(best, run())
        finally:
            gc.enable()
    return best


def _measure(benchmark_name: str, scale) -> dict:
    """Best-of-``ROUNDS`` wall throughput of one simulator configuration."""
    best = 0.0
    simulated = 0.0
    for _ in range(ROUNDS):
        artifacts = pipeline.train(
            benchmark_name, PARTITIONS,
            trace_transactions=min(scale.trace_transactions, 1500), seed=0,
        )
        strategy = HoudiniStrategy(pipeline.make_houdini(artifacts, learning=False))
        session = Cluster.open(
            ClusterSpec(benchmark=benchmark_name, num_partitions=PARTITIONS),
            artifacts=artifacts,
            strategy=strategy,
        )
        gc.collect()
        gc.disable()
        started = time.process_time()
        result = session.run_for(txns=TRANSACTIONS)
        elapsed = time.process_time() - started
        gc.enable()
        session.close()
        report = result.to_dict()
        assert report["committed"] + report["user_aborted"] == TRANSACTIONS
        throughput = TRANSACTIONS / elapsed
        if throughput > best:
            best = throughput
            simulated = report["derived"]["throughput_txn_per_sec"]
    return {
        "wall_txns_per_sec": round(best, 1),
        "simulated_throughput_txn_s": round(simulated, 1),
    }


def test_simulator_throughput_tracking(scale, save_result):
    """Emit BENCH_simulator.json: the perf trajectory of the event runtime."""
    baseline_path = (
        Path(__file__).resolve().parent / "baselines" / "simulator_pre_walk_cache.json"
    )
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    report = {
        "protocol": baseline["protocol"],
        "wall_clock_note": "Wall ratios against the committed baseline "
        "numbers are only commensurable when both sides run interleaved "
        "in one session: on this container, cross-session drift alone "
        "moves absolute rates 15-25%. The TPC-C ratio sits below TATP's "
        "because the walk-cache's per-plan-shape schedule cache amortizes "
        "poorly there: TPC-C produces ~580 distinct shapes at a ~73% hit "
        "rate in a 2000-txn run (TATP: ~104 shapes, ~95%), so more "
        "transactions pay shape-key construction on top of the full "
        "schedule computation. The batched attempt_timings replay trims "
        "the repeated-shape probes of restarted transactions; the "
        "adaptive bypass already disables the cache entirely when the "
        "hit rate collapses.",
        "baseline": {
            "description": baseline["description"],
            "tatp": baseline["tatp"],
            "tpcc": baseline["tpcc"],
        },
    }
    for name in ("tatp", "tpcc"):
        current = _measure(name, scale)
        speedup = current["wall_txns_per_sec"] / baseline[name]["wall_txns_per_sec"]
        report[name] = {
            **current,
            "speedup_vs_pre_change_baseline": round(speedup, 2),
        }
        if os.environ.get("REPRO_BENCH_STRICT") == "1":
            assert speedup >= 1.5
    report = _merge_sections(**report)
    save_result(
        "simulator_throughput",
        f"Simulator throughput (wall txns/s, {PARTITIONS} partitions, houdini strategy)\n"
        + "\n".join(
            f"  {name}: {report[name]['wall_txns_per_sec']:.0f} txns/s "
            f"({report[name]['speedup_vs_pre_change_baseline']:.2f}x pre-change baseline, "
            f"simulated {report[name]['simulated_throughput_txn_s']:.0f} txn/s)"
            for name in ("tatp", "tpcc")
        ),
    )


# ----------------------------------------------------------------------
# Sharded execution backend: inline vs worker-process dispatch
# ----------------------------------------------------------------------
SHARDED_TXNS = 5000
SHARDED_WORKERS = 4


def _backend_round(benchmark_name: str, backend: str):
    """One fresh-artifacts run; returns (wall rate, result dict, stats)."""
    artifacts = pipeline.train(
        benchmark_name, PARTITIONS, trace_transactions=1500, seed=0
    )
    strategy = HoudiniStrategy(pipeline.make_houdini(artifacts, learning=False))
    session = Cluster.open(
        ClusterSpec(
            benchmark=benchmark_name,
            num_partitions=PARTITIONS,
            execution_backend=backend,
            num_workers=SHARDED_WORKERS,
        ),
        artifacts=artifacts,
        strategy=strategy,
    )
    gc.collect()
    gc.disable()
    started = time.perf_counter()
    result = session.run_for(txns=SHARDED_TXNS)
    elapsed = time.perf_counter() - started
    gc.enable()
    backend_obj = session.simulator._backend
    stats = dict(backend_obj.stats) if backend_obj is not None else {}
    session.close()
    return SHARDED_TXNS / elapsed, result.to_dict(), stats


def test_sharded_backend_comparison(save_result):
    """Interleaved inline-vs-sharded comparison, plus the byte-equality
    contract asserted on every round.

    Wall time here is ``perf_counter`` — ``process_time`` would exclude
    the worker processes' CPU entirely and flatter the sharded side.  The
    backends alternate within one session so machine-state drift cancels.

    The wall-clock payoff of the sharded backend requires real CPU
    parallelism: on a single-core host the workers time-share the
    coordinator's core, so every dispatch pays IPC overhead and can win
    nothing back.  The ratio is therefore only asserted (>= 1.5x) under
    ``REPRO_BENCH_STRICT=1`` on hosts with enough cores; what is enforced
    everywhere is byte-identical simulated results.
    """
    cores = os.cpu_count() or 1
    rates = {"inline": 0.0, "sharded": 0.0}
    reports: dict = {}
    stats: dict = {}
    for _ in range(ROUNDS):
        for backend in ("inline", "sharded"):
            rate, report, round_stats = _backend_round("tatp", backend)
            rates[backend] = max(rates[backend], rate)
            if backend in reports:
                assert report == reports[backend], "non-deterministic round"
            reports[backend] = report
            if backend == "sharded":
                stats = round_stats
    assert reports["sharded"] == reports["inline"], (
        "sharded backend diverged from inline simulated results"
    )
    assert stats.get("dispatched", 0) > 0, "dispatch path never engaged"
    ratio = rates["sharded"] / rates["inline"]
    section = {
        "protocol": f"TATP at {PARTITIONS} partitions, {SHARDED_WORKERS} "
        f"workers, {SHARDED_TXNS} transactions/run, fresh artifacts per "
        "round (trace 1500, seed 0, learning=False), interleaved "
        f"inline/sharded rounds, best of {ROUNDS} per side, wall time "
        "(perf_counter; worker CPU lives in other processes), GC paused; "
        "SimulationResult.to_dict() equality asserted every round",
        "host_cpu_cores": cores,
        "inline_wall_txns_per_sec": round(rates["inline"], 1),
        "sharded_wall_txns_per_sec": round(rates["sharded"], 1),
        "sharded_over_inline": round(ratio, 2),
        "dispatched": stats.get("dispatched", 0),
        "accepted": stats.get("accepted", 0),
        "rejected": stats.get("rejected", 0),
        "cascades": stats.get("cascades", 0),
        "note": "Byte-identical simulated results are the enforced "
        "contract. Wall-clock speedup requires >1 CPU core: workers are "
        "OS processes, so on a single-core host they time-share the "
        "coordinator's core and dispatch IPC is pure overhead.",
    }
    _merge_sections(sharded_backend=section)
    if os.environ.get("REPRO_BENCH_STRICT") == "1" and cores >= 4:
        assert ratio >= 1.5
    save_result(
        "sharded_backend",
        f"Sharded execution backend (TATP, {PARTITIONS} partitions, "
        f"{SHARDED_WORKERS} workers, {cores}-core host)\n"
        f"  inline:  {rates['inline']:,.0f} txns/s wall\n"
        f"  sharded: {rates['sharded']:,.0f} txns/s wall ({ratio:.2f}x)\n"
        f"  dispatched {stats.get('dispatched', 0)}, accepted "
        f"{stats.get('accepted', 0)}, rejected {stats.get('rejected', 0)}, "
        f"cascades {stats.get('cascades', 0)}; simulated results byte-equal",
    )


# ----------------------------------------------------------------------
# Scale mode: vectorized arrivals, chunked consumption, 1M-user overload
# ----------------------------------------------------------------------
def test_arrival_generation_micro(save_result):
    """1M-arrival micro-benchmark: vectorized kernel vs scalar fallback.

    Interleaved in the same session (scalar round, vectorized round, three
    times) so machine-state drift cancels; the committed pre-change scalar
    rate is kept in ``baselines/simulator_pre_scale_mode.json``.
    """
    baseline = json.loads(
        (BASELINES / "simulator_pre_scale_mode.json").read_text(encoding="utf-8")
    )
    scalar_best = vector_best = 0.0
    for _ in range(ROUNDS):
        for vectorized in (False, True):
            gc.collect()
            gc.disable()
            started = time.process_time()
            times = arrival_times(
                "poisson", ARRIVAL_RATE, ARRIVALS, seed=0, vectorized=vectorized,
            )
            elapsed = time.process_time() - started
            gc.enable()
            assert len(times) == ARRIVALS
            rate = ARRIVALS / elapsed
            if vectorized:
                vector_best = max(vector_best, rate)
            else:
                scalar_best = max(scalar_best, rate)
    speedup = vector_best / scalar_best
    section = {
        "protocol": f"{ARRIVALS:,} poisson arrivals at {ARRIVAL_RATE:g} txn/s, "
        "seed 0, interleaved scalar/vectorized rounds, best of "
        f"{ROUNDS} per side, CPU time with GC paused",
        "scalar_arrivals_per_sec": round(scalar_best, 1),
        "vectorized_arrivals_per_sec": round(vector_best, 1),
        "speedup_vectorized_vs_scalar": round(speedup, 2),
        "baseline_scalar_arrivals_per_sec": baseline["arrival_generation"][
            "scalar_arrivals_per_sec"
        ],
    }
    _merge_sections(arrival_generation=section)
    # The kernel must beat the scalar path everywhere numpy runs; the 5x
    # acceptance floor is asserted on baseline-comparable hosts.
    assert speedup >= 2.0
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert speedup >= 5.0
    save_result(
        "arrival_generation",
        f"Arrival generation ({ARRIVALS:,} poisson arrivals)\n"
        f"  scalar:     {scalar_best:,.0f} arrivals/s\n"
        f"  vectorized: {vector_best:,.0f} arrivals/s ({speedup:.1f}x)",
    )


def test_chunked_take_until_micro(save_result):
    """Batched ``take_until`` vs the per-element peek/pop loop it replaced."""
    from repro.types import ProcedureRequest
    from repro.workload.sources import Arrival, CompiledSource

    count = 400_000
    times = arrival_times("poisson", ARRIVAL_RATE, count, seed=1)
    arrivals = [
        Arrival(at, ProcedureRequest("proc", (i,)), None)
        for i, at in enumerate(times)
    ]
    step_ms = 250.0

    def chunks():
        return (arrivals[i:i + 512] for i in range(0, count, 512))

    def batched() -> float:
        source = CompiledSource(chunks=chunks())
        deadline, got = step_ms, 0
        started = time.process_time()
        while got < count:
            got += len(source.take_until(deadline))
            deadline += step_ms
        return count / (time.process_time() - started)

    def scalar() -> float:
        source = CompiledSource(chunks=chunks())
        deadline, got = step_ms, 0
        started = time.process_time()
        while got < count:
            while (nxt := source.peek()) is not None and nxt.at_ms <= deadline:
                source.pop()
                got += 1
            deadline += step_ms
        return count / (time.process_time() - started)

    scalar_best = _best_of(ROUNDS, scalar)
    batched_best = _best_of(ROUNDS, batched)
    speedup = batched_best / scalar_best
    _merge_sections(chunked_consumption={
        "protocol": f"{count:,} arrivals drained in {step_ms:g}ms take_until "
        f"windows, 512-arrival chunks, best of {ROUNDS} interleavable rounds",
        "peek_pop_arrivals_per_sec": round(scalar_best, 1),
        "take_until_arrivals_per_sec": round(batched_best, 1),
        "speedup_batched_vs_peek_pop": round(speedup, 2),
    })
    assert speedup >= 1.0, "batched consumption must never lose to peek/pop"
    save_result(
        "chunked_consumption",
        f"CompiledSource.take_until ({count:,} arrivals, {step_ms:g}ms windows)\n"
        f"  peek/pop loop: {scalar_best:,.0f} arrivals/s\n"
        f"  take_until:    {batched_best:,.0f} arrivals/s ({speedup:.1f}x)",
    )


def _metrics_footprint(result) -> int:
    """Approximate bytes held by the latency accumulator of a result."""
    if result.latency_sketch is not None:
        sketch = result.latency_sketch
        return sys.getsizeof(sketch._reservoir) + 24 * len(sketch._reservoir) + 400
    return sys.getsizeof(result.latencies_ms) + 24 * len(result.latencies_ms)


def test_scale_mode_overload(scale, save_result):
    """The >= 1,000,000-user overload study: bounded memory, located knee.

    Runs the knee finder (``repro knee``) with a million-user cohort under
    streaming metrics, then one exact-vs-streaming probe pair at a fixed
    offered rate to quantify the metrics-memory difference the sketch buys.
    """
    from repro.experiments.overload_knee import run_overload_knee

    users = 1_000_000
    result = run_overload_knee(scale, "tatp", users=users, probe_seconds=1.0)
    assert result.users >= 1_000_000
    assert result.knee_rate > 0
    # Bounded memory: the entire search (training + ~10 probes) must fit in
    # a small fraction of what a per-user or per-latency representation
    # would take.  4 GiB is far above observed (~100 MiB) but catches
    # accidental O(users) or O(arrivals) state.
    assert result.peak_rss_mib < 4096

    # Metrics footprint: one overload probe per mode at the same offered
    # rate over the same window (fresh deterministic training per side).
    baseline = json.loads(
        (BASELINES / "simulator_pre_scale_mode.json").read_text(encoding="utf-8")
    )
    window_s, per_user = 20.0, 0.002
    footprints = {}
    for mode in ("exact", "streaming"):
        artifacts = pipeline.train("tatp", 4, trace_transactions=600, seed=0)
        strategy = pipeline.make_strategy("houdini", artifacts)
        spec = ClusterSpec(
            benchmark="tatp", num_partitions=4, trace_transactions=600, seed=0,
            learning=False, metrics_mode=mode,
            workload=ClientCohortSource(
                [Cohort("clients", users, rate_per_user_per_sec=per_user)],
                label_tenants=False,
            ),
        )
        session = Cluster.open(spec, artifacts=artifacts, strategy=strategy)
        probe = session.run_for(sim_seconds=window_s)
        footprints[mode] = {
            "completions": probe.committed + probe.user_aborted,
            "latency_bytes": _metrics_footprint(probe),
        }
    ratio = footprints["exact"]["latency_bytes"] / footprints["streaming"]["latency_bytes"]
    # The sketch is constant-size; the exact list grows with completions.
    assert footprints["streaming"]["latency_bytes"] < 128 * 1024
    _merge_sections(scale_mode={
        "protocol": f"knee finder on tatp with one {users:,}-user cohort, "
        "streaming metrics, 1.0s probes; footprint pair measured at "
        f"{per_user * users:g} txn/s offered over {window_s:g} simulated "
        "seconds (see baselines/simulator_pre_scale_mode.json)",
        "users": users,
        "knee_rate_txn_s": round(result.knee_rate, 1),
        "p95_at_knee_ms": round(result.p95_at_knee_ms, 3),
        "probes": len(result.probes),
        "peak_rss_mib": round(result.peak_rss_mib, 1),
        "metrics_footprint": {
            **footprints,
            "exact_over_streaming": round(ratio, 1),
            "baseline_exact_latency_bytes": baseline["exact_mode_overload"][
                "latency_bytes"
            ],
        },
    })
    save_result(
        "scale_mode",
        f"Scale mode ({users:,} simulated users)\n"
        f"  knee: {result.knee_rate:.0f} txn/s "
        f"(p95 {result.p95_at_knee_ms:.1f} ms, {len(result.probes)} probes, "
        f"peak RSS {result.peak_rss_mib:.0f} MiB)\n"
        f"  metrics footprint: exact {footprints['exact']['latency_bytes']:,} B "
        f"vs streaming {footprints['streaming']['latency_bytes']:,} B "
        f"({ratio:.0f}x)",
    )


# ----------------------------------------------------------------------
# Multi-tenant SLO subsystem: the cost of having it, off and on
# ----------------------------------------------------------------------
def _tenancy_round(tenancy) -> float:
    """One closed-loop TATP round under the pre-tenancy baseline protocol."""
    artifacts = pipeline.train("tatp", PARTITIONS, trace_transactions=1500, seed=0)
    strategy = HoudiniStrategy(pipeline.make_houdini(artifacts, learning=False))
    session = Cluster.open(
        ClusterSpec(benchmark="tatp", num_partitions=PARTITIONS, tenancy=tenancy),
        artifacts=artifacts,
        strategy=strategy,
    )
    started = time.process_time()
    result = session.run_for(txns=TRANSACTIONS)
    elapsed = time.process_time() - started
    session.close()
    assert result.committed + result.user_aborted == TRANSACTIONS
    return TRANSACTIONS / elapsed


def test_tenancy_overhead(save_result):
    """Track the tenancy subsystem's cost against the pre-change baseline.

    Two numbers against ``baselines/simulator_pre_tenancy.json``:

    * ``tenancy_off`` — the default path (``tenancy=None``).  The subsystem
      must be free when unused: every per-arrival hook is behind one
      ``self.tenancy is not None`` check and the scheduler stays the plain
      ``TransactionScheduler``.  This ratio is the asserted one.
    * ``tenancy_on`` — an *empty* ``TenancyConfig()`` on the identical
      closed loop, isolating the fixed machinery cost (TenantScheduler
      virtual clocks plus partition-gated dispatch) from any policy.  Gating
      is the dominant term: dispatch order must be re-derived from the
      weighted queues whenever a partition frees, and under a saturated
      closed loop with partition skew most scan passes dispatch nothing
      (the all-busy short-circuits in ``_drain`` bound the churn only once
      every partition is occupied).  Reported, not asserted.
    """
    from repro.tenancy import TenancyConfig

    baseline = json.loads(
        (BASELINES / "simulator_pre_tenancy.json").read_text(encoding="utf-8")
    )
    off = _best_of(ROUNDS, lambda: _tenancy_round(None))
    on = _best_of(ROUNDS, lambda: _tenancy_round(TenancyConfig()))
    base_rate = baseline["tatp"]["wall_txns_per_sec"]
    section = {
        "protocol": baseline["protocol"]
        + " tenancy_on attaches an empty TenancyConfig() to the same loop.",
        "baseline_wall_txns_per_sec": base_rate,
        "tenancy_off": {
            "wall_txns_per_sec": round(off, 1),
            "ratio_vs_pre_change": round(off / base_rate, 3),
        },
        "tenancy_on": {
            "wall_txns_per_sec": round(on, 1),
            "ratio_vs_pre_change": round(on / base_rate, 3),
        },
        "note": "Ratios vs the committed baseline are only commensurable "
        "when measured interleaved in one session (the baseline file "
        "records 0.98x for tenancy_off in its recording session); "
        "cross-session drift on the bench container is 15-25%. The "
        "tenancy_on figure is the cost of partition-gated weighted-fair "
        "dispatch under a saturated closed loop, the gate's worst case.",
    }
    _merge_sections(tenancy_overhead=section)
    if os.environ.get("REPRO_BENCH_STRICT") == "1":
        assert off / base_rate >= 0.9, "tenancy-off path must stay free"
    save_result(
        "tenancy_overhead",
        f"Tenancy overhead (TATP, {PARTITIONS} partitions, closed loop)\n"
        f"  off: {off:.0f} txns/s ({off / base_rate:.2f}x pre-change)\n"
        f"  on (empty config): {on:.0f} txns/s ({on / base_rate:.2f}x)",
    )
