"""Ablation — global-model growth with cluster size (paper §4.6 / §6.4).

The paper motivates model partitioning by noting that the global models'
size grows combinatorially with the number of partitions, which slows the
on-line estimation.  This benchmark measures global-model size and estimation
work at increasing cluster sizes and compares against the partitioned models.
"""

from repro import pipeline
from repro.experiments.common import format_table
from repro.houdini import GlobalModelProvider, HoudiniConfig, PathEstimator


def test_model_size_growth_and_partitioning_benefit(benchmark, scale, save_result):
    def sweep():
        rows = []
        for partitions in scale.partition_counts:
            artifacts = pipeline.train(
                "tpcc", partitions,
                trace_transactions=scale.trace_transactions, seed=scale.seed,
            )
            global_provider = GlobalModelProvider(artifacts.models)
            partitioned = pipeline.make_partitioned_provider(artifacts)
            estimator = PathEstimator(
                artifacts.benchmark.catalog, global_provider,
                artifacts.mappings, HoudiniConfig(),
            )
            work = 0
            requests = artifacts.benchmark.generator.generate(100)
            for request in requests:
                work += estimator.estimate(request).work_units
            rows.append({
                "partitions": partitions,
                "global_vertices": global_provider.total_vertices(),
                "partitioned_vertices": partitioned.total_vertices(),
                "avg_estimation_work_units": work / len(requests),
            })
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["# Partitions", "Global vertices", "Partitioned vertices", "Est. work/txn"],
        [[r["partitions"], r["global_vertices"], r["partitioned_vertices"],
          round(r["avg_estimation_work_units"], 1)] for r in rows],
    )
    save_result("ablation_model_size", "Model size vs cluster size (TPC-C)\n" + table)

    # The global models grow with the cluster.
    assert rows[-1]["global_vertices"] >= rows[0]["global_vertices"]
