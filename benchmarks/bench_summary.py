"""Headline summary — the abstract's three claims, recomputed.

Paper: correct optimization selection for ~93% of transactions, ~41% average
throughput improvement over the non-Houdini baseline, ~5.8% estimation
overhead.  This benchmark reruns the Table 3, Figure 12 and Figure 11
pipelines at the selected scale and reports the reproduction's equivalents
side by side.
"""

from repro.experiments import ExperimentScale, run_summary


def test_headline_summary(benchmark, scale, save_result):
    # The summary re-runs three full experiments; trim the cluster sweep a
    # little so the default (small) configuration stays quick.
    summary_scale = scale.override(
        partition_counts=tuple(scale.partition_counts[-2:]),
    )
    result = benchmark.pedantic(run_summary, args=(summary_scale,), rounds=1, iterations=1)
    save_result("summary", result.format())

    assert result.accuracy_pct > 50.0
    assert result.estimation_overhead_pct < 25.0
    assert result.throughput_improvement_pct > -10.0
