"""Ablation — prediction-driven queue scheduling (paper §8, future work).

The paper suggests annotating the Markov models with expected remaining run
time and using it for intelligent scheduling.  This benchmark serves an
identical backlog of mixed TPC-C requests through a single partition queue
under three disciplines — FIFO, predicted-shortest-job-first, and
single-partition-first — and reports the mean and tail completion time.

The expected shape: predicted-SJF reduces mean latency versus FIFO (short
OrderStatus/StockLevel lookups no longer wait behind long NewOrder and
Delivery transactions) while the worst-case completion time stays the same
(the last transaction finishes when all the work is done, regardless of
order).
"""

from repro import pipeline
from repro.scheduling import (
    ArrivalOrderPolicy,
    ShortestPredictedFirstPolicy,
    SinglePartitionFirstPolicy,
    TransactionScheduler,
)


def _serve(backlog, policy) -> tuple[float, float]:
    scheduler = TransactionScheduler(policy)
    for request, estimate in backlog:
        scheduler.submit(request, estimate)
    clock = 0.0
    completions = []
    for pending in scheduler.drain():
        clock += max(pending.predicted_cost_ms, 0.05)
        completions.append(clock)
    return sum(completions) / len(completions), max(completions)


def test_predicted_sjf_beats_fifo_on_mean_latency(benchmark, scale, save_result):
    artifacts = pipeline.train(
        "tpcc",
        4,
        trace_transactions=scale.trace_transactions,
        seed=scale.seed,
    )
    houdini = pipeline.make_houdini(artifacts, learning=False)
    generator = artifacts.benchmark.generator
    backlog = []
    for _ in range(max(200, scale.simulated_transactions // 2)):
        request = generator.next_request()
        backlog.append((request, houdini.estimate(request)))

    def run_all():
        return {
            policy.name: _serve(backlog, policy)
            for policy in (
                ArrivalOrderPolicy(),
                ShortestPredictedFirstPolicy(),
                SinglePartitionFirstPolicy(),
            )
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Queue scheduling ablation (TPC-C backlog on one partition queue)"]
    lines.append(f"  {'policy':26s} {'mean (ms)':>12s} {'worst (ms)':>12s}")
    for name, (mean, worst) in results.items():
        lines.append(f"  {name:26s} {mean:12.2f} {worst:12.2f}")
    fifo_mean, fifo_worst = results["fcfs"]
    sjf_mean, sjf_worst = results["shortest-predicted"]
    lines.append(
        f"  predicted-SJF mean-latency reduction vs FIFO: "
        f"{100.0 * (1 - sjf_mean / fifo_mean):.1f}%"
    )
    save_result("ablation_scheduling", "\n".join(lines))
    assert sjf_mean < fifo_mean
    # Total work is identical, so the makespan must agree (float tolerance).
    assert abs(sjf_worst - fifo_worst) < 1e-6
